#![allow(dead_code)]
#![allow(clippy::all)]
//! Minimal offline stand-in for `serde_json`: renders/parses the vendored
//! serde `Content` tree as JSON text.
//!
//! One deliberate extension over real serde_json: maps with non-string
//! keys (e.g. `HashMap<(String, String), i64>`) are emitted as an array of
//! `[key, value]` pairs instead of erroring; the vendored serde's map
//! deserializers accept both encodings.

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content());
    Ok(out)
}

/// Serialize `value` to human-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content_pretty(&mut out, &value.to_content(), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------- writing

fn write_content(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_str(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item);
            }
            out.push(']');
        }
        Content::Map(pairs) => {
            if pairs.iter().all(|(k, _)| matches!(k, Content::Str(_))) {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_content(out, k);
                    out.push(':');
                    write_content(out, v);
                }
                out.push('}');
            } else {
                out.push('[');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    write_content(out, k);
                    out.push(',');
                    write_content(out, v);
                    out.push(']');
                }
                out.push(']');
            }
        }
    }
}

fn write_content_pretty(out: &mut String, c: &Content, indent: usize) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_content_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Content::Map(pairs)
            if !pairs.is_empty() && pairs.iter().all(|(k, _)| matches!(k, Content::Str(_))) =>
        {
            out.push_str("{\n");
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_content(out, k);
                out.push_str(": ");
                write_content_pretty(out, v, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_content(out, other),
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    debug_assert!(
        v.is_finite(),
        "non-finite floats are content-encoded as strings"
    );
    // `{:?}` is Rust's shortest round-trippable float form ("1.0", "1e300").
    out.push_str(&format!("{v:?}"));
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(pairs));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let s = std::str::from_utf8(&self.bytes[self.pos..])
            .map_err(|_| Error::new("invalid utf-8"))?;
        let mut chars = s.char_indices();
        let mut pending_high: Option<u16> = None;
        while let Some((off, ch)) = chars.next() {
            match ch {
                '"' => {
                    if pending_high.is_some() {
                        return Err(Error::new("unpaired surrogate"));
                    }
                    self.pos += off + 1;
                    return Ok(out);
                }
                '\\' => {
                    let (_, esc) = chars.next().ok_or_else(|| Error::new("truncated escape"))?;
                    let decoded = match esc {
                        '"' => Some('"'),
                        '\\' => Some('\\'),
                        '/' => Some('/'),
                        'n' => Some('\n'),
                        'r' => Some('\r'),
                        't' => Some('\t'),
                        'b' => Some('\u{8}'),
                        'f' => Some('\u{c}'),
                        'u' => {
                            let mut code: u32 = 0;
                            for _ in 0..4 {
                                let (_, h) = chars
                                    .next()
                                    .ok_or_else(|| Error::new("truncated \\u escape"))?;
                                code = code * 16
                                    + h.to_digit(16).ok_or_else(|| Error::new("bad \\u escape"))?;
                            }
                            let unit = code as u16;
                            if (0xD800..0xDC00).contains(&unit) {
                                pending_high = Some(unit);
                                None
                            } else if (0xDC00..0xE000).contains(&unit) {
                                let high = pending_high
                                    .take()
                                    .ok_or_else(|| Error::new("unpaired low surrogate"))?;
                                let c = 0x10000
                                    + ((high as u32 - 0xD800) << 10)
                                    + (unit as u32 - 0xDC00);
                                Some(char::from_u32(c).ok_or_else(|| Error::new("bad surrogate"))?)
                            } else {
                                Some(char::from_u32(code).ok_or_else(|| Error::new("bad \\u"))?)
                            }
                        }
                        other => {
                            return Err(Error::new(format!("bad escape \\{other}")));
                        }
                    };
                    if let Some(c) = decoded {
                        if pending_high.is_some() {
                            return Err(Error::new("unpaired high surrogate"));
                        }
                        out.push(c);
                    }
                }
                c => {
                    if pending_high.is_some() {
                        return Err(Error::new("unpaired high surrogate"));
                    }
                    out.push(c);
                }
            }
        }
        Err(Error::new("unterminated string"))
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
        assert_eq!(
            from_str::<String>("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            "é😀"
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![Some(1i64), None, Some(-3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,-3]");
        let back: Vec<Option<i64>> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let mut m = std::collections::HashMap::new();
        m.insert(("dc1".to_string(), "dc2".to_string()), 60_000i64);
        let json = to_string(&m).unwrap();
        let back: std::collections::HashMap<(String, String), i64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn float_precision_survives() {
        for v in [0.1f64, 1e-300, 123456.789_012_345, -2.5e17] {
            let back: f64 = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(back, v);
        }
    }
}
