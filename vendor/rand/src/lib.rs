#![allow(dead_code)]
#![allow(clippy::all)]
//! Minimal offline stand-in for `rand` 0.8.
//!
//! Provides the subset this workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` trait with
//! `gen`/`gen_bool`/`gen_range` — backed by SplitMix64. Sequences are
//! deterministic per seed (the whole simulator depends on that) but do NOT
//! match upstream `rand`'s StdRng stream.

/// Types constructible from a stream of random words (the stand-in for
/// `Distribution<T> for Standard`).
pub trait FromRandom {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly (the stand-in for `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Random number generator interface.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    /// Bernoulli draw: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so nearby seeds diverge immediately.
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

impl FromRandom for u64 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRandom for u8 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl FromRandom for i64 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl FromRandom for bool {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    /// Uniform in [0, 1): 53 mantissa bits.
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    /// Uniform in [0, 1): 24 mantissa bits.
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty inclusive range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % width;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty float range");
                let unit: f64 = f64::from_random(rng);
                let lo = self.start as f64;
                let hi = self.end as f64;
                let v = lo + unit * (hi - lo);
                if v >= hi { self.start } else { v as $t }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a = rng.gen_range(3i64..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&b));
            let c: f64 = rng.gen_range(1e-12..1.0);
            assert!(c >= 1e-12 && c < 1.0);
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_respects_edges_and_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut hits = 0;
        for _ in 0..10_000 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
            if rng.gen_bool(0.3) {
                hits += 1;
            }
        }
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
