#![allow(dead_code)]
#![allow(clippy::all)]
//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements the subset this workspace's codecs use: `BytesMut` as a
//! growable write buffer, `Bytes` as a cheaply-cloneable read cursor over
//! shared storage, and the `Buf`/`BufMut` traits with big-endian numeric
//! accessors (matching the real crate's network byte order).

use std::sync::Arc;

/// Read side: sequential big-endian reads that consume the buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write side: append-only big-endian writes.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Growable write buffer; `freeze()` converts it into an immutable `Bytes`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { buf: src.to_vec() }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Immutable, cheaply-cloneable byte view with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Split off the first `len` bytes as their own view (shared storage),
    /// advancing `self` past them.
    pub fn split_to(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "split_to past end of Bytes");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + len,
        };
        self.start += len;
        head
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// A sub-view of this view (shared storage).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_f32(1.5);
        w.put_f64(-2.25);
        w.put_slice(b"ok");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.get_f64(), -2.25);
        assert_eq!(r.get_u8(), b'o');
        assert_eq!(r.get_u8(), b'k');
        assert!(!r.has_remaining());
    }

    #[test]
    fn split_to_shares_storage() {
        let mut b: Bytes = vec![1, 2, 3, 4, 5].into();
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4, 5]);
    }

    #[test]
    fn clone_is_independent_cursor() {
        let b: Bytes = vec![1, 2, 3].into();
        let mut c = b.clone();
        c.advance(2);
        assert_eq!(b.remaining(), 3);
        assert_eq!(c.remaining(), 1);
    }
}
