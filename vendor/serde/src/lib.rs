#![allow(dead_code)]
#![allow(clippy::all)]
//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based zero-copy machinery, values serialize
//! into an owned [`Content`] tree which `serde_json` renders/parses. The
//! derive macros (feature `derive`, from the vendored `serde_derive`)
//! generate `Serialize`/`Deserialize` impls against this model. The
//! workspace only uses plain derives (no `#[serde(...)]` attributes, no
//! hand-written impls), so this simplified shape is a drop-in.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model everything serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key/value pairs in insertion order; keys need not be strings
    /// (non-string keys render as JSON pair arrays).
    Map(Vec<(Content, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(v) => Some(*v),
            Content::U64(v) => i64::try_from(*v).ok(),
            Content::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(v) => Some(*v),
            Content::I64(v) => u64::try_from(*v).ok(),
            Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 && *v < 1.9e19 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(v) => Some(*v),
            Content::I64(v) => Some(*v as f64),
            Content::U64(v) => Some(*v as f64),
            // Non-finite floats round-trip as tagged strings.
            Content::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Look up a struct field in serialized map content.
pub fn content_get<'a>(m: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    m.iter()
        .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
        .map(|(_, v)| v)
}

/// Deserialization error with breadcrumb context.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Prefix the error with the path segment being deserialized.
    pub fn ctx(mut self, segment: &str) -> Self {
        self.msg = format!("{segment}: {}", self.msg);
        self
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

fn float_content(v: f64) -> Content {
    if v.is_finite() {
        Content::F64(v)
    } else if v.is_nan() {
        Content::Str("NaN".into())
    } else if v > 0.0 {
        Content::Str("inf".into())
    } else {
        Content::Str("-inf".into())
    }
}

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c.as_i64().ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v).map_err(|_| DeError::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c.as_u64().ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v).map_err(|_| DeError::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        float_content(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_f64().ok_or_else(|| DeError::new("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        float_content(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.as_f64().ok_or_else(|| DeError::new("expected f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c.as_str().ok_or_else(|| DeError::new("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(_: &Content) -> Result<Self, DeError> {
        Ok(())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v: Vec<T> = Vec::from_content(c)?;
        <[T; N]>::try_from(v).map_err(|_| DeError::new("wrong array length"))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c.as_seq().ok_or_else(|| DeError::new("expected tuple sequence"))?;
                let mut it = s.iter();
                let out = ($(
                    {
                        let _ = $idx;
                        $name::from_content(it.next().ok_or_else(|| DeError::new("tuple too short"))?)?
                    },
                )+);
                Ok(out)
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

fn map_to_content<'a, K, V, I>(iter: I) -> Content
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Content::Map(
        iter.map(|(k, v)| (k.to_content(), v.to_content()))
            .collect(),
    )
}

fn map_from_content<K: Deserialize, V: Deserialize>(c: &Content) -> Result<Vec<(K, V)>, DeError> {
    match c {
        Content::Map(m) => m
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect(),
        // Non-string-keyed maps render as a JSON array of [k, v] pairs.
        Content::Seq(s) => s
            .iter()
            .map(|pair| {
                let p = pair
                    .as_seq()
                    .ok_or_else(|| DeError::new("expected [key, value] pair"))?;
                if p.len() != 2 {
                    return Err(DeError::new("expected 2-element pair"));
                }
                Ok((K::from_content(&p[0])?, V::from_content(&p[1])?))
            })
            .collect(),
        _ => Err(DeError::new("expected map")),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(map_from_content::<K, V>(c)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(map_from_content::<K, V>(c)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(Vec::<T>::from_content(c)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(Vec::<T>::from_content(c)?.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(Vec::<T>::from_content(c)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_content(&42i64.to_content()).unwrap(), 42);
        assert_eq!(u64::from_content(&u64::MAX.to_content()).unwrap(), u64::MAX);
        assert_eq!(f32::from_content(&1.5f32.to_content()).unwrap(), 1.5);
        assert!(f64::from_content(&f64::NAN.to_content()).unwrap().is_nan());
        assert_eq!(
            String::from_content(&"héllo".to_string().to_content()).unwrap(),
            "héllo"
        );
        assert_eq!(Option::<i64>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn non_string_keyed_map_round_trips() {
        let mut m: HashMap<(String, String), i64> = HashMap::new();
        m.insert(("a".into(), "b".into()), 7);
        let c = m.to_content();
        let back: HashMap<(String, String), i64> = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, m);
    }
}
