//! `prop::sample`: choose among explicit values.

use std::sync::Arc;

use crate::{Strategy, TestRng};

pub struct Select<T> {
    items: Arc<Vec<T>>,
}

impl<T> Clone for Select<T> {
    fn clone(&self) -> Self {
        Select {
            items: Arc::clone(&self.items),
        }
    }
}

/// `prop::sample::select(vec![...])`: uniform choice of one element.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select() needs at least one item");
    Select {
        items: Arc::new(items),
    }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len())].clone()
    }
}
