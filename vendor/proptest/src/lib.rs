#![allow(dead_code)]
#![allow(clippy::all)]
//! Minimal offline stand-in for `proptest`.
//!
//! Supports the API surface this workspace uses: the `proptest!` macro
//! (with optional `#![proptest_config(...)]`), `prop_assert*`, strategies
//! for ranges / tuples / arrays / regex-lite string patterns, `Just`,
//! `prop_oneof!`, `any::<T>()`, `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::select`, `prop_map` and
//! `prop_recursive`. Cases are generated deterministically per test name;
//! there is no shrinking — a failing case panics with the assertion
//! message directly.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod collection;
pub mod option;
pub mod sample;

pub mod prelude {
    /// Lets `prop::collection::vec(...)`-style paths resolve, mirroring
    /// the real crate's prelude.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the fully qualified test name: stable across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform usize in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. `Clone` is a supertrait so strategies can be reused
/// across cases and captured by `prop_recursive` closures.
pub trait Strategy: Clone {
    type Value;

    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { s: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.gen(rng)))
    }

    /// Build a recursive strategy by composing `f` `depth` times over the
    /// leaf; `_desired_size`/`_expected_branch` are accepted for signature
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut s = self.boxed();
        for _ in 0..depth {
            s = f(s).boxed();
        }
        s
    }
}

/// Type-erased strategy (cheap to clone).
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    s: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn gen(&self, rng: &mut TestRng) -> U {
        (self.f)(self.s.gen(rng))
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len());
        self.0[idx].gen(rng)
    }
}

/// `any::<T>()` support.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn gen(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Full bit-pattern floats: includes NaN/infinities like the real
    /// crate's `any::<f64>()` edge cases.
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(4) {
            0 => f64::from_bits(rng.next_u64()),
            1 => (rng.next_u64() as i64 % 2_000_001) as f64 / 1_000.0,
            2 => rng.unit_f64() * 1e9 - 5e8,
            _ => rng.next_u64() as i64 as f64,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(4) {
            0 => f32::from_bits((rng.next_u64() >> 32) as u32),
            1 => (rng.next_u64() as i64 % 2_000_001) as f32 / 1_000.0,
            2 => (rng.unit_f64() * 1e6 - 5e5) as f32,
            _ => rng.next_u64() as i32 as f32,
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32((rng.next_u64() % 0xD800 as u64) as u32).unwrap_or('a')
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % width;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let lo = self.start as f64;
                let hi = self.end as f64;
                let v = lo + rng.unit_f64() * (hi - lo);
                if v >= hi { self.start } else { v as $t }
            }
        }
    )*};
}

range_strategy_float!(f32, f64);

/// Regex-lite string strategy: sequences of `[class]{n,m}` / `[class]` /
/// literal chars, enough for patterns like `"[a-z][a-z0-9_]{0,6}"`.
impl Strategy for &'static str {
    type Value = String;
    fn gen(&self, rng: &mut TestRng) -> String {
        gen_pattern(self, rng)
    }
}

fn gen_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = if chars[i] == '[' {
            let mut set = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                let c = if chars[i] == '\\' {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let hi = chars[i + 2];
                    for v in (c as u32)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(v) {
                            set.push(ch);
                        }
                    }
                    i += 3;
                } else {
                    set.push(c);
                    i += 1;
                }
            }
            i += 1; // closing ']'
            set
        } else {
            let c = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("bad {n,m}")
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("bad repeat min"),
                    b.trim().parse::<usize>().expect("bad repeat max"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "empty character class in '{pattern}'");
        let count = min + rng.below(max - min + 1);
        for _ in 0..count {
            out.push(set[rng.below(set.len())]);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn gen(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].gen(rng))
    }
}

// ---------------------------------------------------------------- macros

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __proptest_cfg: $crate::ProptestConfig = $cfg;
            let mut __proptest_rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __proptest_case in 0..__proptest_cfg.cases {
                let _ = __proptest_case;
                $(let $pat = $crate::Strategy::gen(&$strat, &mut __proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_patterns() {
        let mut rng = crate::TestRng::for_test("ranges_and_patterns");
        for _ in 0..200 {
            let v = (0u16..64).gen(&mut rng);
            assert!(v < 64);
            let s = "[a-z][a-z0-9_]{0,6}".gen(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: params bind, asserts fire, config is honoured.
        fn macro_round_trip(
            mut xs in prop::collection::vec(0i64..100, 1..20),
            flip in any::<bool>(),
            pick in prop::sample::select(vec![1u8, 2, 3]),
            opt in prop::option::of(5i64..9),
        ) {
            if flip {
                xs.reverse();
            }
            prop_assert!(xs.iter().all(|&x| (0..100).contains(&x)));
            prop_assert!(matches!(pick, 1..=3));
            if let Some(o) = opt {
                prop_assert!((5..9).contains(&o));
            }
            prop_assert_eq!(xs.len(), xs.len());
            prop_assert_ne!(xs.len(), 0);
        }
    }

    proptest! {
        fn oneof_and_recursive(v in arb_tree()) {
            prop_assert!(depth(&v) <= 3);
        }
    }

    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(i64),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(ts) => 1 + ts.iter().map(depth).max().unwrap_or(0),
        }
    }

    fn arb_tree() -> crate::BoxedStrategy<Tree> {
        let leaf = prop_oneof![Just(Tree::Leaf(0)), (1i64..10).prop_map(Tree::Leaf)];
        leaf.prop_recursive(2, 8, 3, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
        })
    }
}
