//! `prop::option`: optional-value strategies.

use crate::{Strategy, TestRng};

#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// `prop::option::of(strategy)`: `None` roughly a quarter of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn gen(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.gen(rng))
        }
    }
}
