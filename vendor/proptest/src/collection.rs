//! `prop::collection`: sized collection strategies.

use crate::{Strategy, TestRng};

/// Size specification for collection strategies.
pub trait IntoSizeRange {
    /// (min, max) — max inclusive.
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.min + rng.below(self.max - self.min + 1);
        (0..len).map(|_| self.element.gen(rng)).collect()
    }
}
