#![allow(dead_code)]
#![allow(clippy::all)]
//! Syn-free `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` stand-in.
//!
//! Parses the type definition directly from the proc-macro token tree
//! (attributes are skipped; `#[serde(...)]` markers are accepted but
//! ignored — every field is always serialized and expected back) and
//! emits impls of the
//! Content-tree traits. Encoding: named structs → maps, newtype structs →
//! transparent, tuple structs → seqs, unit variants → strings, data
//! variants → single-entry maps keyed by variant name.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse(input);
    gen_serialize(&def)
        .parse()
        .expect("serde_derive: bad generated Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse(input);
    gen_deserialize(&def)
        .parse()
        .expect("serde_derive: bad generated Deserialize impl")
}

// ---------------------------------------------------------------- parsing

struct TypeDef {
    name: String,
    /// Generics as declared (bounds kept, defaults stripped), without `<>`.
    generics_decl: String,
    /// Bare generic argument names for the type position (`T`, `'a`, ...).
    generic_args: Vec<String>,
    /// Type parameter names that need Serialize/Deserialize bounds.
    type_params: Vec<String>,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse(input: TokenStream) -> TypeDef {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let keyword = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);

    let (generics_decl, generic_args, type_params) = parse_generics(&toks, &mut i);

    // Skip a `where` clause if present (before the body or the `;`).
    if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                _ => i += 1,
            }
        }
    }

    let kind = if keyword == "enum" {
        let TokenTree::Group(body) = &toks[i] else {
            panic!("serde_derive: expected enum body");
        };
        Kind::Enum(parse_variants(body.stream()))
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        }
    };

    TypeDef {
        name,
        generics_decl,
        generic_args,
        type_params,
        kind,
    }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match &toks[*i] {
        TokenTree::Ident(id) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other}"),
    }
}

/// Parse `<...>` after the type name. Returns (decl-with-bounds,
/// bare-args, type-param-names). Defaults (`= X`) are stripped.
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> (String, Vec<String>, Vec<String>) {
    if !matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return (String::new(), Vec::new(), Vec::new());
    }
    *i += 1;
    let mut depth = 1usize;
    let mut inner: Vec<TokenTree> = Vec::new();
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                inner.push(toks[*i].clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    break;
                }
                inner.push(toks[*i].clone());
            }
            t => inner.push(t.clone()),
        }
        *i += 1;
    }

    let segments = split_top_level(&inner);
    let mut decl_parts = Vec::new();
    let mut args = Vec::new();
    let mut type_params = Vec::new();
    for seg in &segments {
        if seg.is_empty() {
            continue;
        }
        // Strip a trailing default (`= X`) at segment top level.
        let seg = strip_default(seg);
        match &seg[0] {
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                let lt = format!("'{}", ident_at(&seg, 1));
                args.push(lt);
                decl_parts.push(join_tokens(&seg));
            }
            TokenTree::Ident(id) if id.to_string() == "const" => {
                args.push(ident_at(&seg, 1));
                decl_parts.push(join_tokens(&seg));
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                args.push(name.clone());
                type_params.push(name);
                decl_parts.push(join_tokens(&seg));
            }
            other => panic!("serde_derive: unsupported generic param {other}"),
        }
    }
    (decl_parts.join(", "), args, type_params)
}

fn strip_default(seg: &[TokenTree]) -> Vec<TokenTree> {
    let mut depth = 0usize;
    for (idx, t) in seg.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == '=' && depth == 0 => {
                return seg[..idx].to_vec();
            }
            _ => {}
        }
    }
    seg.to_vec()
}

fn ident_at(seg: &[TokenTree], idx: usize) -> String {
    match &seg[idx] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected ident, found {other}"),
    }
}

/// Split a token slice at commas outside `<...>` nesting (delimited groups
/// are atomic token trees, so only angle brackets need depth tracking).
fn split_top_level(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0usize;
    for t in toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn join_tokens(toks: &[TokenTree]) -> String {
    let mut s = String::new();
    for t in toks {
        let text = t.to_string();
        // Glue `'a` and `::` back together; everything else space-separated
        // is valid to re-parse.
        let glue = s.ends_with('\'') || s.ends_with(':') || text == ":";
        if !s.is_empty() && !glue {
            s.push(' ');
        }
        s.push_str(&text);
    }
    s
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        fields.push(expect_ident(&toks, &mut i));
        // skip `:` then the type, up to a top-level comma
        let mut depth = 0usize;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    split_top_level(&toks)
        .iter()
        .filter(|seg| !seg.is_empty())
        .count()
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // skip an explicit discriminant, then the separating comma
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

impl TypeDef {
    fn impl_header(&self, trait_name: &str) -> String {
        let ty_args = if self.generic_args.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generic_args.join(", "))
        };
        let decl = if self.generics_decl.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics_decl)
        };
        let mut bounds: Vec<String> = self
            .type_params
            .iter()
            .map(|p| format!("{p}: serde::{trait_name}"))
            .collect();
        let where_clause = if bounds.is_empty() {
            String::new()
        } else {
            bounds.sort();
            format!(" where {}", bounds.join(", "))
        };
        format!(
            "impl{decl} serde::{trait_name} for {}{ty_args}{where_clause}",
            self.name
        )
    }
}

fn gen_serialize(def: &TypeDef) -> String {
    let body = match &def.kind {
        Kind::UnitStruct => "serde::Content::Null".to_string(),
        Kind::TupleStruct(1) => "serde::Serialize::to_content(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) => named_fields_to_map(fields, "self."),
        Kind::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                let ty = &def.name;
                match &v.kind {
                    VariantKind::Unit => arms.push(format!(
                        "{ty}::{vn} => serde::Content::Str(String::from(\"{vn}\")),"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__serde_f{i}")).collect();
                        let payload = if *n == 1 {
                            "serde::Serialize::to_content(__serde_f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_content({b})"))
                                .collect();
                            format!("serde::Content::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push(format!(
                            "{ty}::{vn}({}) => serde::Content::Map(vec![(serde::Content::Str(String::from(\"{vn}\")), {payload})]),",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds = fields.join(", ");
                        let payload = named_fields_to_map(fields, "");
                        arms.push(format!(
                            "{ty}::{vn} {{ {binds} }} => serde::Content::Map(vec![(serde::Content::Str(String::from(\"{vn}\")), {payload})]),"
                        ));
                    }
                }
            }
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "{} {{ fn to_content(&self) -> serde::Content {{ {body} }} }}",
        def.impl_header("Serialize")
    )
}

fn named_fields_to_map(fields: &[String], accessor: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(serde::Content::Str(String::from(\"{f}\")), serde::Serialize::to_content(&{accessor}{f}))"
            )
        })
        .collect();
    format!("serde::Content::Map(vec![{}])", items.join(", "))
}

fn named_fields_from_map(ty_path: &str, fields: &[String], map_var: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::from_content(serde::content_get({map_var}, \"{f}\").unwrap_or(&serde::Content::Null)).map_err(|e| e.ctx(\"{f}\"))?,"
            )
        })
        .collect();
    format!("{ty_path} {{ {} }}", items.join(" "))
}

fn seq_constructor(ty_path: &str, n: usize, seq_var: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| format!("serde::Deserialize::from_content(&{seq_var}[{i}])?"))
        .collect();
    format!("{ty_path}({})", items.join(", "))
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::UnitStruct => format!("Ok({name})"),
        Kind::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_content(__serde_c)?))")
        }
        Kind::TupleStruct(n) => format!(
            "let __serde_s = __serde_c.as_seq().ok_or_else(|| serde::DeError::new(\"expected seq for {name}\"))?;\n\
             if __serde_s.len() != {n} {{ return Err(serde::DeError::new(\"wrong arity for {name}\")); }}\n\
             Ok({})",
            seq_constructor(name, *n, "__serde_s")
        ),
        Kind::NamedStruct(fields) => format!(
            "let __serde_m = __serde_c.as_map().ok_or_else(|| serde::DeError::new(\"expected map for {name}\"))?;\n\
             Ok({})",
            named_fields_from_map(name, fields, "__serde_m")
        ),
        Kind::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push(format!("\"{vn}\" => Ok({name}::{vn}),"));
                    }
                    VariantKind::Tuple(1) => data_arms.push(format!(
                        "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_content(__serde_payload).map_err(|e| e.ctx(\"{vn}\"))?)),"
                    )),
                    VariantKind::Tuple(n) => data_arms.push(format!(
                        "\"{vn}\" => {{\n\
                           let __serde_s = __serde_payload.as_seq().ok_or_else(|| serde::DeError::new(\"expected seq for {name}::{vn}\"))?;\n\
                           if __serde_s.len() != {n} {{ return Err(serde::DeError::new(\"wrong arity for {name}::{vn}\")); }}\n\
                           Ok({})\n\
                         }}",
                        seq_constructor(&format!("{name}::{vn}"), *n, "__serde_s")
                    )),
                    VariantKind::Named(fields) => data_arms.push(format!(
                        "\"{vn}\" => {{\n\
                           let __serde_m = __serde_payload.as_map().ok_or_else(|| serde::DeError::new(\"expected map for {name}::{vn}\"))?;\n\
                           Ok({})\n\
                         }}",
                        named_fields_from_map(&format!("{name}::{vn}"), fields, "__serde_m")
                    )),
                }
            }
            format!(
                "match __serde_c {{\n\
                   serde::Content::Str(__serde_v) => match __serde_v.as_str() {{\n\
                     {unit}\n\
                     __serde_other => Err(serde::DeError::new(format!(\"unknown variant {{__serde_other}} for {name}\"))),\n\
                   }},\n\
                   serde::Content::Map(__serde_m) if __serde_m.len() == 1 => {{\n\
                     let (__serde_k, __serde_payload) = (&__serde_m[0].0, &__serde_m[0].1);\n\
                     let serde::Content::Str(__serde_k) = __serde_k else {{\n\
                       return Err(serde::DeError::new(\"expected string variant key for {name}\"));\n\
                     }};\n\
                     match __serde_k.as_str() {{\n\
                       {data}\n\
                       __serde_other => Err(serde::DeError::new(format!(\"unknown variant {{__serde_other}} for {name}\"))),\n\
                     }}\n\
                   }}\n\
                   _ => Err(serde::DeError::new(\"expected enum content for {name}\")),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "{} {{ fn from_content(__serde_c: &serde::Content) -> Result<Self, serde::DeError> {{ {body} }} }}",
        def.impl_header("Deserialize")
    )
}
