#![allow(dead_code)]
#![allow(clippy::all)]
//! Minimal offline stand-in for `criterion`.
//!
//! Implements the macro/API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `iter`, `iter_batched`, `Throughput` — with a simple
//! time-boxed measurement loop and one summary line per benchmark on
//! stdout. No statistics, plots or baselines.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How per-iteration inputs are batched in `iter_batched` (accepted for
/// API compatibility; every batch size runs setup per iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

pub struct Criterion {
    /// Measurement budget per benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_for: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.measure_for, name, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(self.criterion.measure_for, &full, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F>(budget: Duration, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        budget,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns_per_iter = if b.iters == 0 {
        0.0
    } else {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns_per_iter > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 * 1e3 / ns_per_iter)
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) if ns_per_iter > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 * 1e9 / ns_per_iter / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench {name:50} {ns_per_iter:14.1} ns/iter{rate}");
}

pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up briefly, then measure until the budget is spent.
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while wall.elapsed() < self.budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = measured;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        let mut hits = 0u64;
        g.bench_function("f", |b| b.iter(|| hits += 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(hits > 0);
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }
}
