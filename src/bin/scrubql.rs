//! `scrubql` — an interactive ScrubQL shell over a live simulated bidding
//! platform.
//!
//! Starts the selected scenario, then reads queries from stdin. Each query
//! is submitted to the Scrub query server; the simulation advances in
//! virtual time until the query's span elapses and results are printed.
//!
//! ```sh
//! cargo run --release --bin scrubql -- --scenario spam
//! echo "select bid.user_id, COUNT(*) from bid @[all] group by bid.user_id \
//!       window 10 s duration 30 s" | cargo run --release --bin scrubql
//! ```
//!
//! Commands: a ScrubQL query (terminated by a newline), `explain <query>`,
//! `explain analyze <qid>` (per-operator actuals vs planner estimates),
//! `faults ...` (live fault injection: drop rates, partitions, host
//! kill/revive), `stats [metric]` (platform + Scrub self-observability
//! metrics), `profile <qid>` (a query's execution profile + loss ledger),
//! `trace <qid> [request-id]` (lifecycle trace timelines), `watch
//! <metric> [--alert] [--since <ms>]` (a metric's recent per-interval
//! deltas as a sparkline, plus any alert rules watching it; falls back
//! to the coarse retention tier when `--since` predates the raw ring),
//! `range <metric> [--res raw|mid|coarse] [--since <ms>]` (a metric's
//! series from the multi-resolution telemetry store, with exemplar
//! trace rids on rolled-up points), `alerts` (the health
//! plane: rules, firing state, the alert log), `timeline <qid> [json]`
//! (the per-query flight recorder), `\events`, `\hosts`, `\help`,
//! `\quit`. Lifecycle tracing samples 5% of requests by default; tune
//! with `--trace <rate>` (0 disables).

use std::io::{BufRead, Write};

use adplatform::PlatformMsg;
use scrub::obs::Resolution;
use scrub::prelude::*;
use scrub::server::CentralNode;
use scrub_core::error::ScrubError;
use scrub_core::plan::{compile, QueryId};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scenario = args
        .iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("default")
        .to_string();

    let trace_rate = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.05);

    let mut cfg = match scenario.as_str() {
        "spam" => scrub::scenario::spam(),
        "new_exchange" => scrub::scenario::new_exchange(),
        "ab_test" => scrub::scenario::ab_test(),
        "exclusions" => scrub::scenario::exclusions(),
        "cannibalization" => scrub::scenario::cannibalization(),
        "freq_cap" => scrub::scenario::freq_cap(),
        "default" => PlatformConfig::default(),
        other => {
            eprintln!(
                "unknown scenario {other:?}; pick one of: default, spam, new_exchange, \
                 ab_test, exclusions, cannibalization, freq_cap"
            );
            std::process::exit(2);
        }
    };

    cfg.scrub.trace_sample_rate = trace_rate;

    eprintln!("building platform for scenario {scenario:?} ...");
    let mut p = adplatform::build_platform(cfg);
    // warm the platform up so queries see steady-state traffic
    p.sim.run_until(SimTime::from_secs(5));
    eprintln!(
        "ready at virtual t={:.0}s — {} hosts, services: BidServers, AdServers, \
         PresentationServers, ProfileStore. Type \\help for commands.",
        p.sim.now().as_secs_f64(),
        p.sim.metas().len()
    );
    warn_missing_alert_metrics(&p);

    let stdin = std::io::stdin();
    let interactive = args.iter().all(|a| a != "--batch");
    loop {
        if interactive {
            eprint!("scrub> ");
            std::io::stderr().flush().ok();
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "\\quit" | "\\q" | "exit" => break,
            "\\help" => {
                println!(
                    "commands:\n  <scrubql query>   run a query (span controls how long)\n  \
                     explain <query>   show the host/central plan split\n  \
                     explain analyze <qid>  per-operator rows, est-vs-actual selectivity, ns\n  \
                     faults            show the live fault plan and counters\n  \
                     faults drop <from> <to> <p>       lose p (e.g. 5%) of from->to messages\n  \
                     faults partition <a> <b> <secs>   sever a<->b for the next secs seconds\n  \
                     faults kill <host> [secs]         crash a host (restart after secs if given)\n  \
                     faults revive <host>              bring a killed host back up now\n  \
                     (selectors: *, host:NAME, service:NAME, dc:NAME; bare word = host)\n  \
                     stats [metric]    platform statistics + scrub self-observability metrics\n  \
                     profile <qid>     a query's execution profile + loss ledger\n  \
                     trace <qid>       traced request ids of a query (sampled lifecycles)\n  \
                     trace <qid> <rid> one traced request's span timeline\n  \
                     watch <metric> [--alert] [--since <ms>]  per-interval deltas as a sparkline\n  \
                     (+ alert rules; --since older than the raw ring falls back to the coarse tier)\n  \
                     range <metric> [--res raw|mid|coarse] [--since <ms>]  telemetry-store series\n  \
                     (rolled-up tiers carry exemplar trace rids from the max-delta interval)\n  \
                     alerts            health plane: rules, firing state, the alert log\n  \
                     timeline <qid> [json]     a query's flight-recorder journal\n  \
                     \\events           event types and schemas\n  \
                     \\hosts            host inventory\n  \\quit"
                );
            }
            other if other == "stats" || other == "\\stats" || other.starts_with("stats ") => {
                print_stats(&p, other.split_whitespace().nth(1));
            }
            "\\events" => {
                for name in p.registry.names() {
                    let (_, schema) = p.registry.schema_by_name(&name).expect("listed");
                    let fields: Vec<String> = schema
                        .fields
                        .iter()
                        .map(|f| format!("{}: {}", f.name, f.ty))
                        .collect();
                    println!("{name}({})", fields.join(", "));
                }
            }
            "\\hosts" => {
                for m in p.sim.metas() {
                    println!("{}\t{}\t{}", m.name, m.service, m.dc);
                }
            }
            other if other == "profile" || other.starts_with("profile ") => {
                match other
                    .split_whitespace()
                    .nth(1)
                    .and_then(|w| w.parse::<u64>().ok())
                {
                    Some(qid) => print_profile(&p, QueryId(qid)),
                    None => {
                        println!("usage: profile <qid> (query ids are printed when a query runs)")
                    }
                }
            }
            other if other == "trace" || other.starts_with("trace ") => {
                let mut words = other.split_whitespace().skip(1);
                let qid = words.next().and_then(|w| w.parse::<u64>().ok());
                let rid = words.next().and_then(|w| w.parse::<u64>().ok());
                match qid {
                    Some(qid) => print_trace(&p, QueryId(qid), rid),
                    None => println!("usage: trace <qid> [request-id]"),
                }
            }
            other if other == "watch" || other.starts_with("watch ") => {
                let words: Vec<&str> = other.split_whitespace().skip(1).collect();
                let alert = words.contains(&"--alert");
                let since = flag_value(&words, "--since").and_then(|s| s.parse::<i64>().ok());
                match positional(&words, &["--since"]) {
                    Some(metric) => watch_metric(&p, metric, alert, since),
                    None => println!(
                        "usage: watch <metric> [--alert] [--since <ms>] (stats lists metric names)"
                    ),
                }
            }
            other if other == "range" || other.starts_with("range ") => {
                let words: Vec<&str> = other.split_whitespace().skip(1).collect();
                let since = flag_value(&words, "--since").and_then(|s| s.parse::<i64>().ok());
                let res = match flag_value(&words, "--res") {
                    None => Resolution::Raw,
                    Some(w) => match Resolution::parse(w) {
                        Some(r) => r,
                        None => {
                            println!("unknown resolution {w:?}; pick one of: raw, mid, coarse");
                            continue;
                        }
                    },
                };
                match positional(&words, &["--res", "--since"]) {
                    Some(metric) => range_metric(&p, metric, res, since),
                    None => {
                        println!("usage: range <metric> [--res raw|mid|coarse] [--since <ms>]")
                    }
                }
            }
            other if other == "alerts" || other == "\\alerts" => {
                print_alerts(&p);
            }
            other if other == "timeline" || other.starts_with("timeline ") => {
                let mut words = other.split_whitespace().skip(1);
                let qid = words.next().and_then(|w| w.parse::<u64>().ok());
                let json = words.next() == Some("json");
                match qid {
                    Some(qid) => print_timeline(&p, QueryId(qid), json),
                    None => println!("usage: timeline <qid> [json]"),
                }
            }
            other if other == "faults" || other.starts_with("faults ") => {
                let args: Vec<&str> = other.split_whitespace().skip(1).collect();
                faults_cmd(&mut p, &args);
            }
            other if other == "explain analyze" || other.starts_with("explain analyze ") => {
                match other
                    .split_whitespace()
                    .nth(2)
                    .and_then(|w| w.parse::<u64>().ok())
                {
                    Some(qid) => print_plan_profile(&p, QueryId(qid)),
                    None => println!(
                        "usage: explain analyze <qid> (query ids are printed when a query runs)"
                    ),
                }
            }
            other if other.starts_with("explain ") => {
                let src = &other["explain ".len()..];
                match parse_query(src)
                    .and_then(|s| compile(&s, &p.registry, &ScrubConfig::default(), QueryId(0)))
                {
                    Ok(cq) => println!("{}", cq.explain()),
                    Err(e) => println!("error: {e}"),
                }
            }
            src => run_query(&mut p, src),
        }
    }
}

/// Parse a node selector: `*`/`any`, `host:x`, `service:x`, `dc:x`; a bare
/// word names a host.
fn parse_sel(s: &str) -> NodeSel {
    if s == "*" || s == "any" {
        NodeSel::Any
    } else if let Some(h) = s.strip_prefix("host:") {
        NodeSel::Host(h.into())
    } else if let Some(svc) = s.strip_prefix("service:") {
        NodeSel::Service(svc.into())
    } else if let Some(dc) = s.strip_prefix("dc:") {
        NodeSel::Dc(dc.into())
    } else {
        NodeSel::Host(s.into())
    }
}

/// Parse a probability: `5%` or `0.05`.
fn parse_prob(s: &str) -> Option<f64> {
    let p = match s.strip_suffix('%') {
        Some(pct) => pct.parse::<f64>().ok()? / 100.0,
        None => s.parse::<f64>().ok()?,
    };
    (0.0..=1.0).contains(&p).then_some(p)
}

/// The `faults` command family: inspect and mutate the live fault plane.
fn faults_cmd(p: &mut Platform, args: &[&str]) {
    match args {
        [] | ["show"] => {
            match p.sim.fault_plan() {
                None => println!("no fault plan installed"),
                Some(plan) => {
                    for d in &plan.drops {
                        println!("drop      {} -> {}  p={:.3}", d.from, d.to, d.p);
                    }
                    for pt in &plan.partitions {
                        println!(
                            "partition {} <-> {}  [{:.0}s, {:.0}s)",
                            pt.a,
                            pt.b,
                            pt.from.as_secs_f64(),
                            pt.until.as_secs_f64()
                        );
                    }
                    for c in &plan.crashes {
                        let up = match c.up_at {
                            Some(t) => format!("up at {:.0}s", t.as_secs_f64()),
                            None => "never restarted".into(),
                        };
                        println!(
                            "crash     {}  down from {:.0}s, {}{}",
                            c.host,
                            c.down_from.as_secs_f64(),
                            up,
                            if c.down(p.sim.now()) { " [DOWN]" } else { "" }
                        );
                    }
                }
            }
            let s = p.sim.fault_stats();
            println!(
                "dropped: {} random, {} partition, {} host-down; {} delayed, {} restarts",
                s.dropped_random, s.dropped_partition, s.dropped_host_down, s.delayed, s.restarts
            );
        }
        ["drop", from, to, prob] => match parse_prob(prob) {
            Some(pr) => {
                let (from, to) = (parse_sel(from), parse_sel(to));
                p.sim.set_link_drop(from.clone(), to.clone(), pr);
                println!("losing {:.1}% of {from} -> {to} messages", pr * 100.0);
            }
            None => println!("error: bad probability {prob:?} (use e.g. 5% or 0.05)"),
        },
        ["partition", a, b, secs] => match secs.parse::<i64>() {
            Ok(d) if d > 0 => {
                let (a, b) = (parse_sel(a), parse_sel(b));
                let from = p.sim.now();
                let until = from + SimDuration::from_secs(d);
                p.sim.add_partition(a.clone(), b.clone(), from, until);
                println!(
                    "partitioned {a} <-> {b} until t={:.0}s",
                    until.as_secs_f64()
                );
            }
            _ => println!("error: bad duration {secs:?} (whole seconds)"),
        },
        ["kill", host] | ["kill", host, _] => {
            let up_at = match args.get(2) {
                Some(secs) => match secs.parse::<i64>() {
                    Ok(d) if d > 0 => Some(p.sim.now() + SimDuration::from_secs(d)),
                    _ => {
                        println!("error: bad restart delay {secs:?} (whole seconds)");
                        return;
                    }
                },
                None => None,
            };
            if p.sim.inject_crash(host, p.sim.now(), up_at) {
                match up_at {
                    Some(t) => println!("{host} down, restarts at t={:.0}s", t.as_secs_f64()),
                    None => println!("{host} down for good (faults revive {host} to undo)"),
                }
            } else {
                println!("error: unknown host {host:?} (\\hosts lists them)");
            }
        }
        ["revive", host] => {
            if p.sim.revive(host) {
                println!("{host} is back up");
            } else {
                println!("error: {host:?} is unknown or not down");
            }
        }
        _ => println!("usage: faults [show | drop <from> <to> <p> | partition <a> <b> <secs> | kill <host> [secs] | revive <host>]"),
    }
}

fn run_query(p: &mut Platform, src: &str) {
    let client = ScrubClient::new(&p.scrub);
    let query = match client.submit(&mut p.sim, src) {
        Ok(q) => q,
        Err(ScrubError::Rejected(reason)) => {
            println!("rejected: {reason}");
            return;
        }
        Err(e) => {
            println!("error: {e}");
            return;
        }
    };
    // advance virtual time until the query completes (span + drain)
    let deadline = p.sim.now() + SimDuration::from_secs(3 * 3600);
    while p.sim.now() < deadline {
        let step_to = p.sim.now() + SimDuration::from_secs(5);
        p.sim.run_until(step_to);
        if query.state(&p.sim) == Some(QueryState::Done) {
            break;
        }
    }
    let rec = query.record(&p.sim).expect("record exists");
    println!(
        "-- query {} {:?} at virtual t={:.0}s, {} row(s)",
        query.id(),
        rec.state,
        p.sim.now().as_secs_f64(),
        rec.rows.len()
    );
    println!("window_start\t{}", rec.compiled.central.headers.join("\t"));
    const MAX_ROWS: usize = 40;
    for row in rec.rows.iter().take(MAX_ROWS) {
        println!("{}", row.to_tsv());
    }
    if rec.rows.len() > MAX_ROWS {
        println!("... ({} more rows)", rec.rows.len() - MAX_ROWS);
    }
    if let Some(s) = &rec.summary {
        println!(
            "-- {} hosts, matched {}, shipped {}, shed {}, budget-shed {}",
            s.hosts_reporting, s.total_matched, s.total_sampled, s.total_shed, s.total_budget_shed
        );
        if s.groups_overflow > 0 {
            println!(
                "-- overload: {} rows dropped past the max_groups cap",
                s.groups_overflow
            );
        }
        for (i, est) in s.estimates.iter().enumerate() {
            if let Some(e) = est {
                println!(
                    "-- column {}: estimate {:.1} ± {:.1} ({}% confidence)",
                    rec.compiled.central.headers[i],
                    e.estimate,
                    e.error_bound,
                    (e.confidence * 100.0) as i64,
                );
            }
        }
    }
    println!(
        "-- profile {} shows this query's execution profile",
        query.id()
    );
}

/// `profile <qid>`: the per-query execution profile ScrubCentral kept —
/// per-host taps/selection/shedding, first-sent vs retransmitted bytes,
/// window accounting and ingest latency.
fn print_profile(p: &Platform, qid: QueryId) {
    let handle = QueryHandle::from_id(&p.scrub, qid);
    let Some(prof) = handle.profile(&p.sim) else {
        if handle.record(&p.sim).is_none() {
            println!("unknown query id {qid}");
            print_qid_suggestions(p, qid);
        } else {
            println!("no profile for query {qid} (it never reached ScrubCentral)");
        }
        return;
    };
    println!(
        "query {}: {} batches ingested ({} duplicate, {} acked), {} rows emitted",
        qid, prof.batches_ingested, prof.batches_duplicate, prof.batches_acked, prof.rows_emitted
    );
    println!(
        "bytes: {} first-sent, {} retransmitted",
        prof.bytes_first_sent, prof.bytes_retransmitted
    );
    println!(
        "windows: {} opened, {} closed, {} degraded; {} join-state rows held",
        prof.windows_opened, prof.windows_closed, prof.windows_degraded, prof.join_rows_held
    );
    println!(
        "parallel ingest: {} backpressure stalls",
        prof.ingest_backpressure
    );
    let lat = &prof.ingest_latency_ms;
    if lat.count > 0 {
        println!(
            "ingest latency: p50 {} ms, p99 {} ms over {} batches",
            lat.p50().unwrap_or(0),
            lat.p99().unwrap_or(0),
            lat.count
        );
    }
    println!("host\tevents\ttapped\tselected\tshed\tbudget_shed\tbatches\tretx\tbytes\tretx_bytes");
    for (host, h) in &prof.hosts {
        println!(
            "{host}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            h.events,
            h.tapped,
            h.selected,
            h.shed,
            h.budget_shed,
            h.batches,
            h.retransmitted_batches,
            h.bytes_first_sent,
            h.bytes_retransmitted
        );
    }
    if let Some(ledger) = handle.loss_ledger(&p.sim) {
        if ledger.is_all_zero() {
            println!("loss ledger: clean — every tapped event reached a result");
        } else {
            println!(
                "loss ledger (invariant: tapped = delivered + sampled_out + load_shed + budget_shed + batch_dropped):"
            );
            println!(
                "host\tdelivered\tsampled_out\tload_shed\tbudget_shed\tbatch_dropped\tdedup_retx\tdegraded\tdead"
            );
            for (host, h) in &ledger.hosts {
                println!(
                    "{host}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                    h.delivered,
                    h.sampled_out,
                    h.load_shed,
                    h.budget_shed,
                    h.batch_dropped,
                    h.deduped_retransmit,
                    h.window_degraded,
                    if h.host_dead { "yes" } else { "no" }
                );
            }
        }
        if !ledger.reconciles() {
            println!("WARNING: ledger does not reconcile with the profile's tap counters");
        }
    }
}

/// `explain analyze <qid>`: the annotated plan tree — per-operator rows
/// in/out, estimated vs actual selectivity, and ns attribution
/// (cost-model ns for the host-side trio, wall-clock at central).
fn print_plan_profile(p: &Platform, qid: QueryId) {
    let handle = QueryHandle::from_id(&p.scrub, qid);
    match handle.plan_profile(&p.sim) {
        Some(profile) => print!("{}", profile.render(false)),
        None => {
            if handle.record(&p.sim).is_none() {
                println!("unknown query id {qid}");
                print_qid_suggestions(p, qid);
            } else {
                println!("no plan profile for query {qid} (it never reached ScrubCentral)");
            }
        }
    }
}

/// `trace <qid> [rid]`: the lifecycle traces central assembled for the
/// query's sampled requests — a listing of traced ids, or one request's
/// causally-ordered span timeline.
fn print_trace(p: &Platform, qid: QueryId, rid: Option<u64>) {
    let handle = QueryHandle::from_id(&p.scrub, qid);
    let Some(store) = handle.traces(&p.sim) else {
        if handle.record(&p.sim).is_none() {
            println!("unknown query id {qid}");
            print_qid_suggestions(p, qid);
        } else {
            println!(
                "no traces for query {qid} (tracing off — rerun scrubql with --trace <rate> — \
                 or no sampled request reached ScrubCentral)"
            );
        }
        return;
    };
    match rid {
        None => {
            println!(
                "query {qid}: {} traced request(s), {} span(s) total{}",
                store.len(),
                store.span_count(),
                if store.dropped_spans > 0 {
                    format!(" ({} dropped at the store cap)", store.dropped_spans)
                } else {
                    String::new()
                }
            );
            const MAX_IDS: usize = 40;
            for r in store.request_ids().take(MAX_IDS) {
                let spans = store.trace(r).unwrap_or_default();
                let hops: Vec<String> = spans.iter().map(|s| format!("{:?}", s.kind)).collect();
                println!("  {r}\t{}", hops.join(" > "));
            }
            if store.len() > MAX_IDS {
                println!(
                    "  ... ({} more; trace {} <rid> for one timeline)",
                    store.len() - MAX_IDS,
                    qid.0
                );
            }
        }
        Some(r) => {
            let Some(spans) = store.trace(r) else {
                println!(
                    "request {r} is not traced for query {qid} (trace {} lists traced ids)",
                    qid.0
                );
                return;
            };
            let t0 = spans.first().map(|s| s.at_ms).unwrap_or(0);
            println!("request {r} lifecycle ({} spans):", spans.len());
            for s in &spans {
                let detail = match s.kind {
                    SpanKind::Send => format!("seq={}", s.detail),
                    SpanKind::Retransmit => format!("attempt={}", s.detail),
                    SpanKind::Route => format!("partition={}", s.detail),
                    SpanKind::WindowAssign | SpanKind::WindowClose | SpanKind::WindowDegrade => {
                        format!("window_start={}ms", s.detail)
                    }
                    _ => String::new(),
                };
                println!(
                    "  +{:>7} ms  {:<14} {:<14} {detail}",
                    s.at_ms - t0,
                    format!("{:?}", s.kind),
                    s.host
                );
            }
        }
    }
}

/// The server + central scrub-obs registries, merged — the full universe
/// of registered metric names at this instant.
fn merged_snapshot(p: &Platform) -> MetricsSnapshot {
    let at_ms = p.sim.now().as_ms();
    let mut snap = MetricsSnapshot::default();
    if let Some(server) = p
        .sim
        .node_as::<scrub::server::QueryServerNode<PlatformMsg>>(p.scrub.server)
    {
        snap.merge(&server.metrics(at_ms));
    }
    if let Some(central) = p.sim.node_as::<CentralNode<PlatformMsg>>(p.scrub.central) {
        snap.merge(&central.metrics(at_ms));
    }
    snap
}

/// Every registered metric name (counters, gauges and histograms), sorted.
fn metric_names(snap: &MetricsSnapshot) -> Vec<String> {
    let mut names: Vec<String> = snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .chain(snap.histograms.keys())
        .cloned()
        .collect();
    names.sort();
    names.dedup();
    names
}

/// The closest registered metric names to an unknown input: substring
/// matches first, then names sharing a `.`-segment prefix with the input.
fn suggest_metrics<'a>(names: &'a [String], unknown: &str) -> Vec<&'a String> {
    let q = unknown.to_ascii_lowercase();
    let mut hits: Vec<&String> = names
        .iter()
        .filter(|n| n.to_ascii_lowercase().contains(&q))
        .collect();
    if hits.is_empty() {
        hits = names
            .iter()
            .filter(|n| {
                n.to_ascii_lowercase()
                    .split('.')
                    .zip(q.split('.'))
                    .any(|(seg, qseg)| seg.starts_with(qseg) || qseg.starts_with(seg))
            })
            .collect();
    }
    hits.truncate(8);
    hits
}

/// Print a did-you-mean list for an unknown metric name (or a pointer at
/// `stats` when nothing comes close).
fn print_suggestions(names: &[String], unknown: &str) {
    let close = suggest_metrics(names, unknown);
    if close.is_empty() {
        println!(
            "  (nothing close; stats lists all {} metric names)",
            names.len()
        );
    } else {
        println!("  closest registered names:");
        for n in close {
            println!("    {n}");
        }
    }
}

/// Print a did-you-mean list for an unknown query id: the known ids the
/// server still tracks, nearest numerically first.
fn print_qid_suggestions(p: &Platform, unknown: QueryId) {
    let Some(server) = p
        .sim
        .node_as::<scrub::server::QueryServerNode<PlatformMsg>>(p.scrub.server)
    else {
        return;
    };
    let mut ids = server.query_ids();
    if ids.is_empty() {
        println!("  (no queries have been submitted yet)");
        return;
    }
    ids.sort_by_key(|q| (q.0.abs_diff(unknown.0), q.0));
    ids.truncate(8);
    let list: Vec<String> = ids.iter().map(|q| q.0.to_string()).collect();
    println!("  closest known query ids: {}", list.join(", "));
}

/// `alerts`: the health plane — every rule with its condition and firing
/// state, the anomaly watchlist, and the bounded alert log.
fn print_alerts(p: &Platform) {
    let Some(central) = p.sim.node_as::<CentralNode<PlatformMsg>>(p.scrub.central) else {
        println!("central node not found");
        return;
    };
    let engine = central.alert_engine();
    println!("rules ({}):", engine.rules().len());
    for r in engine.rules() {
        let firing = if engine.is_firing(&r.id) {
            "  [FIRING]"
        } else {
            ""
        };
        println!(
            "  {:<17} {:<32} {} (for {}, clear {}){firing}",
            r.id,
            r.metric,
            r.kind.describe(),
            r.for_ticks,
            r.clear_ticks
        );
    }
    let watched = engine.anomaly().metrics();
    if !watched.is_empty() {
        println!("anomaly watchlist: {}", watched.join(", "));
    }
    println!("{}", engine.log().render());
}

/// `timeline <qid> [json]`: the query's merged flight-recorder journal —
/// the server's control-plane events interleaved with central's
/// data-plane events in sim-time order.
fn print_timeline(p: &Platform, qid: QueryId, json: bool) {
    let handle = QueryHandle::from_id(&p.scrub, qid);
    let Some((events, dropped)) = handle.timeline(&p.sim) else {
        println!("unknown query id {qid} (no flight recorder on the server or central)");
        print_qid_suggestions(p, qid);
        return;
    };
    if json {
        println!("{}", scrub::obs::render_timeline_json(qid.0, &events));
    } else {
        print!("{}", scrub::obs::render_timeline(qid.0, &events, dropped));
    }
}

/// The word following a `--flag` in a command's word list, if any.
fn flag_value<'a>(words: &[&'a str], flag: &str) -> Option<&'a str> {
    words
        .iter()
        .position(|w| *w == flag)
        .and_then(|i| words.get(i + 1))
        .copied()
}

/// The first word that is neither a `--flag` nor the value of one of
/// the given value-taking flags — the command's positional argument.
fn positional<'a>(words: &[&'a str], valued_flags: &[&str]) -> Option<&'a str> {
    let mut skip_next = false;
    for w in words {
        if skip_next {
            skip_next = false;
            continue;
        }
        if w.starts_with("--") {
            skip_next = valued_flags.contains(w);
            continue;
        }
        return Some(w);
    }
    None
}

/// One tier's covered sim-time range, formatted for the coverage line.
fn fmt_cover(range: Option<(i64, i64)>) -> String {
    match range {
        Some((a, b)) => format!("[{a}, {b}] ms"),
        None => "(empty)".to_string(),
    }
}

/// `watch <metric> [--alert] [--since <ms>]`: per-interval deltas of one
/// central metric from the telemetry store, rendered as a sparkline; with
/// `--alert`, also the alert rules watching the metric and their state.
/// Prints each retention tier's covered time range; when `--since`
/// predates the raw ring, falls back to the coarse tier with a note.
fn watch_metric(p: &Platform, metric: &str, alert: bool, since: Option<i64>) {
    let Some(central) = p.sim.node_as::<CentralNode<PlatformMsg>>(p.scrub.central) else {
        println!("central node not found");
        return;
    };
    let names = metric_names(&merged_snapshot(p));
    if !names.iter().any(|n| n == metric) {
        println!("unknown metric {metric:?}");
        print_suggestions(&names, metric);
        return;
    }
    let store = central.telemetry();
    println!(
        "coverage: raw {} · mid({}x) {} · coarse({}x) {}",
        fmt_cover(store.covered_range(Resolution::Raw)),
        store.tier_factor(Resolution::Mid),
        fmt_cover(store.covered_range(Resolution::Mid)),
        store.tier_factor(Resolution::Coarse),
        fmt_cover(store.covered_range(Resolution::Coarse)),
    );
    let raw_from = store.covered_range(Resolution::Raw).map(|(from, _)| from);
    let res = match (since, raw_from) {
        (Some(s), Some(from)) if s < from => {
            println!(
                "(--since {s} ms predates the raw ring; showing the coarse tier at {}x resolution)",
                store.tier_factor(Resolution::Coarse)
            );
            Resolution::Coarse
        }
        _ => Resolution::Raw,
    };
    let mut deltas = store.deltas(metric, res);
    if let Some(s) = since {
        deltas.retain(|d| d.at_ms > s);
    }
    if deltas.is_empty() {
        println!("no history yet for {metric:?} (the ring fills as virtual time passes)");
        return;
    }
    let values: Vec<i64> = deltas.iter().map(|d| d.value).collect();
    println!(
        "{metric} deltas per {:.0}s interval, t=[{:.0}s, {:.0}s]:",
        if deltas.len() > 1 {
            (deltas[1].at_ms - deltas[0].at_ms) as f64 / 1_000.0
        } else {
            0.0
        },
        deltas.first().unwrap().at_ms as f64 / 1_000.0,
        deltas.last().unwrap().at_ms as f64 / 1_000.0
    );
    println!("  {}", scrub::obs::sparkline(&values));
    let rate = store
        .raw()
        .rate_per_sec(metric, 10)
        .map(|r| format!(", ~{r:.1}/s over the newest intervals"))
        .unwrap_or_default();
    println!(
        "  min {} max {} last {}{rate}",
        values.iter().min().unwrap(),
        values.iter().max().unwrap(),
        values.last().unwrap()
    );
    if alert {
        let engine = central.alert_engine();
        let watching: Vec<_> = engine
            .rules()
            .iter()
            .filter(|r| r.metric == metric)
            .collect();
        if watching.is_empty() {
            println!("  no alert rules watch {metric:?} (alerts lists all rules)");
        } else {
            for r in watching {
                let state = if engine.is_firing(&r.id) {
                    "FIRING"
                } else {
                    "ok"
                };
                println!(
                    "  rule {:<17} {} (for {}, clear {}) — {state}",
                    r.id,
                    r.kind.describe(),
                    r.for_ticks,
                    r.clear_ticks
                );
            }
        }
        if engine.anomaly().metrics().iter().any(|m| m == metric) {
            println!("  anomaly watchlist: baseline tracked for {metric:?}");
        }
    }
}

/// `range <metric> [--res raw|mid|coarse] [--since <ms>]`: one metric's
/// series from the multi-resolution telemetry store, through the shared
/// byte-stable renderer. Rolled-up points carry an exemplar trace rid
/// from their max-delta interval, linking the series to `trace`.
fn range_metric(p: &Platform, metric: &str, res: Resolution, since: Option<i64>) {
    let Some(central) = p.sim.node_as::<CentralNode<PlatformMsg>>(p.scrub.central) else {
        println!("central node not found");
        return;
    };
    let names = metric_names(&merged_snapshot(p));
    if !names.iter().any(|n| n == metric) {
        println!("unknown metric {metric:?}");
        print_suggestions(&names, metric);
        return;
    }
    let store = central.telemetry();
    print!("{}", store.render_range(metric, res, since));
    if store
        .points(metric, res)
        .iter()
        .any(|pt| pt.exemplar.is_some())
    {
        println!("  (rid=N exemplars resolve via: trace <qid> <rid>)");
    }
}

/// Startup lint: warn about alert rules or anomaly-watchlist entries
/// naming metrics that were never registered — almost always a typo
/// that would otherwise watch a flat, forever-zero series. Warnings go
/// to stderr so `--batch` stdout stays byte-stable.
fn warn_missing_alert_metrics(p: &Platform) {
    let Some(central) = p.sim.node_as::<CentralNode<PlatformMsg>>(p.scrub.central) else {
        return;
    };
    let names = metric_names(&merged_snapshot(p));
    for (source, metric) in central.alert_engine().missing_metrics(&names) {
        let close = suggest_metrics(&names, &metric);
        let hint = if close.is_empty() {
            String::new()
        } else {
            let list: Vec<&str> = close.iter().map(|s| s.as_str()).collect();
            format!(" (closest: {})", list.join(", "))
        };
        eprintln!("warning: {source} watches unknown metric {metric:?}{hint}");
    }
}

/// `stats [metric]`: platform statistics plus Scrub's own metrics. With a
/// metric argument, show only matching metric rows — and suggest the
/// closest registered names when nothing matches.
fn print_stats(p: &Platform, filter: Option<&str>) {
    let snap = merged_snapshot(p);
    if let Some(f) = filter {
        let names = metric_names(&snap);
        let matched = print_metric_groups(&snap, Some(f));
        if matched == 0 {
            println!("unknown metric {f:?}");
            print_suggestions(&names, f);
        }
        return;
    }
    println!("virtual time: {:.0}s", p.sim.now().as_secs_f64());
    println!(
        "events processed by the simulator: {}",
        p.sim.events_processed()
    );
    let prod = p.event_production();
    println!(
        "event production: {} bids, {} auctions, {} exclusions, {} impressions, {} clicks",
        prod.bids, prod.auctions, prod.exclusions, prod.impressions, prod.clicks
    );
    let mut shipped = 0u64;
    let mut seen = 0u64;
    for (_, s) in p.agent_stats() {
        shipped += s.bytes_shipped;
        seen += s.events_seen;
    }
    println!("agents: {seen} tap calls, {shipped} bytes shipped to ScrubCentral");
    println!(
        "cross-DC traffic: {} bytes over {} messages",
        p.sim.traffic().cross_dc_bytes(),
        p.sim.traffic().total_messages()
    );

    // Scrub's own metrics (the scrub-obs registries on the server and
    // central nodes).
    println!("scrub self-observability:");
    print_metric_groups(&snap, None);
}

/// Print the snapshot's metrics grouped by subsystem prefix, optionally
/// restricted to names containing `filter`. Returns how many metric rows
/// were printed.
fn print_metric_groups(snap: &MetricsSnapshot, filter: Option<&str>) -> usize {
    // group by subsystem prefix (the part before the first '.'), sort
    // within each group, and align the value column
    let keep = |name: &str| match filter {
        Some(f) => name.to_ascii_lowercase().contains(&f.to_ascii_lowercase()),
        None => true,
    };
    let mut groups: std::collections::BTreeMap<&str, Vec<(String, String)>> =
        std::collections::BTreeMap::new();
    fn prefix(name: &str) -> &str {
        name.split('.').next().unwrap_or(name)
    }
    for (name, v) in &snap.counters {
        if keep(name) {
            groups
                .entry(prefix(name))
                .or_default()
                .push((name.clone(), v.to_string()));
        }
    }
    for (name, v) in &snap.gauges {
        if keep(name) {
            groups
                .entry(prefix(name))
                .or_default()
                .push((name.clone(), v.to_string()));
        }
    }
    for (name, h) in &snap.histograms {
        if h.count > 0 && keep(name) {
            groups.entry(prefix(name)).or_default().push((
                name.clone(),
                format!(
                    "p50 {} p99 {} (n={})",
                    h.p50().unwrap_or(0),
                    h.p99().unwrap_or(0),
                    h.count
                ),
            ));
        }
        // silent telemetry loss is a first-class row, not a footnote
        if h.dropped_merges > 0 && keep(name) {
            groups.entry(prefix(name)).or_default().push((
                format!("{name}.dropped_merges"),
                h.dropped_merges.to_string(),
            ));
        }
    }
    let mut printed = 0;
    for (group, mut rows) in groups {
        rows.sort();
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        println!("  [{group}]");
        for (name, value) in rows {
            println!("    {name:<width$}  {value}");
            printed += 1;
        }
    }
    printed
}
