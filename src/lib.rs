//! # Scrub — online troubleshooting for large mission-critical applications
//!
//! A full Rust reproduction of *Satish, Shiou, Zhang, Elmeleegy,
//! Zwaenepoel — "Scrub: Online TroubleShooting for Large Mission-Critical
//! Applications" (EuroSys 2018)*: the event model and ScrubQL language, the
//! host-impact-minimizing query planner and execution pipeline (host-side
//! selection/projection/sampling; centralized join/group-by/aggregation in
//! ScrubCentral), the two-stage sampling estimator with error bounds, the
//! probabilistic aggregations (TOP-K, COUNT_DISTINCT), a deterministic
//! discrete-event cluster simulator, a Turn-like ad bidding platform with
//! every §8 case-study anomaly, and the logging baseline Scrub is compared
//! against.
//!
//! ```
//! use scrub::prelude::*;
//!
//! // Build the §8.1 spam scenario: a Zipf user population + two bots.
//! let mut cfg = scrub::scenario::spam();
//! cfg.page_views_per_sec = 10.0; // keep the doctest quick
//! let mut platform = build_platform(cfg);
//!
//! // Figure 9's query: count bid requests per user in 10 s windows.
//! let client = ScrubClient::new(&platform.scrub);
//! let query = client
//!     .submit(
//!         &mut platform.sim,
//!         "select bid.user_id, COUNT(*) from bid \
//!          @[Service in BidServers] group by bid.user_id \
//!          window 10 s duration 30 s",
//!     )
//!     .expect("query accepted");
//! platform.sim.run_until(SimTime::from_secs(60));
//!
//! assert!(!query.results(&platform.sim).is_empty());
//! // Every query carries an execution profile: taps, sheds, bytes,
//! // retransmissions, window accounting, ingest latency.
//! let profile = query.profile(&platform.sim).expect("profile");
//! assert!(profile.total_tapped() > 0);
//! ```

pub use adplatform;
pub use scrub_agent as agent;
pub use scrub_baseline as baseline;
pub use scrub_central as central;
pub use scrub_core as core;
pub use scrub_obs as obs;
pub use scrub_server as server;
pub use scrub_simnet as simnet;
pub use scrub_sketch as sketch;

pub use adplatform::scenario;

/// The items most programs need.
pub mod prelude {
    pub use adplatform::{build_platform, Platform, PlatformConfig};
    pub use scrub_central::{ExecutorStats, QuerySummary, ResultRow, WorkerTime};
    pub use scrub_core::prelude::*;
    pub use scrub_obs::{
        default_rules, merge_timelines, render_timeline, render_timeline_json, AlertEngine,
        AlertEvent, AlertEventKind, AlertLog, AlertProvenance, AlertRule, AnomalyDetector,
        FlightEvent, FlightEventKind, FlightRecorder, HostLosses, HostProfile, LossLedger,
        MetricsHistory, MetricsSnapshot, QueryProfile, RuleKind, SpanKind, TraceSpan, TraceStore,
    };
    pub use scrub_server::{
        deploy_central, deploy_server, AgentHarness, QueryHandle, QueryState, ScrubClient,
        ScrubDeployment, ScrubEnvelope, ScrubMsg,
    };
    pub use scrub_simnet::{
        FaultPlan, FaultStats, NodeId, NodeMeta, NodeSel, Sim, SimDuration, SimTime, Topology,
    };
}
