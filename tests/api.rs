//! Typed client API tests: `ScrubClient` / `QueryHandle` lifecycle,
//! rejection diagnostics, per-query execution profiles, explicit meta
//! targeting, and a differential check that the deprecated free-function
//! API and the typed API observe identical results on the same seed.

#![allow(clippy::field_reassign_with_default)]

use std::sync::Arc;

use scrub::prelude::*;
use scrub_core::error::ScrubError;
use scrub_core::event::RequestId;
use scrub_core::schema::EventTypeId;
use scrub_simnet::{Context, Node};

/// A host that emits a steady trickle of `ping` events.
struct PingHost {
    harness: AgentHarness,
    emitted: u64,
}

impl Node<ScrubMsg> for PingHost {
    fn on_start(&mut self, ctx: &mut Context<'_, ScrubMsg>) {
        self.harness.start(ctx);
        ctx.set_timer(SimDuration::from_ms(10), 1);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, ScrubMsg>, from: NodeId, msg: ScrubMsg) {
        let _ = self.harness.on_message(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, ScrubMsg>, timer: u64) {
        if self.harness.on_timer(ctx, timer) {
            return;
        }
        self.emitted += 1;
        self.harness.agent().log(
            EventTypeId(0),
            RequestId(self.emitted),
            ctx.now.as_ms(),
            &[Value::Long((self.emitted % 7) as i64)],
        );
        ctx.set_timer(SimDuration::from_ms(10), 1);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn registry() -> Arc<SchemaRegistry> {
    let reg = SchemaRegistry::new();
    reg.register(EventSchema::new("ping", vec![FieldDef::new("k", FieldType::Long)]).unwrap())
        .unwrap();
    Arc::new(reg)
}

fn cluster(hosts: usize, seed: u64) -> (Sim<ScrubMsg>, ScrubDeployment) {
    let config = ScrubConfig::default();
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), seed);
    let reg = registry();
    let central = deploy_central(&mut sim, &reg, config.clone(), "DC1");
    for i in 0..hosts {
        let name = format!("ping-{i}");
        let dc = if i % 2 == 0 { "DC1" } else { "DC2" };
        sim.add_node(
            NodeMeta::new(name.clone(), "PingServers", dc),
            Box::new(PingHost {
                harness: AgentHarness::new(name, config.clone(), central),
                emitted: 0,
            }),
        );
    }
    let d = deploy_server(&mut sim, reg, config, central, "DC1");
    (sim, d)
}

const QUERY: &str = "select COUNT(*) from ping @[all] window 5 s duration 20 s";

#[test]
fn lifecycle_submit_poll_results_stop() {
    let (mut sim, d) = cluster(2, 7);
    let client = ScrubClient::new(&d);
    let q = client.submit(&mut sim, QUERY).expect("query accepted");

    // freshly admitted: scheduled or already running, no rows yet
    let s0 = q.state(&sim).expect("record exists");
    assert!(matches!(s0, QueryState::Scheduled | QueryState::Running));
    assert!(q.results(&sim).is_empty());

    sim.run_until(SimTime::from_secs(12));
    assert_eq!(q.state(&sim), Some(QueryState::Running));
    assert!(!q.results(&sim).is_empty(), "windows should have closed");

    sim.run_until(SimTime::from_secs(60));
    assert_eq!(q.state(&sim), Some(QueryState::Done));
    let rec = q.record(&sim).expect("record exists");
    assert_eq!(rec.rows.len(), q.results(&sim).len());
    assert!(q.summary(&sim).is_some(), "summary after drain");
    let total: i64 = q
        .results(&sim)
        .iter()
        .map(|r| r.values[0].as_i64().unwrap())
        .sum();
    assert!(total > 0);
}

#[test]
fn stop_ends_collection_early() {
    let (mut sim, d) = cluster(1, 7);
    let q = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from ping @[all] window 5 s duration 10 m",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(20));
    q.stop(&mut sim);
    sim.run_until(SimTime::from_secs(60));
    assert_eq!(q.state(&sim), Some(QueryState::Done));
    let max_window = q
        .results(&sim)
        .iter()
        .map(|r| r.window_start_ms)
        .max()
        .unwrap();
    assert!(max_window <= 25_000, "collected after stop: {max_window}");
}

#[test]
fn bad_scrubql_is_a_typed_rejection() {
    let (mut sim, d) = cluster(1, 7);
    let client = ScrubClient::new(&d);

    let err = client
        .submit(&mut sim, "select NOPE(ping.k) from ping @[all]")
        .expect_err("unknown function must be rejected");
    match &err {
        ScrubError::Rejected(reason) => assert!(reason.contains("unknown function"), "{reason}"),
        other => panic!("expected Rejected, got {other}"),
    }

    // the rejection is also recorded server-side, with the source text
    let rej = client.rejections(&sim);
    assert_eq!(rej.len(), 1);
    assert!(rej[0].0.contains("NOPE"));

    // and the client keeps working afterwards
    client.submit(&mut sim, QUERY).expect("good query accepted");
}

#[test]
fn profile_reflects_load() {
    let (mut sim, d) = cluster(3, 11);
    let q = ScrubClient::new(&d)
        .submit(&mut sim, QUERY)
        .expect("accepted");
    sim.run_until(SimTime::from_secs(60));

    let prof = q.profile(&sim).expect("profile retained after finish");
    assert_eq!(prof.query_id, q.id().0);
    assert_eq!(prof.hosts.len(), 3, "one profile entry per targeted host");
    assert!(prof.batches_ingested > 0);
    assert!(prof.bytes_first_sent > 0);
    assert_eq!(prof.bytes_retransmitted, 0, "no faults, no retransmits");
    assert!(prof.windows_closed > 0);
    assert_eq!(prof.windows_degraded, 0);
    assert!(prof.rows_emitted > 0);
    assert!(prof.total_tapped() > 0);
    assert!(prof.ingest_latency_ms.count > 0);
    for (host, h) in &prof.hosts {
        assert!(h.events > 0, "{host} contributed no events");
        assert!(h.bytes_first_sent > 0, "{host} shipped no bytes");
    }
}

#[test]
fn meta_query_needs_explicit_target() {
    let (mut sim, d) = cluster(2, 13);
    let client = ScrubClient::new(&d);

    // @[all] never reaches Scrub's own nodes: over the app inventory a
    // scrub_batch query finds hosts, but its input events only exist on
    // ScrubCentral, so nothing comes back.
    let q_all = client
        .submit(
            &mut sim,
            "select COUNT(*) from scrub_batch @[all] window 5 s duration 20 s",
        )
        .expect("accepted over app hosts");

    // Explicitly naming the service reaches the central node's own tap.
    let q_meta = client
        .submit(
            &mut sim,
            "select COUNT(*) from scrub_batch @[Service in ScrubCentral] \
             window 5 s duration 20 s",
        )
        .expect("meta query accepted");

    // app traffic for the meta-events to describe
    let q_app = client.submit(&mut sim, QUERY).expect("app query accepted");

    sim.run_until(SimTime::from_secs(60));
    assert_eq!(q_app.state(&sim), Some(QueryState::Done));
    assert!(
        q_all.results(&sim).is_empty(),
        "@[all] must not see meta events"
    );
    let meta_total: i64 = q_meta
        .results(&sim)
        .iter()
        .map(|r| r.values[0].as_i64().unwrap())
        .sum();
    assert!(meta_total > 0, "meta pipeline saw no batches");
}
