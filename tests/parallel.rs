//! Differential tests for the parallel ingest pipeline: the same
//! simulated deployment run with `central_partitions = 1` (the inline
//! deterministic reference) and `central_partitions = N` (the threaded
//! batch pipeline, N = 4 and 8 here) must produce equal sorted result
//! rows and an equal `QuerySummary` (coverage picture, windows emitted,
//! and — for estimator-eligible sampled queries — the Eq 1–3 estimates)
//! — for plain aggregation, the request-id join, a sampled ungrouped
//! aggregate, and a chaos fault plan with link loss. A property test at
//! the executor level additionally checks that merging pre-folded
//! per-partition group states equals the inline single-state fold for
//! arbitrary event interleavings.
//!
//! "Equal" is bitwise for everything except `f64`-valued figures
//! (Double aggregate columns, estimates, error bounds): the threaded
//! backend reduces per-partition partials in a different order than the
//! sequential reference, and f64 addition is not associative, so those
//! are compared to a 1e-9 relative tolerance. Integer counts, group
//! keys, windows and every summary counter must match exactly.

#![allow(clippy::field_reassign_with_default)]

use std::sync::Arc;

use scrub::prelude::*;
use scrub_core::event::RequestId;
use scrub_core::schema::EventTypeId;
use scrub_simnet::{Context, Node};

/// A host emitting `bid` (type 0) and `impression` (type 1) events every
/// millisecond; impressions share every other bid's request id so the
/// equi-join has real matches.
struct DualHost {
    harness: AgentHarness,
    emitted: u64,
}

impl Node<ScrubMsg> for DualHost {
    fn on_start(&mut self, ctx: &mut Context<'_, ScrubMsg>) {
        self.harness.start(ctx);
        ctx.set_timer(SimDuration::from_ms(1), 1);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, ScrubMsg>, from: NodeId, msg: ScrubMsg) {
        let _ = self.harness.on_message(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, ScrubMsg>, timer: u64) {
        if self.harness.on_timer(ctx, timer) {
            return;
        }
        let now = ctx.now.as_ms();
        for _ in 0..3 {
            self.emitted += 1;
            let rid = RequestId(self.emitted);
            self.harness.agent().log(
                EventTypeId(0),
                rid,
                now,
                &[
                    Value::Long((self.emitted % 11) as i64),
                    Value::Double((self.emitted % 100) as f64 * 0.01),
                ],
            );
            if self.emitted.is_multiple_of(2) {
                self.harness
                    .agent()
                    .log(EventTypeId(1), rid, now, &[Value::Double(0.25)]);
            }
        }
        ctx.set_timer(SimDuration::from_ms(1), 1);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn registry() -> Arc<SchemaRegistry> {
    let reg = SchemaRegistry::new();
    reg.register(
        EventSchema::new(
            "bid",
            vec![
                FieldDef::new("user_id", FieldType::Long),
                FieldDef::new("price", FieldType::Double),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    reg.register(
        EventSchema::new("impression", vec![FieldDef::new("cost", FieldType::Double)]).unwrap(),
    )
    .unwrap();
    Arc::new(reg)
}

/// One full simulated run; returns (sorted rows, summary signature,
/// per-column two-stage estimates, trace signature, loss ledger, plan
/// profile signature). Everything except `partitions` is held fixed, so
/// any divergence is the parallel backend's fault.
type RunOutput = (
    Vec<(i64, Vec<Value>, bool)>,
    String,
    Vec<Option<scrub_sketch::TwoStageEstimate>>,
    std::collections::BTreeMap<u64, Vec<(SpanKind, i64, String)>>,
    String,
    String,
);

/// The partition-invariant slice of a merged [`PlanProfile`]: operator
/// identity, estimates, integer row/byte counters and the annotation
/// notes. Cumulative `ns` is deliberately excluded — central-side ns is
/// wall-clock and varies run to run (like `ingest_backpressure` in the
/// query profile), so only the integer counters are held to exact
/// equality across partition counts.
fn plan_profile_sig(pp: &scrub_obs::PlanProfile) -> String {
    pp.ops
        .iter()
        .map(|o| {
            format!(
                "op{} {} host={} est={:.6} rows_in={} rows_out={} bytes={}",
                o.id, o.label, o.host_side, o.est_selectivity, o.rows_in, o.rows_out, o.bytes
            )
        })
        .chain(pp.notes.iter().cloned())
        .collect::<Vec<_>>()
        .join("\n")
}

fn run(partitions: usize, query: &str, chaos: bool) -> RunOutput {
    run_with(partitions, query, chaos, |_| {})
}

fn run_with(
    partitions: usize,
    query: &str,
    chaos: bool,
    tweak: impl Fn(&mut ScrubConfig),
) -> RunOutput {
    let mut config = ScrubConfig::default();
    config.central_partitions = partitions;
    // Trace a fixed slice of requests: the deterministic sampler must
    // pick the same requests and produce hop-identical lifecycles no
    // matter how many partitions central runs.
    config.trace_sample_rate = 0.2;
    if chaos {
        config.agent_retry_base_ms = 200;
        config.window_grace_ms = 6_000;
        config.host_grace_ms = 12_000;
    }
    tweak(&mut config);
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 7);
    let reg = registry();
    let central = deploy_central(&mut sim, &reg, config.clone(), "DC1");
    for i in 0..3 {
        let dc = if i % 2 == 0 { "DC1" } else { "DC2" };
        let name = format!("dual-{i}");
        sim.add_node(
            NodeMeta::new(name.clone(), "DualServers", dc),
            Box::new(DualHost {
                harness: AgentHarness::new(&name, config.clone(), central),
                emitted: 0,
            }),
        );
    }
    let d = deploy_server(&mut sim, reg, config, central, "DC1");
    let qid = ScrubClient::new(&d)
        .submit(&mut sim, query)
        .expect("query accepted");
    if chaos {
        sim.run_until(SimTime::from_ms(1_500));
        let agents = NodeSel::Service("DualServers".into());
        let central_sel = NodeSel::Host("scrub-central".into());
        sim.set_link_drop(agents.clone(), central_sel.clone(), 0.15);
        sim.set_link_drop(central_sel, agents, 0.15);
    }
    sim.run_until(SimTime::from_secs(45));
    if chaos {
        assert!(sim.fault_stats().dropped_random > 0, "faults never fired");
    }
    let rec = qid.record(&sim).unwrap();
    assert_eq!(rec.state, QueryState::Done);
    let s = rec.summary.as_ref().unwrap();
    let mut rows: Vec<(i64, Vec<Value>, bool)> = rec
        .rows
        .iter()
        .map(|r| (r.window_start_ms, r.values.clone(), r.degraded))
        .collect();
    rows.sort_by_key(|(w, values, degraded)| (*w, format!("{values:?}"), *degraded));
    let sig = format!(
        "targeted={} live={} reporting={} matched={} sampled={} shed={} \
         budget_shed={} groups_overflow={} \
         windows={} coverage={:.9} degraded_rows={} duplicates={}",
        s.hosts_targeted,
        s.hosts_live,
        s.hosts_reporting,
        s.total_matched,
        s.total_sampled,
        s.total_shed,
        s.total_budget_shed,
        s.groups_overflow,
        s.windows_emitted,
        s.coverage(),
        s.degraded_rows,
        s.duplicate_batches,
    );
    // Trace signatures deliberately exclude the Route partition index —
    // that is the one hop detail allowed to differ across backends.
    let trace_sig = qid
        .traces(&sim)
        .map(|store| store.signature())
        .unwrap_or_default();
    let ledger = qid.loss_ledger(&sim).expect("ledger for a known query");
    assert!(
        ledger.reconciles(),
        "loss ledger must reconcile with the profile's tap counters"
    );
    let ledger_sig = format!("{ledger:?}");
    let plan_sig = qid
        .plan_profile(&sim)
        .map(|pp| plan_profile_sig(&pp))
        .expect("plan profile for a known query");
    (
        rows,
        sig,
        s.estimates.clone(),
        trace_sig,
        ledger_sig,
        plan_sig,
    )
}

/// Floating-point figures must agree across partition counts; the
/// threaded backend sums/merges per-partition partials, so its values
/// match the inline reference up to floating-point rounding (∞ must
/// agree exactly). Integer values are compared exactly elsewhere.
fn assert_f64_eq(a: f64, b: f64, what: &str) {
    if a.is_infinite() || b.is_infinite() {
        assert!(a == b, "{what}: {a} vs {b}");
        return;
    }
    let denom = a.abs().max(b.abs()).max(1e-12);
    assert!(
        (a - b).abs() / denom < 1e-9,
        "{what} diverges across partition counts: {a} vs {b}"
    );
}

/// Exact equality for every value except `Double`, which tolerates the
/// reduction-order rounding of the parallel merge (SUM/AVG of doubles is
/// not FP-associative; counts and group keys must match bitwise).
fn assert_rows_eq(rows1: &[(i64, Vec<Value>, bool)], rows_n: &[(i64, Vec<Value>, bool)]) {
    assert_eq!(
        rows1.len(),
        rows_n.len(),
        "row count diverges across partition counts"
    );
    for (i, ((w1, v1, d1), (wn, vn, dn))) in rows1.iter().zip(rows_n).enumerate() {
        assert_eq!((w1, d1), (wn, dn), "row {i} window/degraded diverge");
        assert_eq!(v1.len(), vn.len(), "row {i} arity diverges");
        for (j, (a, b)) in v1.iter().zip(vn).enumerate() {
            match (a, b) {
                (Value::Double(x), Value::Double(y)) => {
                    assert_f64_eq(*x, *y, &format!("row {i} col {j}"));
                }
                _ => assert_eq!(a, b, "row {i} col {j} diverges"),
            }
        }
    }
}

fn assert_differential(query: &str, chaos: bool) {
    assert_differential_with(query, chaos, 4, |_| {});
}

/// Differential run of partitions 1 vs `parts`, with a config tweak
/// applied identically to both; returns the reference (partitions = 1)
/// output so callers can make scenario-specific assertions on it.
fn assert_differential_with(
    query: &str,
    chaos: bool,
    parts: usize,
    tweak: impl Fn(&mut ScrubConfig),
) -> RunOutput {
    let (rows1, sig1, est1, traces1, ledger1, plan1) = run_with(1, query, chaos, &tweak);
    let (rows_n, sig_n, est_n, traces_n, ledger_n, plan_n) = run_with(parts, query, chaos, &tweak);
    assert!(!rows1.is_empty(), "reference run produced no rows");
    assert_rows_eq(&rows1, &rows_n);
    assert_eq!(
        sig1, sig_n,
        "summary diverges between partitions 1 and {parts}"
    );
    assert!(
        plan1.contains("rows_in"),
        "plan profile signature is empty: {plan1:?}"
    );
    assert_eq!(
        plan1, plan_n,
        "merged plan profiles diverge between partitions 1 and {parts}"
    );
    assert!(!traces1.is_empty(), "no request was traced at rate 0.2");
    assert_eq!(
        traces1, traces_n,
        "trace signatures diverge between partitions 1 and {parts}"
    );
    assert_eq!(
        ledger1, ledger_n,
        "loss ledgers diverge between partitions 1 and {parts}"
    );
    assert_eq!(est1.len(), est_n.len(), "estimate column count diverges");
    for (i, (a, b)) in est1.iter().zip(&est_n).enumerate() {
        match (a, b) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_f64_eq(a.estimate, b.estimate, &format!("estimate[{i}]"));
                assert_f64_eq(a.error_bound, b.error_bound, &format!("error_bound[{i}]"));
            }
            _ => panic!("estimate[{i}] present in one run only"),
        }
    }
    (rows1, sig1, est1, traces1, ledger1, plan1)
}

#[test]
fn aggregate_rows_identical_across_partition_counts() {
    assert_differential(
        "select bid.user_id, COUNT(*) from bid @[all] \
         group by bid.user_id window 5 s duration 15 s",
        false,
    );
}

/// The v1 row wire format must stay partition-invariant too (the default
/// config runs columnar, so every other differential here covers v2).
#[test]
fn aggregate_rows_identical_across_partitions_with_row_wire_format() {
    assert_differential_with(
        "select bid.user_id, COUNT(*) from bid @[all] \
         group by bid.user_id window 5 s duration 15 s",
        false,
        4,
        |c| c.wire_format = scrub_core::config::WireFormat::Row,
    );
}

/// The plan-profile signature with byte-valued counters removed: wire
/// bytes legitimately differ between row and columnar encodings, but
/// every integer row counter, estimate and operator identity must not.
fn format_invariant_plan_sig(sig: &str) -> String {
    sig.lines()
        .filter(|l| l.starts_with("op"))
        .map(|l| l.split(" bytes=").next().unwrap_or(l).to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Row-encoded and columnar-encoded runs of the same deployment must
/// produce the same results, summary counters, trace lifecycles,
/// estimates and integer plan-profile counters. Two artifacts are
/// compared with format-aware tolerance: wire bytes legitimately differ
/// (columnar frames are smaller), and — because the simnet charges a
/// per-byte transmit delay — batch arrival interleaving across hosts
/// shifts, which perturbs f64 reduction order (AVG/SUM of doubles) and
/// span timestamps. Bitwise fold identity between the row loop and the
/// vectorized columnar path is proven separately by the executor-level
/// property test below, where the interleaving is held fixed.
#[test]
fn row_and_columnar_wire_formats_agree_end_to_end() {
    let q = "select bid.user_id, COUNT(*), AVG(bid.price) from bid @[all] \
             group by bid.user_id window 5 s duration 15 s";
    let (rows_c, sig_c, est_c, traces_c, _ledger_c, plan_c) = run_with(1, q, false, |_| {});
    let (rows_r, sig_r, est_r, traces_r, _ledger_r, plan_r) = run_with(1, q, false, |c| {
        c.wire_format = scrub_core::config::WireFormat::Row;
    });
    assert!(!rows_c.is_empty(), "reference run produced no rows");
    assert_rows_eq(&rows_c, &rows_r);
    assert_eq!(sig_c, sig_r, "summaries diverge between wire formats");
    // Same requests traced, same hop sequence per request; at_ms is
    // arrival-time dependent and therefore format dependent.
    let hops = |t: &std::collections::BTreeMap<u64, Vec<(SpanKind, i64, String)>>| {
        t.iter()
            .map(|(rid, spans)| {
                let seq: Vec<(SpanKind, String)> =
                    spans.iter().map(|(k, _, h)| (*k, h.clone())).collect();
                (*rid, seq)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(
        hops(&traces_c),
        hops(&traces_r),
        "trace lifecycles diverge between wire formats"
    );
    assert_eq!(est_c.len(), est_r.len());
    for (i, (a, b)) in est_c.iter().zip(&est_r).enumerate() {
        match (a, b) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_f64_eq(a.estimate, b.estimate, &format!("estimate[{i}]"));
                assert_f64_eq(a.error_bound, b.error_bound, &format!("error_bound[{i}]"));
            }
            _ => panic!("estimate[{i}] present in one format only"),
        }
    }
    assert_eq!(
        format_invariant_plan_sig(&plan_c),
        format_invariant_plan_sig(&plan_r),
        "integer plan-profile counters diverge between wire formats"
    );
}

#[test]
fn join_rows_identical_across_partition_counts() {
    assert_differential(
        "select COUNT(*) from bid, impression @[all] window 5 s duration 15 s",
        false,
    );
}

#[test]
fn sampled_estimates_identical_across_partition_counts() {
    // Estimator-eligible query (single stream, ungrouped, event-sampled):
    // the summary carries Eq 1–3 estimates, which the threaded backend
    // must assemble from every partition's per-host moments — taking one
    // partition's slice would bias τ̂ low.
    let query = "select COUNT(*), SUM(bid.price) from bid @[all] \
                 sample events 50% window 5 s duration 15 s";
    assert_differential(query, false);
    let (_, _, est, _, _, _) = run(4, query, false);
    for (i, e) in est.iter().enumerate() {
        let e = e.unwrap_or_else(|| panic!("column {i} should carry an estimate"));
        assert!(e.estimate > 0.0, "column {i} estimate degenerate: {e:?}");
    }
}

#[test]
fn bounded_groups_overflow_identical_across_partition_counts() {
    // 11 distinct user ids per window under a cap of 4: the
    // keep-smallest-keys overflow policy must drop the same rows and
    // keep the same groups no matter how the events are partitioned.
    let (rows, sig, _, _, _, plan_sig) = assert_differential_with(
        "select bid.user_id, COUNT(*) from bid @[all] \
         group by bid.user_id window 5 s duration 15 s",
        false,
        4,
        |c| c.max_groups = 4,
    );
    assert!(
        sig.split_whitespace().any(|f| f
            .strip_prefix("groups_overflow=")
            .is_some_and(|v| v.parse::<u64>().unwrap_or(0) > 0)),
        "the cap never overflowed: {sig}"
    );
    // The overflow surfaces in EXPLAIN ANALYZE as a groups_kept /
    // groups_dropped annotation on the plan profile.
    assert!(
        plan_sig.contains("group state capped at 4 groups") && plan_sig.contains("groups_dropped"),
        "plan profile missing the overflow annotation: {plan_sig}"
    );
    // The cap binds per window: at most 4 groups survive each.
    let mut per_window = std::collections::BTreeMap::<i64, usize>::new();
    for (w, _, degraded) in &rows {
        *per_window.entry(*w).or_default() += 1;
        assert!(
            degraded,
            "overflowed windows must mark surviving rows degraded"
        );
    }
    assert!(
        per_window.values().all(|&n| n <= 4),
        "cap exceeded: {per_window:?}"
    );
}

#[test]
fn budget_shed_identical_across_partition_counts() {
    // A budget far below the workload's tap cost: the agent's per-second
    // tracker sheds most ship work, and the cumulative budget_shed
    // counters must survive partition routing, max-merge and the ledger
    // identically for 1 and 4 partitions.
    let (_, sig, ..) = assert_differential_with(
        "select bid.user_id, COUNT(*) from bid @[all] \
         group by bid.user_id window 5 s duration 15 s",
        false,
        4,
        |c| {
            c.enforce_host_budget = true;
            c.host_cpu_budget = 0.0001; // 100k ns of tap work per second
        },
    );
    assert!(
        sig.split_whitespace().any(|f| f
            .strip_prefix("budget_shed=")
            .is_some_and(|v| v.parse::<u64>().unwrap_or(0) > 0)),
        "the budget tracker never shed: {sig}"
    );
}

#[test]
fn aggregate_rows_identical_at_eight_partitions() {
    // Same contract at the full E09 fan-out: eight workers time-slicing
    // on however many cores the test box has must still land on the
    // inline reference's rows, summary, traces, ledger and profile.
    assert_differential_with(
        "select bid.user_id, COUNT(*), AVG(bid.price) from bid @[all] \
         group by bid.user_id window 5 s duration 15 s",
        false,
        8,
        |_| {},
    );
}

/// One chaos run at the given partition count, returning the health
/// plane's renders: the central alert log and the query's merged
/// flight-recorder timeline.
fn alert_run(partitions: usize) -> (String, String) {
    let mut config = ScrubConfig::default();
    config.central_partitions = partitions;
    config.trace_sample_rate = 0.2;
    config.agent_retry_base_ms = 200;
    config.window_grace_ms = 6_000;
    config.host_grace_ms = 12_000;
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 7);
    let reg = registry();
    let central = deploy_central(&mut sim, &reg, config.clone(), "DC1");
    for i in 0..3 {
        let dc = if i % 2 == 0 { "DC1" } else { "DC2" };
        let name = format!("dual-{i}");
        sim.add_node(
            NodeMeta::new(name.clone(), "DualServers", dc),
            Box::new(DualHost {
                harness: AgentHarness::new(&name, config.clone(), central),
                emitted: 0,
            }),
        );
    }
    let d = deploy_server(&mut sim, reg, config, central, "DC1");
    let q = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select bid.user_id, COUNT(*) from bid @[all] \
             group by bid.user_id window 5 s duration 15 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_ms(1_500));
    let agents = NodeSel::Service("DualServers".into());
    let central_sel = NodeSel::Host("scrub-central".into());
    sim.set_link_drop(agents.clone(), central_sel.clone(), 0.15);
    sim.set_link_drop(central_sel, agents, 0.15);
    sim.run_until(SimTime::from_secs(45));
    assert_eq!(q.state(&sim), Some(QueryState::Done));
    let node = sim
        .node_as::<scrub::server::CentralNode<ScrubMsg>>(central)
        .expect("central node");
    let alert_log = node.alert_engine().log().render();
    let (events, dropped) = q.timeline(&sim).expect("flight recorder journaled");
    let timeline = render_timeline(q.id().0, &events, dropped);
    (alert_log, timeline)
}

/// The health plane is part of the partition-invariance contract: the
/// alert log (which rules fired, when, at what value, blaming whom) and
/// the per-query flight recorder must render byte-identically whether
/// central folds inline or across 4 threaded partitions. Alert
/// evaluation reads only node-side folds (profiles, heartbeats, trace
/// stores) plus the close-gated groups_overflow counter, so nothing in
/// the log may depend on executor scheduling.
#[test]
fn alert_sequence_identical_across_partition_counts() {
    let (alerts_1, timeline_1) = alert_run(1);
    let (alerts_4, timeline_4) = alert_run(4);
    assert_eq!(
        alerts_1, alerts_4,
        "alert sequences diverge between partitions 1 and 4"
    );
    assert_eq!(
        timeline_1, timeline_4,
        "flight recorders diverge between partitions 1 and 4"
    );
    // The chaos actually tripped the retransmit machinery and the rules
    // saw it — an empty log would make the equality vacuous.
    assert!(
        alerts_1.contains("FIRED") && alerts_1.contains("retransmit_storm"),
        "retransmit_storm never fired under 15% loss:\n{alerts_1}"
    );
    assert!(
        timeline_1.contains("retransmit"),
        "timeline missing retransmit episodes:\n{timeline_1}"
    );
}

#[test]
fn chaos_run_identical_across_partition_counts() {
    // 15% bidirectional loss between the agents and central: the retransmit
    // and dedup machinery runs hot, and the threaded backend must still
    // land on exactly the inline backend's rows and coverage accounting.
    assert_differential(
        "select bid.user_id, COUNT(*) from bid @[all] \
         group by bid.user_id window 5 s duration 15 s",
        true,
    );
}

// ---------------------------------------------------------------------
// Merge/fold equivalence at the executor level: for ARBITRARY event
// interleavings (timestamps, group keys, values, batch boundaries) the
// two-phase aggregation — each partition folds its own group states,
// the router merges the pre-folded states at window close — must equal
// the inline single-state fold. This is the algebraic heart of the
// batch pipeline (Welford merge + keep-smallest-keys re-cap), exercised
// directly against the production `PartitionedExecutor`.

use scrub_agent::{BatchPayload, EventBatch};
use scrub_central::PartitionedExecutor;
use scrub_core::config::WireFormat;
use scrub_core::event::Event;
use scrub_core::plan::{compile, QueryId};
use scrub_core::ql::parser::parse_query;

/// Fold the event stream through the production executor at `parts`
/// partitions (chunked into batches of `chunk` events, rotating over
/// three hosts) and finish; returns sorted rows and the summary.
fn fold_run(
    events: &[(i64, i64, f64)],
    chunk: usize,
    parts: usize,
    format: WireFormat,
) -> (Vec<(i64, Vec<Value>, bool)>, QuerySummary) {
    let reg = registry();
    let spec = parse_query(
        "select bid.user_id, COUNT(*), AVG(bid.price), SUM(bid.price) from bid \
         group by bid.user_id window 10 s",
    )
    .unwrap();
    let plan = compile(&spec, &reg, &ScrubConfig::default(), QueryId(9))
        .unwrap()
        .central;
    let mut exec = PartitionedExecutor::new(plan, 0, parts);
    for (seq, batch) in events.chunks(chunk).enumerate() {
        let evs: Vec<Event> = batch
            .iter()
            .enumerate()
            .map(|(i, (ts, user, price))| {
                Event::new(
                    EventTypeId(0),
                    RequestId((seq * chunk + i) as u64),
                    *ts,
                    vec![Value::Long(*user), Value::Double(*price)],
                )
            })
            .collect();
        let n = evs.len() as u64;
        exec.ingest(EventBatch {
            seq: seq as u64,
            attempt: 0,
            query_id: QueryId(9),
            type_id: EventTypeId(0),
            host: format!("h{}", seq % 3),
            payload: BatchPayload::from_events(evs, format),
            matched: n,
            sampled: n,
            shed: 0,
            budget_shed: 0,
            seen: n,
            bytes: 0,
            spans: vec![],
        });
    }
    let (rows, summary) = exec.finish();
    let mut rows: Vec<(i64, Vec<Value>, bool)> = rows
        .into_iter()
        .map(|r| (r.window_start_ms, r.values, r.degraded))
        .collect();
    // The leading column is the Long group key — exact, so the sort
    // order cannot be perturbed by Double rounding.
    rows.sort_by_key(|(w, values, _)| (*w, values.first().cloned().map(|v| format!("{v:?}"))));
    (rows, summary)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prefolded_partition_merge_equals_inline_fold(
        raw in prop::collection::vec((0i64..30_000, 0i64..10, 0u32..1_000), 1..200),
        chunk in 1usize..50,
        parts in 2usize..=8,
    ) {
        let events: Vec<(i64, i64, f64)> = raw
            .iter()
            .map(|(ts, user, p)| (*ts, *user, *p as f64 * 0.01))
            .collect();
        let (rows1, s1) = fold_run(&events, chunk, 1, WireFormat::Columnar);
        let (rows_n, sn) = fold_run(&events, chunk, parts, WireFormat::Columnar);
        prop_assert!(!rows1.is_empty());
        assert_rows_eq(&rows1, &rows_n);
        // the vectorized columnar fold replicates the row loop's exact
        // operation order, so a row-encoded run is *bitwise* identical
        let (rows_r, sr) = fold_run(&events, chunk, 1, WireFormat::Row);
        prop_assert_eq!(&rows1, &rows_r);
        let (rows_rn, srn) = fold_run(&events, chunk, parts, WireFormat::Row);
        assert_rows_eq(&rows_r, &rows_rn);
        prop_assert_eq!(s1.total_matched, sr.total_matched);
        prop_assert_eq!(s1.windows_emitted, sr.windows_emitted);
        prop_assert_eq!(s1.groups_overflow, sr.groups_overflow);
        prop_assert_eq!(sr.groups_overflow, srn.groups_overflow);
        prop_assert_eq!(s1.total_matched, sn.total_matched);
        prop_assert_eq!(s1.total_sampled, sn.total_sampled);
        prop_assert_eq!(s1.hosts_reporting, sn.hosts_reporting);
        prop_assert_eq!(s1.windows_emitted, sn.windows_emitted);
        prop_assert_eq!(s1.groups_overflow, sn.groups_overflow);
        prop_assert_eq!(s1.degraded_rows, sn.degraded_rows);
    }
}

// ---------------------------------------------------------------------
// Telemetry-store rollup equivalence: every downsampled tier must be a
// *direct aggregation* of the raw per-tick deltas it covers — sum (as
// last − first) / min / max / mean of deltas for counters, last / min /
// max / mean of sampled values for gauges — including zero-backfill for
// metrics that first appear mid-bucket, and the exemplar interval must
// be the bucket's earliest max-positive-delta raw interval. The oracle
// below folds the same value series by hand, straight from the contract
// in `scrub_obs::tsdb`'s module docs.

use scrub::obs::{MetricsSnapshot, Resolution, RolledPoint, RollupKind, TelemetryStore};

/// Hand-rolled aggregation of the zero-extended value series `vals`
/// (index i = the value at `times[i]`; zeros before snapshot index
/// `appear`) into factor-`f` buckets. The exemplar of a bucket whose
/// largest positive delta starts at `from_ms` is `Some(from_ms as u64)`,
/// matching the resolver the test feeds the store.
fn roll_oracle(
    kind: RollupKind,
    vals: &[i64],
    times: &[i64],
    f: usize,
    appear: usize,
) -> Vec<RolledPoint> {
    let mut out = Vec::new();
    let mut j = 0;
    while (j + 1) * f < vals.len() {
        let (s, e) = (j * f, (j + 1) * f);
        j += 1;
        if appear > e {
            // the metric had not appeared by bucket end: no point sealed
            continue;
        }
        let (mut min, mut max, mut sum) = (i64::MAX, i64::MIN, 0i64);
        let (mut best_d, mut best_from, mut best_at) = (0i64, 0i64, 0i64);
        for i in s + 1..=e {
            let d = vals[i] - vals[i - 1];
            let folded = match kind {
                RollupKind::Counter => d,
                RollupKind::Gauge => vals[i],
            };
            min = min.min(folded);
            max = max.max(folded);
            sum += folded;
            if d > best_d {
                best_d = d;
                best_from = times[i - 1];
                best_at = times[i];
            }
        }
        out.push(RolledPoint {
            start_ms: times[s],
            at_ms: times[e],
            kind,
            delta: vals[e] - vals[s],
            last: vals[e],
            min,
            max,
            mean_milli: (sum as i128 * 1_000 / f as i128) as i64,
            max_from_ms: best_from,
            max_at_ms: best_at,
            exemplar: (best_d > 0).then_some(best_from as u64),
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rolled_tiers_equal_direct_aggregation_of_raw_deltas(
        counter_deltas in prop::collection::vec(0i64..500, 5..90),
        gauge_vals in prop::collection::vec(-300i64..300, 5..90),
        gaps in prop::collection::vec(1i64..3_000, 5..90),
        mid in 2usize..6,
        mult in 2usize..5,
        appear_pick in 0usize..1_000,
    ) {
        let n = counter_deltas.len().min(gauge_vals.len()).min(gaps.len());
        let coarse = mid * mult;
        // strictly increasing sim times and a cumulative counter series
        let mut times = vec![0i64];
        let mut cvals = vec![0i64];
        for i in 0..n - 1 {
            times.push(times[i] + gaps[i]);
            cvals.push(cvals[i] + counter_deltas[i]);
        }
        let gvals = &gauge_vals[..n];
        // a second counter that first appears at snapshot `appear`
        let appear = 1 + appear_pick % (n - 1);
        let late_vals: Vec<i64> = (0..n)
            .map(|i| if i < appear { 0 } else { cvals[i] / 2 + 1 })
            .collect();

        let mut t = TelemetryStore::new(256, mid, coarse, 64);
        for i in 0..n {
            let mut s = MetricsSnapshot {
                at_ms: times[i],
                ..Default::default()
            };
            s.counters.insert("c".into(), cvals[i] as u64);
            s.gauges.insert("g".into(), gvals[i]);
            if i >= appear {
                s.counters.insert("late".into(), late_vals[i] as u64);
            }
            prop_assert!(t.record_with(s, |_m, from_ms, _to| Some(from_ms as u64)));
        }
        prop_assert_eq!(t.out_of_order(), 0);

        for (metric, kind, vals, ap) in [
            ("c", RollupKind::Counter, &cvals, 0usize),
            ("g", RollupKind::Gauge, &gvals.to_vec(), 0),
            ("late", RollupKind::Counter, &late_vals, appear),
        ] {
            for (res, f) in [(Resolution::Mid, mid), (Resolution::Coarse, coarse)] {
                let got = t.points(metric, res);
                let want = roll_oracle(kind, vals, &times, f, ap);
                prop_assert_eq!(
                    got, want,
                    "{} tier of {:?} diverges from direct aggregation", res, metric
                );
            }
        }
    }
}

/// One chaos run at `partitions` with small rollup factors, returning
/// the byte-stable mid+coarse `render_range` of every
/// `scrub_obs::partition_invariant` metric in central's telemetry store.
fn tsdb_run(partitions: usize) -> String {
    let mut config = ScrubConfig::default();
    config.central_partitions = partitions;
    config.trace_sample_rate = 0.2;
    config.agent_retry_base_ms = 200;
    config.window_grace_ms = 6_000;
    config.host_grace_ms = 12_000;
    config.tsdb_mid_factor = 4;
    config.tsdb_coarse_factor = 8;
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 7);
    let reg = registry();
    let central = deploy_central(&mut sim, &reg, config.clone(), "DC1");
    for i in 0..3 {
        let dc = if i % 2 == 0 { "DC1" } else { "DC2" };
        let name = format!("dual-{i}");
        sim.add_node(
            NodeMeta::new(name.clone(), "DualServers", dc),
            Box::new(DualHost {
                harness: AgentHarness::new(&name, config.clone(), central),
                emitted: 0,
            }),
        );
    }
    let d = deploy_server(&mut sim, reg, config, central, "DC1");
    let q = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select bid.user_id, COUNT(*) from bid @[all] \
             group by bid.user_id window 5 s duration 15 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_ms(1_500));
    let agents = NodeSel::Service("DualServers".into());
    let central_sel = NodeSel::Host("scrub-central".into());
    sim.set_link_drop(agents.clone(), central_sel.clone(), 0.15);
    sim.set_link_drop(central_sel, agents, 0.15);
    sim.run_until(SimTime::from_secs(45));
    assert_eq!(q.state(&sim), Some(QueryState::Done));
    let node = sim
        .node_as::<scrub::server::CentralNode<ScrubMsg>>(central)
        .expect("central node");
    let store = node.telemetry();
    let mut out = String::new();
    for m in store.metric_names() {
        if !scrub::obs::partition_invariant(&m) {
            continue;
        }
        for res in [Resolution::Mid, Resolution::Coarse] {
            out.push_str(&store.render_range(&m, res, None));
        }
    }
    out
}

/// The telemetry store is part of the partition-invariance contract:
/// tier contents *and exemplar picks* must render byte-identically
/// whether central folds inline or across 4 threaded partitions, even
/// with 15% bidirectional link loss exercising the retransmit machinery.
#[test]
fn telemetry_tiers_identical_across_partition_counts() {
    let a = tsdb_run(1);
    let b = tsdb_run(4);
    assert_eq!(a, b, "telemetry tiers diverge between partitions 1 and 4");
    // the equality must not be vacuous: buckets sealed at both factors
    // and at least one rollup resolved an exemplar trace rid
    assert!(a.contains("res=mid"), "no mid renders:\n{a}");
    assert!(a.contains("res=coarse"), "no coarse renders:\n{a}");
    assert!(
        !a.contains("cover=[empty]"),
        "a tier never sealed a bucket:\n{a}"
    );
    assert!(
        a.contains("rid="),
        "no exemplar resolved under a traced chaos run:\n{a}"
    );
}

// ---------------------------------------------------------------------
// Admission determinism: a fixed seed + config + submission order must
// always produce byte-identical admission decisions (the controller
// prices with the cost model at a configured assumed rate — wall-clock
// never enters the decision).

use proptest::prelude::*;
use scrub_core::config::AdmissionPolicy;
use scrub_server::{AdmissionDecision, QueryServerNode};

/// Build the DualHost deployment with the given admission config, submit
/// `queries` in order, and return (admission log, accepted ids).
fn admission_run(
    policy: AdmissionPolicy,
    budget: f64,
    rate: f64,
    queries: &[String],
) -> (Vec<AdmissionDecision>, Vec<Option<u64>>) {
    let mut config = ScrubConfig::default();
    config.admission = policy;
    config.host_cpu_budget = budget;
    config.admission_events_per_host_per_sec = rate;
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 7);
    let reg = registry();
    let central = deploy_central(&mut sim, &reg, config.clone(), "DC1");
    for i in 0..3 {
        let dc = if i % 2 == 0 { "DC1" } else { "DC2" };
        let name = format!("dual-{i}");
        sim.add_node(
            NodeMeta::new(name.clone(), "DualServers", dc),
            Box::new(DualHost {
                harness: AgentHarness::new(&name, config.clone(), central),
                emitted: 0,
            }),
        );
    }
    let d = deploy_server(&mut sim, reg, config, central, "DC1");
    let client = ScrubClient::new(&d);
    let accepted: Vec<Option<u64>> = queries
        .iter()
        .map(|q| client.submit(&mut sim, q).ok().map(|h| h.id().0))
        .collect();
    let server = sim
        .node_as::<QueryServerNode<ScrubMsg>>(d.server)
        .expect("server node");
    (server.admission_log.clone(), accepted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn admission_decisions_deterministic(
        policy_idx in 0usize..3,
        budget in 1e-4f64..1e-2,
        rate in 1_000.0f64..50_000.0,
        n in 1usize..7,
    ) {
        let policy = [
            AdmissionPolicy::Reject,
            AdmissionPolicy::Degrade,
            AdmissionPolicy::Evict,
        ][policy_idx];
        let pool = [
            "select COUNT(*) from bid @[all] window 5 s duration 15 s",
            "select bid.user_id, COUNT(*) from bid @[all] \
             group by bid.user_id window 5 s duration 15 s",
            "select AVG(bid.price) from bid @[all] window 5 s duration 15 s",
            "select COUNT(*) from impression @[all] window 5 s duration 15 s",
        ];
        let queries: Vec<String> = (0..n).map(|i| pool[i % pool.len()].to_string()).collect();
        let (log_a, acc_a) = admission_run(policy, budget, rate, &queries);
        let (log_b, acc_b) = admission_run(policy, budget, rate, &queries);
        // Every submission that parsed gets exactly one logged decision.
        prop_assert_eq!(log_a.len(), queries.len());
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(acc_a, acc_b);
    }
}
