//! Differential test: the full live pipeline (agents → simulated network →
//! ScrubCentral → query server) must produce exactly the same result rows
//! as the offline batch oracle executing the same compiled query over the
//! same events — for any unsampled query.

use std::sync::Arc;

use scrub::prelude::*;
use scrub_baseline::run_batch;
use scrub_core::event::{Event, RequestId};
use scrub_core::plan::{compile, QueryId};
use scrub_core::schema::EventTypeId;
use scrub_simnet::{Context, Node};

/// A host that replays a fixed set of events through its tap at the
/// events' own timestamps.
struct ReplayHost {
    harness: AgentHarness,
    events: Vec<Event>,
    next: usize,
}

const REPLAY_TIMER: u64 = 1;

impl Node<ScrubMsg> for ReplayHost {
    fn on_start(&mut self, ctx: &mut Context<'_, ScrubMsg>) {
        self.harness.start(ctx);
        ctx.set_timer(SimDuration::from_ms(1), REPLAY_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ScrubMsg>, from: NodeId, msg: ScrubMsg) {
        let _ = self.harness.on_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ScrubMsg>, timer: u64) {
        if self.harness.on_timer(ctx, timer) {
            return;
        }
        if timer == REPLAY_TIMER {
            let now = ctx.now.as_ms();
            while self.next < self.events.len() && self.events[self.next].timestamp <= now {
                let ev = &self.events[self.next];
                self.harness
                    .agent()
                    .log(ev.type_id, ev.request_id, ev.timestamp, &ev.values);
                self.next += 1;
            }
            if self.next < self.events.len() {
                ctx.set_timer(SimDuration::from_ms(1), REPLAY_TIMER);
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn registry() -> Arc<SchemaRegistry> {
    let reg = SchemaRegistry::new();
    reg.register(
        EventSchema::new(
            "bid",
            vec![
                FieldDef::new("user_id", FieldType::Long),
                FieldDef::new("exchange_id", FieldType::Long),
                FieldDef::new("price", FieldType::Double),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    reg.register(
        EventSchema::new(
            "impression",
            vec![
                FieldDef::new("line_item_id", FieldType::Long),
                FieldDef::new("cost", FieldType::Double),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    Arc::new(reg)
}

/// Deterministic event mix across 3 hosts: bids on all, impressions on one.
fn make_events(host: usize) -> Vec<Event> {
    let mut out = Vec::new();
    for i in 0..2000u64 {
        let ts = 500 + (i * 13) % 45_000; // spread over 45 s
        out.push(Event::new(
            EventTypeId(0),
            RequestId(host as u64 * 100_000 + i),
            ts as i64,
            vec![
                Value::Long(((i * 7 + host as u64) % 23) as i64),
                Value::Long((i % 4) as i64),
                Value::Double((i % 100) as f64 * 0.03),
            ],
        ));
        if host == 0 && i % 3 == 0 {
            out.push(Event::new(
                EventTypeId(1),
                RequestId(i), // joins with host 0's bid when i < 100_000
                (ts + 5) as i64,
                vec![Value::Long((i % 11) as i64), Value::Double(0.4)],
            ));
        }
    }
    out.sort_by_key(|e| e.timestamp);
    out
}

/// Run `src` through the live pipeline and through the oracle; compare.
fn assert_live_equals_oracle(src: &str) {
    // ---- live ----
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 99);
    let config = ScrubConfig::default();
    let reg = registry();
    let central = deploy_central(&mut sim, &reg, config.clone(), "DC1");
    let mut all_events = Vec::new();
    for h in 0..3 {
        let events = make_events(h);
        all_events.extend(events.clone());
        let name = format!("replay-{h}");
        sim.add_node(
            NodeMeta::new(
                name.clone(),
                "BidServers",
                if h == 2 { "DC2" } else { "DC1" },
            ),
            Box::new(ReplayHost {
                harness: AgentHarness::new(name, config.clone(), central),
                events,
                next: 0,
            }),
        );
    }
    let d = deploy_server(&mut sim, reg, config.clone(), central, "DC1");
    let qid = ScrubClient::new(&d)
        .submit(&mut sim, src)
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(120));
    let rec = qid.record(&sim).expect("query accepted");
    assert_eq!(rec.state, QueryState::Done, "query did not finish");

    // ---- oracle ----
    let spec = parse_query(src).unwrap();
    let cq = compile(&spec, &registry(), &config, QueryId(1)).unwrap();
    let (oracle_rows, oracle_summary) = run_batch(&cq, &all_events);

    // Compare as multisets keyed by (window, values). Floating-point
    // aggregates (SUM/AVG) legitimately differ in the last bits between
    // the live pipeline and the oracle because ingestion order differs
    // and float addition is not associative — canonicalize by rounding
    // to 9 significant-ish digits.
    let canon = |rows: &[scrub::central::ResultRow]| {
        let mut v: Vec<(i64, Vec<scrub_core::value::GroupKey>)> = rows
            .iter()
            .map(|r| {
                (
                    r.window_start_ms,
                    r.values
                        .iter()
                        .map(|x| match x {
                            Value::Double(d) => {
                                // near-zero sums differ absolutely (not
                                // relatively) across summation orders; snap
                                // them to exactly zero before relative
                                // rounding
                                if d.abs() < 1e-9 {
                                    Value::Double(0.0).group_key()
                                } else {
                                    let scale = 10f64.powi(9 - d.abs().log10().ceil() as i32);
                                    Value::Double((d * scale).round() / scale).group_key()
                                }
                            }
                            other => other.group_key(),
                        })
                        .collect(),
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        canon(&rec.rows),
        canon(&oracle_rows),
        "live and oracle rows differ for {src:?}"
    );
    assert_eq!(
        rec.summary.as_ref().unwrap().total_matched,
        oracle_summary.total_matched,
        "matched counts differ"
    );
}

#[test]
fn grouped_count_matches_oracle() {
    assert_live_equals_oracle(
        "select bid.user_id, COUNT(*) from bid @[Service in BidServers] \
         group by bid.user_id window 10 s duration 60 s",
    );
}

#[test]
fn filtered_sum_avg_matches_oracle() {
    assert_live_equals_oracle(
        "select SUM(bid.price), AVG(bid.price), MIN(bid.price), MAX(bid.price) \
         from bid where bid.exchange_id = 2 @[all] window 15 s duration 60 s",
    );
}

#[test]
fn grouped_by_expression_matches_oracle() {
    assert_live_equals_oracle(
        "select bid.user_id % 5, COUNT(*), SUM(bid.price) from bid \
         where bid.price > 0.5 @[all] group by bid.user_id % 5 \
         window 20 s duration 60 s",
    );
}

#[test]
fn join_count_matches_oracle() {
    assert_live_equals_oracle(
        "select COUNT(*) from bid, impression \
         where bid.exchange_id = 1 @[all] window 10 s duration 60 s",
    );
}

#[test]
fn join_grouped_matches_oracle() {
    assert_live_equals_oracle(
        "select impression.line_item_id, COUNT(*), AVG(bid.price) \
         from bid, impression @[all] group by impression.line_item_id \
         window 30 s duration 60 s",
    );
}

#[test]
fn count_distinct_matches_oracle() {
    // HLL is deterministic for identical input sets, so live == oracle
    assert_live_equals_oracle(
        "select COUNT_DISTINCT(bid.user_id) from bid @[all] \
         window 10 s duration 60 s",
    );
}

#[test]
fn in_list_and_string_functions_match_oracle() {
    assert_live_equals_oracle(
        "select COUNT(*) from bid \
         where bid.exchange_id in (0, 3) and bid.user_id between 3 and 15 \
         @[all] window 10 s duration 60 s",
    );
}
