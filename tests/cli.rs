//! Integration tests of the `scrubql` interactive shell, driven through
//! its stdin/stdout like a scripting user would.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_cli(scenario: &str, script: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_scrubql"))
        .args(["--batch", "--scenario", scenario])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn scrubql");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("scrubql run");
    assert!(out.status.success(), "scrubql exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn cli_runs_a_query_and_prints_rows() {
    let out = run_cli(
        "default",
        "select bid.exchange_id, COUNT(*) from bid @[Service in BidServers] \
         group by bid.exchange_id window 10 s duration 20 s\n\\quit\n",
    );
    assert!(out.contains("Done"), "query did not finish:\n{out}");
    assert!(out.contains("COUNT(*)"), "missing headers:\n{out}");
    // at least one data row with a window start and counts
    assert!(
        out.lines()
            .any(|l| l.starts_with(|c: char| c.is_ascii_digit())),
        "no data rows:\n{out}"
    );
    assert!(out.contains("hosts, matched"), "missing summary:\n{out}");
}

#[test]
fn cli_explain_shows_placement() {
    let out = run_cli(
        "default",
        "explain select COUNT(*) from bid, exclusion where bid.exchange_id = 1 \
         group by exclusion.reason\n\\quit\n",
    );
    assert!(out.contains("host plans (selection + projection + sampling ONLY):"));
    assert!(out.contains("equi-join on request_id across 2 inputs"));
}

#[test]
fn cli_rejects_bad_queries_gracefully() {
    let out = run_cli("default", "select FROB(x) from bid\n\\stats\n\\quit\n");
    assert!(out.contains("rejected:"), "no rejection message:\n{out}");
    // the shell keeps working afterwards
    assert!(out.contains("event production:"), "stats missing:\n{out}");
}

#[test]
fn cli_lists_events_and_hosts() {
    let out = run_cli("default", "\\events\n\\hosts\n\\quit\n");
    assert!(out.contains("bid("));
    assert!(out.contains("impression("));
    assert!(out.contains("BidServers"));
    assert!(out.contains("ProfileStore"));
}
