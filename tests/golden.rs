//! Golden-output checks: two runs of the same seeded scenario must
//! render byte-identical output, so the exported artifacts are diffable
//! across CI runs and a changed byte means behavior actually changed.
//!
//! Covered surfaces: the Prometheus-style `render_text` telemetry
//! (metric names sorted, buckets in bound order, integer values), and
//! the `explain` / `explain analyze` plan renderings for the paper's
//! five use-case queries. Wall-clock ns values (the per-operator
//! `*_op_ns` counters and the plan profile's ns column) are masked
//! before comparing — they are real elapsed time, the one
//! nondeterministic ingredient of an otherwise deterministic simulation.

#![allow(clippy::field_reassign_with_default)]

use std::sync::Arc;

use scrub::prelude::*;
use scrub::server::CentralNode;
use scrub_core::event::RequestId;
use scrub_core::schema::EventTypeId;
use scrub_simnet::{Context, Node};

/// A host emitting one `bid` event per millisecond.
struct OneHost {
    harness: AgentHarness,
    emitted: u64,
}

impl Node<ScrubMsg> for OneHost {
    fn on_start(&mut self, ctx: &mut Context<'_, ScrubMsg>) {
        self.harness.start(ctx);
        ctx.set_timer(SimDuration::from_ms(1), 1);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, ScrubMsg>, from: NodeId, msg: ScrubMsg) {
        let _ = self.harness.on_message(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, ScrubMsg>, timer: u64) {
        if self.harness.on_timer(ctx, timer) {
            return;
        }
        self.emitted += 1;
        self.harness.agent().log(
            EventTypeId(0),
            RequestId(self.emitted),
            ctx.now.as_ms(),
            &[Value::Long((self.emitted % 7) as i64)],
        );
        ctx.set_timer(SimDuration::from_ms(1), 1);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Mask the sample value of every `_ns`-suffixed metric line: those
/// counters accumulate wall-clock ns and legitimately differ between two
/// otherwise identical runs.
fn mask_ns_lines(rendered: &str) -> String {
    let mut out = String::new();
    for l in rendered.lines() {
        let name = l.split([' ', '{']).next().unwrap_or("");
        if !l.starts_with('#') && name.ends_with("_ns") {
            let masked = l.rsplit_once(' ').map(|(head, _)| head).unwrap_or(l);
            out.push_str(masked);
            out.push_str(" -\n");
        } else {
            out.push_str(l);
            out.push('\n');
        }
    }
    out
}

fn run_once() -> String {
    let mut config = ScrubConfig::default();
    config.trace_sample_rate = 0.1;
    let reg = SchemaRegistry::new();
    reg.register(EventSchema::new("bid", vec![FieldDef::new("user_id", FieldType::Long)]).unwrap())
        .unwrap();
    let reg = Arc::new(reg);
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 1771);
    let central = deploy_central(&mut sim, &reg, config.clone(), "DC1");
    sim.add_node(
        NodeMeta::new("gold-0", "GoldServers", "DC1"),
        Box::new(OneHost {
            harness: AgentHarness::new("gold-0", config.clone(), central),
            emitted: 0,
        }),
    );
    let d = deploy_server(&mut sim, reg, config, central, "DC1");
    let q = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select bid.user_id, COUNT(*) from bid @[all] \
             group by bid.user_id window 5 s duration 10 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(30));
    assert_eq!(q.state(&sim), Some(QueryState::Done));
    let node = sim
        .node_as::<CentralNode<ScrubMsg>>(central)
        .expect("central node");
    scrub::obs::render_text(&node.metrics(sim.now().as_ms()))
}

#[test]
fn render_text_is_byte_identical_across_seeded_runs() {
    let a = mask_ns_lines(&run_once());
    let b = mask_ns_lines(&run_once());
    assert_eq!(a, b, "telemetry surface must be reproducible byte-for-byte");
    // the surface carries the expected shape, not just emptiness
    assert!(a.starts_with("# scrub metrics snapshot at sim t="));
    assert!(a.contains("# TYPE scrub_central_batches_received counter"));
    assert!(a.contains("# TYPE scrub_central_ingest_latency_ms histogram"));
    assert!(a.contains("_bucket{le=\"+Inf\"}"));
    let events_line = a
        .lines()
        .find(|l| l.starts_with("scrub_central_events_ingested "))
        .expect("events_ingested sample present");
    let n: u64 = events_line
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("integer sample");
    assert!(n > 0, "the seeded run must actually ingest events");
}

/// Seeded OneHost run with small rollup factors so every tier seals
/// buckets within a minute of sim time; returns the full
/// multi-resolution `render_range` surface (every partition-invariant
/// metric at raw, mid and coarse) plus the exemplar-annotated
/// Prometheus exposition, ns lines masked.
fn run_tsdb_once() -> String {
    let mut config = ScrubConfig::default();
    config.trace_sample_rate = 0.1;
    config.tsdb_mid_factor = 4;
    config.tsdb_coarse_factor = 8;
    let reg = SchemaRegistry::new();
    reg.register(EventSchema::new("bid", vec![FieldDef::new("user_id", FieldType::Long)]).unwrap())
        .unwrap();
    let reg = Arc::new(reg);
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 1771);
    let central = deploy_central(&mut sim, &reg, config.clone(), "DC1");
    sim.add_node(
        NodeMeta::new("gold-0", "GoldServers", "DC1"),
        Box::new(OneHost {
            harness: AgentHarness::new("gold-0", config.clone(), central),
            emitted: 0,
        }),
    );
    let d = deploy_server(&mut sim, reg, config, central, "DC1");
    let q = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select bid.user_id, COUNT(*) from bid @[all] \
             group by bid.user_id window 5 s duration 10 s",
        )
        .expect("query accepted");
    // Snapshot the exposition while the traced query's bucket is still
    // the newest mid-tier rollup (the exemplar comments cite the newest
    // point), then keep running so the coarse tier seals too.
    sim.run_until(SimTime::from_secs(20));
    let exposition = {
        let node = sim
            .node_as::<CentralNode<ScrubMsg>>(central)
            .expect("central node");
        mask_ns_lines(&scrub::obs::render_text_with_exemplars(
            &node.metrics(sim.now().as_ms()),
            node.telemetry(),
        ))
    };
    sim.run_until(SimTime::from_secs(60));
    assert_eq!(q.state(&sim), Some(QueryState::Done));
    let node = sim
        .node_as::<CentralNode<ScrubMsg>>(central)
        .expect("central node");
    let store = node.telemetry();
    let mut out = String::new();
    for m in store.metric_names() {
        if !scrub::obs::partition_invariant(&m) {
            continue;
        }
        for res in [
            scrub::obs::Resolution::Raw,
            scrub::obs::Resolution::Mid,
            scrub::obs::Resolution::Coarse,
        ] {
            out.push_str(&store.render_range(&m, res, None));
        }
    }
    out.push_str(&exposition);
    out
}

/// The telemetry store's whole read surface is a golden artifact: two
/// seeded runs must produce byte-identical `range` renders at every
/// resolution — tier contents, rollup statistics *and exemplar trace
/// rids* — and a byte-identical exemplar-annotated exposition.
#[test]
fn range_renders_are_byte_identical_across_seeded_runs() {
    let a = run_tsdb_once();
    let b = run_tsdb_once();
    assert_eq!(a, b, "range renders must be reproducible byte-for-byte");
    // the surface is non-trivial: both rolled tiers sealed buckets and
    // at least one rollup carries an exemplar link
    assert!(a.contains("res=mid bucket=4x"), "no mid renders:\n{a}");
    assert!(
        a.contains("res=coarse bucket=8x"),
        "no coarse renders:\n{a}"
    );
    assert!(
        a.contains("rid="),
        "no exemplar resolved in a traced run:\n{a}"
    );
    assert!(
        a.contains("# exemplars: newest mid-tier rollup, max-delta interval"),
        "exposition missing exemplar comments:\n{a}"
    );
}

/// One seeded run with a mid-query host crash, returning the health
/// plane's two renders: the central alert log and the query's merged
/// flight-recorder timeline. Both are driven entirely by sim time (alert
/// evaluation happens at snapshot ticks, journal entries carry sim
/// timestamps), so no ns masking is needed — the bytes must match.
fn run_watchdog_once() -> (String, String) {
    let mut config = ScrubConfig::default();
    config.trace_sample_rate = 0.1;
    let reg = SchemaRegistry::new();
    reg.register(EventSchema::new("bid", vec![FieldDef::new("user_id", FieldType::Long)]).unwrap())
        .unwrap();
    let reg = Arc::new(reg);
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 1771);
    let central = deploy_central(&mut sim, &reg, config.clone(), "DC1");
    for i in 0..2 {
        let name = format!("gold-{i}");
        sim.add_node(
            NodeMeta::new(name.clone(), "GoldServers", "DC1"),
            Box::new(OneHost {
                harness: AgentHarness::new(&name, config.clone(), central),
                emitted: 0,
            }),
        );
    }
    let d = deploy_server(&mut sim, reg, config, central, "DC1");
    let q = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select bid.user_id, COUNT(*) from bid @[all] \
             group by bid.user_id window 5 s duration 20 s",
        )
        .expect("query accepted");
    // Kill one of the two tapped hosts mid-query: past the host grace the
    // suspected-hosts gauge rises, `host_dead` fires, and the flight
    // recorder journals the death and the degraded window closes.
    sim.run_until(SimTime::from_secs(6));
    assert!(sim.inject_crash("gold-1", sim.now(), None));
    sim.run_until(SimTime::from_secs(40));
    assert_eq!(q.state(&sim), Some(QueryState::Done));
    let node = sim
        .node_as::<CentralNode<ScrubMsg>>(central)
        .expect("central node");
    let alert_log = node.alert_engine().log().render();
    let (events, dropped) = q.timeline(&sim).expect("flight recorder journaled");
    let timeline = render_timeline(q.id().0, &events, dropped);
    (alert_log, timeline)
}

#[test]
fn alert_log_and_timeline_are_byte_identical_across_seeded_runs() {
    let (alerts_a, timeline_a) = run_watchdog_once();
    let (alerts_b, timeline_b) = run_watchdog_once();
    assert_eq!(alerts_a, alerts_b, "alert log must render byte-identically");
    assert_eq!(
        timeline_a, timeline_b,
        "flight recorder must render byte-identically"
    );
    // The crashed host was detected, with provenance pointing at it.
    assert!(
        alerts_a.contains("FIRED") && alerts_a.contains("host_dead"),
        "host_dead never fired:\n{alerts_a}"
    );
    assert!(
        alerts_a.contains("host=gold-1"),
        "alert provenance missing the dead host:\n{alerts_a}"
    );
    // The journal covers the whole lifecycle: control plane (admission,
    // plan, dispatch), data plane (window closes, the host death) and the
    // health plane echo (alert firings), ordered by sim time.
    for kind in [
        "admitted",
        "plan",
        "dispatched",
        "window_close",
        "host_dead",
        "alert_fired",
    ] {
        assert!(
            timeline_a.contains(kind),
            "timeline missing {kind:?}:\n{timeline_a}"
        );
    }
}

/// The paper's five §2 use cases, instantiated for the default seeded
/// bidding workload with short spans (line items picked from the ones
/// this workload actually serves).
fn use_case_queries() -> Vec<&'static str> {
    vec![
        // spam users
        "Select bid.user_id, COUNT(*) from bid @[Service in BidServers] \
         group by bid.user_id window 10 s duration 30 s",
        // new exchange, host+event sampled
        "select impression.exchange_id, COUNT(*) from impression \
         @[Service in PresentationServers] sample hosts 50% events 10% \
         group by impression.exchange_id window 10 s duration 30 s",
        // A/B line-item investigation
        "Select 1000*AVG(impression.cost) from impression \
         where impression.line_item_id = 1011 \
         @[Service in PresentationServers] window 10 s duration 30 s",
        // exclusion-reason histogram over a bid+exclusion join
        "Select exclusion.reason, COUNT(*) from bid, exclusion \
         where exclusion.line_item_id = 1001 and bid.exchange_id = 0 \
         @[Service in BidServers or Service in AdServers] \
         group by exclusion.reason window 10 s duration 30 s",
        // cannibalization join over auction+impression
        "Select impression.line_item_id, COUNT(*), AVG(auction.winner_price) \
         from auction, impression \
         where contains(auction.line_item_ids, 1000) \
         @[Service in AdServers or Service in PresentationServers] \
         group by impression.line_item_id window 10 s duration 30 s",
    ]
}

/// One seeded platform run of all five use-case queries; returns each
/// query's (static `explain`, ns-masked `explain analyze`) rendering.
fn run_explains() -> Vec<(String, String)> {
    run_explains_with(|_| {})
}

fn run_explains_with(tweak: impl Fn(&mut PlatformConfig)) -> Vec<(String, String)> {
    let mut cfg = PlatformConfig::default();
    tweak(&mut cfg);
    let mut p = adplatform::build_platform(cfg);
    let handles: Vec<QueryHandle> = use_case_queries()
        .into_iter()
        .map(|src| {
            ScrubClient::new(&p.scrub)
                .submit(&mut p.sim, src)
                .expect("query accepted")
        })
        .collect();
    let deadline = p.sim.now() + SimDuration::from_secs(180);
    while p.sim.now() < deadline
        && handles
            .iter()
            .any(|h| h.state(&p.sim) != Some(QueryState::Done))
    {
        let step_to = p.sim.now() + SimDuration::from_secs(5);
        p.sim.run_until(step_to);
    }
    handles
        .iter()
        .map(|h| {
            let rec = h.record(&p.sim).expect("record exists");
            assert_eq!(rec.state, QueryState::Done, "query never finished");
            let explain = rec.compiled.explain();
            let analyze = h
                .plan_profile(&p.sim)
                .expect("plan profile retained after stop")
                .render(true);
            (explain, analyze)
        })
        .collect()
}

#[test]
fn explain_and_explain_analyze_are_byte_stable() {
    let a = run_explains();
    let b = run_explains();
    assert_eq!(a.len(), 5);
    for (i, ((ex_a, an_a), (ex_b, an_b))) in a.iter().zip(&b).enumerate() {
        assert_eq!(ex_a, ex_b, "use case {i}: static explain not byte-stable");
        assert_eq!(
            an_a, an_b,
            "use case {i}: explain analyze (ns masked) not byte-stable"
        );
        // shape: both stages render, the ns column is masked, and the
        // host stage carries the placement invariant in its header
        assert!(
            an_a.contains("host stage (selection + projection + sampling ONLY):"),
            "use case {i}: host stage missing"
        );
        assert!(
            an_a.contains("central stage (ScrubCentral):"),
            "use case {i}: central stage missing"
        );
        assert!(an_a.contains("ns -"), "use case {i}: ns column not masked");
    }
    // the workload must actually flow through at least the spam query's
    // host trio, or the goldens prove nothing
    let spam = &a[0].1;
    let sel_line = spam
        .lines()
        .find(|l| l.contains("selection(bid)"))
        .expect("selection operator rendered");
    assert!(
        !sel_line.contains("rows         0"),
        "spam use case saw no bids: {sel_line}"
    );
}

/// Strip the trailing `  bytes N` column: wire bytes legitimately differ
/// between the row and columnar encodings of the same event stream.
fn mask_bytes_column(rendered: &str) -> String {
    rendered
        .lines()
        .map(|l| l.split("  bytes ").next().unwrap_or(l))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The `explain analyze` goldens must be wire-format invariant: running
/// the same seeded platform with row (v1) instead of columnar (v2,
/// default) encoding changes only the byte column (columnar frames are
/// smaller) and wall-clock ns (masked by `render(true)`). Every row
/// counter, selectivity estimate and note stays byte-identical — the
/// vectorized columnar operators must not change what the platform
/// observes, only how fast and how small. Scrub's host-overhead
/// feedback is disabled for both runs: with it on, smaller frames mean
/// less per-byte agent CPU, which (correctly) changes how the modeled
/// application itself behaves and thus the traffic being observed.
#[test]
fn explain_analyze_is_wire_format_invariant_modulo_bytes() {
    let col = run_explains_with(|c| c.scrub_overhead_enabled = false);
    let row = run_explains_with(|c| {
        c.scrub_overhead_enabled = false;
        c.scrub.wire_format = scrub_core::config::WireFormat::Row;
    });
    assert_eq!(col.len(), row.len());
    for (i, ((ex_c, an_c), (ex_r, an_r))) in col.iter().zip(&row).enumerate() {
        assert_eq!(
            ex_c, ex_r,
            "use case {i}: static explain differs across wire formats"
        );
        assert_eq!(
            mask_bytes_column(an_c),
            mask_bytes_column(an_r),
            "use case {i}: analyze counters differ across wire formats"
        );
    }
}
