//! Golden-output check of the Prometheus-style telemetry surface: two
//! runs of the same seeded scenario must render byte-identical
//! `render_text` output (metric names sorted, buckets in bound order,
//! integer values), so the exported artifact is diffable across CI runs
//! and a changed byte means behavior actually changed.

#![allow(clippy::field_reassign_with_default)]

use std::sync::Arc;

use scrub::prelude::*;
use scrub::server::CentralNode;
use scrub_core::event::RequestId;
use scrub_core::schema::EventTypeId;
use scrub_simnet::{Context, Node};

/// A host emitting one `bid` event per millisecond.
struct OneHost {
    harness: AgentHarness,
    emitted: u64,
}

impl Node<ScrubMsg> for OneHost {
    fn on_start(&mut self, ctx: &mut Context<'_, ScrubMsg>) {
        self.harness.start(ctx);
        ctx.set_timer(SimDuration::from_ms(1), 1);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, ScrubMsg>, from: NodeId, msg: ScrubMsg) {
        let _ = self.harness.on_message(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, ScrubMsg>, timer: u64) {
        if self.harness.on_timer(ctx, timer) {
            return;
        }
        self.emitted += 1;
        self.harness.agent().log(
            EventTypeId(0),
            RequestId(self.emitted),
            ctx.now.as_ms(),
            &[Value::Long((self.emitted % 7) as i64)],
        );
        ctx.set_timer(SimDuration::from_ms(1), 1);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn run_once() -> String {
    let mut config = ScrubConfig::default();
    config.trace_sample_rate = 0.1;
    let reg = SchemaRegistry::new();
    reg.register(EventSchema::new("bid", vec![FieldDef::new("user_id", FieldType::Long)]).unwrap())
        .unwrap();
    let reg = Arc::new(reg);
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 1771);
    let central = deploy_central(&mut sim, &reg, config.clone(), "DC1");
    sim.add_node(
        NodeMeta::new("gold-0", "GoldServers", "DC1"),
        Box::new(OneHost {
            harness: AgentHarness::new("gold-0", config.clone(), central),
            emitted: 0,
        }),
    );
    let d = deploy_server(&mut sim, reg, config, central, "DC1");
    let q = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select bid.user_id, COUNT(*) from bid @[all] \
             group by bid.user_id window 5 s duration 10 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(30));
    assert_eq!(q.state(&sim), Some(QueryState::Done));
    let node = sim
        .node_as::<CentralNode<ScrubMsg>>(central)
        .expect("central node");
    scrub::obs::render_text(&node.metrics(sim.now().as_ms()))
}

#[test]
fn render_text_is_byte_identical_across_seeded_runs() {
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "telemetry surface must be reproducible byte-for-byte");
    // the surface carries the expected shape, not just emptiness
    assert!(a.starts_with("# scrub metrics snapshot at sim t="));
    assert!(a.contains("# TYPE scrub_central_batches_received counter"));
    assert!(a.contains("# TYPE scrub_central_ingest_latency_ms histogram"));
    assert!(a.contains("_bucket{le=\"+Inf\"}"));
    let events_line = a
        .lines()
        .find(|l| l.starts_with("scrub_central_events_ingested "))
        .expect("events_ingested sample present");
    let n: u64 = events_line
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("integer sample");
    assert!(n > 0, "the seeded run must actually ingest events");
}
