//! Randomized end-to-end differential testing: random queries over random
//! event streams executed by the FULL live stack (agents, simulated WAN,
//! ScrubCentral, query server) must agree with the offline batch oracle.
//! This is the strongest correctness net in the repository — it covers
//! batching, flush timing, reordering, window closing and the control
//! plane, not just the operators.

use std::sync::Arc;

use proptest::prelude::*;

use scrub::prelude::*;
use scrub_baseline::run_batch;
use scrub_core::event::{Event, RequestId};
use scrub_core::plan::{compile, QueryId};
use scrub_core::schema::EventTypeId;
use scrub_simnet::{Context, Node};

struct ReplayHost {
    harness: AgentHarness,
    events: Vec<Event>,
    next: usize,
}

impl Node<ScrubMsg> for ReplayHost {
    fn on_start(&mut self, ctx: &mut Context<'_, ScrubMsg>) {
        self.harness.start(ctx);
        ctx.set_timer(SimDuration::from_ms(1), 1);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, ScrubMsg>, from: NodeId, msg: ScrubMsg) {
        let _ = self.harness.on_message(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, ScrubMsg>, timer: u64) {
        if self.harness.on_timer(ctx, timer) {
            return;
        }
        let now = ctx.now.as_ms();
        while self.next < self.events.len() && self.events[self.next].timestamp <= now {
            let ev = &self.events[self.next];
            self.harness
                .agent()
                .log(ev.type_id, ev.request_id, ev.timestamp, &ev.values);
            self.next += 1;
        }
        if self.next < self.events.len() {
            ctx.set_timer(SimDuration::from_ms(1), 1);
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn registry() -> Arc<SchemaRegistry> {
    let reg = SchemaRegistry::new();
    reg.register(
        EventSchema::new(
            "e",
            vec![
                FieldDef::new("g", FieldType::Long),
                FieldDef::new("v", FieldType::Long),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    Arc::new(reg)
}

/// Canonical row set with float rounding (live vs oracle summation order).
fn canon(rows: &[scrub::central::ResultRow]) -> Vec<(i64, Vec<scrub_core::value::GroupKey>)> {
    let mut v: Vec<(i64, Vec<scrub_core::value::GroupKey>)> = rows
        .iter()
        .map(|r| {
            (
                r.window_start_ms,
                r.values
                    .iter()
                    .map(|x| match x {
                        Value::Double(d) => {
                            // near-zero sums differ absolutely (not
                            // relatively) across summation orders; snap
                            // them to exactly zero before relative rounding
                            if d.abs() < 1e-9 {
                                Value::Double(0.0).group_key()
                            } else {
                                let scale = 10f64.powi(9 - d.abs().log10().ceil() as i32);
                                Value::Double((d * scale).round() / scale).group_key()
                            }
                        }
                        other => other.group_key(),
                    })
                    .collect(),
            )
        })
        .collect();
    v.sort();
    v
}

fn arb_query() -> impl Strategy<Value = String> {
    (
        prop::sample::select(vec![
            "COUNT(*)", "SUM(e.v)", "AVG(e.v)", "MIN(e.v)", "MAX(e.v)",
        ]),
        any::<bool>(),                               // group by g?
        prop::option::of((-3i64..8, any::<bool>())), // predicate const, direction
        prop::sample::select(vec![(10i64, 10i64), (10, 5), (15, 15), (20, 4)]), // window/slide s
    )
        .prop_map(|(agg, grouped, pred, (win, slide))| {
            let mut q = String::from("select ");
            if grouped {
                q.push_str("e.g, ");
            }
            q.push_str(agg);
            q.push_str(" from e");
            if let Some((c, up)) = pred {
                q.push_str(&format!(" where e.v {} {c}", if up { ">" } else { "<=" }));
            }
            q.push_str(" @[all]");
            if grouped {
                q.push_str(" group by e.g");
            }
            q.push_str(&format!(" window {win} s"));
            if slide != win {
                q.push_str(&format!(" slide {slide} s"));
            }
            q.push_str(" duration 60 s");
            q
        })
}

fn arb_host_events() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    // (ts_ms in [500, 55s], group, value)
    prop::collection::vec((500i64..55_000, 0i64..6, -5i64..10), 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn live_stack_matches_batch_oracle(
        src in arb_query(),
        raw_a in arb_host_events(),
        raw_b in arb_host_events(),
    ) {
        let config = ScrubConfig::default();
        let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 1234);
        let reg = registry();
        let central = deploy_central(&mut sim, &reg, config.clone(), "DC1");
        let mut all_events = Vec::new();
        for (h, raw) in [(0usize, &raw_a), (1, &raw_b)] {
            let mut events: Vec<Event> = raw
                .iter()
                .enumerate()
                .map(|(i, (ts, g, v))| {
                    Event::new(
                        EventTypeId(0),
                        RequestId((h as u64) << 32 | i as u64),
                        *ts,
                        vec![Value::Long(*g), Value::Long(*v)],
                    )
                })
                .collect();
            events.sort_by_key(|e| e.timestamp);
            all_events.extend(events.clone());
            let name = format!("replay-{h}");
            let dc = if h == 0 { "DC1" } else { "DC2" };
            sim.add_node(
                NodeMeta::new(name.clone(), "Hosts", dc),
                Box::new(ReplayHost {
                    harness: AgentHarness::new(name, config.clone(), central),
                    events,
                    next: 0,
                }),
            );
        }
        let d = deploy_server(&mut sim, reg, config.clone(), central, "DC1");
        let qid = ScrubClient::new(&d)
        .submit(&mut sim, &src)
        .expect("query accepted");
        sim.run_until(SimTime::from_secs(180));
        let rec = qid.record(&sim).expect("query accepted");
        prop_assert_eq!(rec.state, QueryState::Done);

        let spec = parse_query(&src).unwrap();
        let cq = compile(&spec, &registry(), &config, QueryId(1)).unwrap();
        let (oracle_rows, oracle_summary) = run_batch(&cq, &all_events);

        prop_assert_eq!(
            canon(&rec.rows),
            canon(&oracle_rows),
            "live != oracle for {}",
            src
        );
        prop_assert_eq!(
            rec.summary.as_ref().unwrap().total_matched,
            oracle_summary.total_matched
        );
    }
}
