//! Quick in-test versions of the §8 case studies: each scenario's planted
//! anomaly must be detectable by its troubleshooting query. (The full-size
//! reproductions live in `scrub-bench`'s E01–E06; these shorter runs keep
//! the anomaly-detection guarantees under `cargo test`.)

use scrub::prelude::*;
use scrub::scenario;
use scrub_server::ScrubClient;

#[test]
fn spam_bots_detectable() {
    let cfg = scenario::spam();
    let bots = scenario::spam_bot_user_ids(&cfg);
    let mut p = adplatform::build_platform(cfg);
    let host = p.sim.metas()[p.bidservers[0].0 as usize].name.clone();
    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "Select bid.user_id, COUNT(*) from bid \
             @[Server = '{host}'] group by bid.user_id window 10 s duration 2 m"
            ),
        )
        .expect("query accepted");
    p.sim.run_until(SimTime::from_secs(150));
    let rec = qid.record(&p.sim).unwrap();
    assert_eq!(rec.state, QueryState::Done);
    let mut max_human = 0i64;
    let mut max_bot = 0i64;
    for row in &rec.rows {
        let user = row.values[0].as_i64().unwrap() as u64;
        let count = row.values[1].as_i64().unwrap();
        if bots.contains(&user) {
            max_bot = max_bot.max(count);
        } else {
            max_human = max_human.max(count);
        }
    }
    assert!(
        max_bot > 5 * max_human.max(1),
        "bots not separable: bot {max_bot} vs human {max_human}"
    );
}

#[test]
fn new_exchange_activation_visible() {
    let mut cfg = scenario::new_exchange();
    for ex in cfg.exchanges.iter_mut() {
        if ex.name == "D" {
            ex.live_from_ms = 60_000; // compress for the test
        }
    }
    let mut p = adplatform::build_platform(cfg);
    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            "select impression.exchange_id, COUNT(*) from impression \
         @[Service in PresentationServers] sample events 10% \
         group by impression.exchange_id window 10 s duration 2 m",
        )
        .expect("query accepted");
    p.sim.run_until(SimTime::from_secs(160));
    let rec = qid.record(&p.sim).unwrap();
    let d_before: f64 = rec
        .rows
        .iter()
        .filter(|r| r.window_start_ms < 60_000 && r.values[0].as_i64() == Some(3))
        .filter_map(|r| r.values[1].as_f64())
        .sum();
    let d_after: f64 = rec
        .rows
        .iter()
        .filter(|r| r.window_start_ms >= 80_000 && r.values[0].as_i64() == Some(3))
        .filter_map(|r| r.values[1].as_f64())
        .sum();
    assert_eq!(d_before, 0.0, "exchange D served before activation");
    assert!(d_after > 0.0, "exchange D never served after activation");
}

#[test]
fn cannibalized_line_item_never_wins() {
    let mut p = adplatform::build_platform(scenario::cannibalization());
    let lambda = scenario::LAMBDA_LINE_ITEM as i64;
    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "Select impression.line_item_id, COUNT(*) from auction, impression \
             where contains(auction.line_item_ids, {lambda}) \
             @[Service in AdServers or Service in PresentationServers] \
             group by impression.line_item_id window 30 s duration 2 m"
            ),
        )
        .expect("query accepted");
    p.sim.run_until(SimTime::from_secs(160));
    let rec = qid.record(&p.sim).unwrap();
    assert!(!rec.rows.is_empty(), "no auction-impression joins observed");
    let lambda_wins: i64 = rec
        .rows
        .iter()
        .filter(|r| r.values[0].as_i64() == Some(lambda))
        .filter_map(|r| r.values[1].as_i64())
        .sum();
    assert_eq!(lambda_wins, 0, "λ won despite a dominated price band");
}

#[test]
fn corrupted_frequency_counts_detectable() {
    let mut p = adplatform::build_platform(scenario::freq_cap());
    let li = scenario::CAPPED_LINE_ITEM;
    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "Select impression.user_id, COUNT(*) from impression \
             where impression.line_item_id = {li} \
             @[Service in PresentationServers] \
             group by impression.user_id window 1 d duration 3 m"
            ),
        )
        .expect("query accepted");
    p.sim.run_until(SimTime::from_secs(240));
    let rec = qid.record(&p.sim).unwrap();
    assert_eq!(rec.state, QueryState::Done);
    let gross: Vec<u64> = rec
        .rows
        .iter()
        .filter(|r| r.values[1].as_i64().unwrap_or(0) > 5)
        .map(|r| r.values[0].as_i64().unwrap() as u64)
        .collect();
    assert!(!gross.is_empty(), "no gross violators surfaced");
    assert!(
        gross.iter().all(|u| u % scenario::CORRUPT_USER_MOD == 0),
        "violators not confined to the corrupt users: {gross:?}"
    );
}

#[test]
fn rollout_regression_detectable() {
    let mut p = adplatform::build_platform(scenario::rollout_regression());
    let quote = |hosts: &[String]| {
        hosts
            .iter()
            .map(|h| format!("'{h}'"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let old_hosts = quote(&p.adserver_hosts_for_rollout(false));
    let new_hosts = quote(&p.adserver_hosts_for_rollout(true));
    let mut q = |hosts: &str| {
        ScrubClient::new(&p.scrub)
            .submit(
                &mut p.sim,
                &format!(
                    "select AVG(auction.winner_price) from auction \
                 @[Servers in ({hosts})] window 30 s duration 4 m"
                ),
            )
            .expect("query accepted")
    };
    let q_old = q(&old_hosts);
    let q_new = q(&new_hosts);
    p.sim.run_until(SimTime::from_secs(5 * 60));

    let avg_after = |qid: QueryHandle| -> f64 {
        let rec = qid.record(&p.sim).unwrap();
        let vals: Vec<f64> = rec
            .rows
            .iter()
            .filter(|r| r.window_start_ms >= scenario::ROLLOUT_AT_MS + 30_000)
            .filter_map(|r| r.values[0].as_f64())
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let old_avg = avg_after(q_old);
    let new_avg = avg_after(q_new);
    assert!(
        new_avg > 3.0 * old_avg,
        "regression invisible: old {old_avg:.3} vs new {new_avg:.3}"
    );
}
