//! Differential property testing: random queries over random events,
//! executed by the Scrub batch engine (host plans + central executor) and
//! by an *independent naive interpreter* written directly against the
//! query semantics. Any divergence is a bug in one of them.

#![allow(clippy::field_reassign_with_default)]

use std::collections::BTreeMap;

use proptest::prelude::*;

use scrub::prelude::*;
use scrub_baseline::run_batch;
use scrub_core::event::{Event, RequestId};
use scrub_core::plan::{compile, QueryId};
use scrub_core::schema::EventTypeId;

const WINDOW_MS: i64 = 10_000;

/// A restricted random query: optional predicate, optional grouping, one
/// aggregate.
#[derive(Debug, Clone)]
struct RandomQuery {
    predicate: Option<(usize, char, i64)>, // (field idx, op, const)
    group_field: Option<usize>,
    agg: char, // 'c'ount, 's'um, 'a'vg, 'm'in, 'M'ax
    slide: Option<i64>,
}

const FIELDS: [&str; 3] = ["f0", "f1", "f2"];

impl RandomQuery {
    fn to_sql(&self) -> String {
        let mut select = Vec::new();
        if let Some(g) = self.group_field {
            select.push(format!("e.{}", FIELDS[g]));
        }
        select.push(match self.agg {
            'c' => "COUNT(*)".to_string(),
            's' => "SUM(e.f2)".to_string(),
            'a' => "AVG(e.f2)".to_string(),
            'm' => "MIN(e.f2)".to_string(),
            _ => "MAX(e.f2)".to_string(),
        });
        let mut q = format!("select {} from e", select.join(", "));
        if let Some((f, op, c)) = &self.predicate {
            let op = match op {
                '<' => "<",
                '>' => ">",
                '=' => "=",
                _ => "!=",
            };
            q.push_str(&format!(" where e.{} {op} {c}", FIELDS[*f]));
        }
        if let Some(g) = self.group_field {
            q.push_str(&format!(" group by e.{}", FIELDS[g]));
        }
        q.push_str(" window 10 s");
        if let Some(s) = self.slide {
            q.push_str(&format!(" slide {s} s"));
        }
        q
    }
}

fn registry() -> SchemaRegistry {
    let reg = SchemaRegistry::new();
    reg.register(
        EventSchema::new(
            "e",
            vec![
                FieldDef::new("f0", FieldType::Long),
                FieldDef::new("f1", FieldType::Long),
                FieldDef::new("f2", FieldType::Long),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    reg
}

/// Aggregate tuple per (window, group): (count, sum, min, max).
type NaiveAgg = (i64, i64, Option<i64>, Option<i64>);

/// The independent interpreter: straight-line semantics, no shared code
/// with the engine beyond the Value type.
fn naive(q: &RandomQuery, events: &[(i64, [i64; 3])]) -> BTreeMap<(i64, Option<i64>), NaiveAgg> {
    // key: (window, group) -> (count, sum, min, max)
    let mut out: BTreeMap<(i64, Option<i64>), NaiveAgg> = BTreeMap::new();
    let window = WINDOW_MS;
    let slide = q.slide.map(|s| s * 1000).unwrap_or(window);
    for (ts, fields) in events {
        if let Some((f, op, c)) = &q.predicate {
            let v = fields[*f];
            let keep = match op {
                '<' => v < *c,
                '>' => v > *c,
                '=' => v == *c,
                _ => v != *c,
            };
            if !keep {
                continue;
            }
        }
        let group = q.group_field.map(|g| fields[g]);
        // windows covering ts
        let k_min = (ts - window).div_euclid(slide) + 1;
        let k_max = ts.div_euclid(slide);
        for k in k_min..=k_max {
            let w = k * slide;
            let entry = out.entry((w, group)).or_insert((0, 0, None, None));
            entry.0 += 1;
            entry.1 += fields[2];
            entry.2 = Some(entry.2.map_or(fields[2], |m: i64| m.min(fields[2])));
            entry.3 = Some(entry.3.map_or(fields[2], |m: i64| m.max(fields[2])));
        }
    }
    out
}

fn arb_query() -> impl Strategy<Value = RandomQuery> {
    (
        prop::option::of((
            0usize..3,
            prop::sample::select(vec!['<', '>', '=', '!']),
            -5i64..15,
        )),
        prop::option::of(0usize..2),
        prop::sample::select(vec!['c', 's', 'a', 'm', 'M']),
        prop::option::of(2i64..=5),
    )
        .prop_map(|(predicate, group_field, agg, slide)| RandomQuery {
            predicate,
            group_field,
            agg,
            slide,
        })
}

fn arb_events() -> impl Strategy<Value = Vec<(i64, [i64; 3])>> {
    prop::collection::vec((0i64..40_000, [-5i64..15, -5i64..15, -5i64..15]), 0..150)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn engine_matches_naive_interpreter(q in arb_query(), raw in arb_events()) {
        let reg = registry();
        let spec = parse_query(&q.to_sql()).unwrap();
        let cq = compile(&spec, &reg, &ScrubConfig::default(), QueryId(1)).unwrap();

        let events: Vec<Event> = raw
            .iter()
            .enumerate()
            .map(|(i, (ts, f))| {
                Event::new(
                    EventTypeId(0),
                    RequestId(i as u64),
                    *ts,
                    vec![Value::Long(f[0]), Value::Long(f[1]), Value::Long(f[2])],
                )
            })
            .collect();

        let (rows, _) = run_batch(&cq, &events);
        let expected = naive(&q, &raw);

        // index engine rows by (window, group)
        let mut got: BTreeMap<(i64, Option<i64>), Value> = BTreeMap::new();
        for r in &rows {
            let (group, agg_val) = if q.group_field.is_some() {
                (r.values[0].as_i64(), r.values[1].clone())
            } else {
                (None, r.values[0].clone())
            };
            let prior = got.insert((r.window_start_ms, group), agg_val);
            prop_assert!(prior.is_none(), "duplicate (window, group) row");
        }

        prop_assert_eq!(got.len(), expected.len(), "row-set size mismatch: {:?} vs {:?}", got, expected);
        for ((w, g), (count, sum, min, max)) in &expected {
            let val = got.get(&(*w, *g)).expect("row present by size check");
            match q.agg {
                'c' => prop_assert_eq!(val.as_i64().unwrap(), *count),
                's' => {
                    // SUM over longs comes back as Double after scaling paths
                    let s = val.as_f64().unwrap();
                    prop_assert!((s - *sum as f64).abs() < 1e-6);
                }
                'a' => {
                    let a = val.as_f64().unwrap();
                    let want = *sum as f64 / *count as f64;
                    prop_assert!((a - want).abs() < 1e-9, "avg {a} vs {want}");
                }
                'm' => prop_assert_eq!(val.as_i64().unwrap(), min.unwrap()),
                _ => prop_assert_eq!(val.as_i64().unwrap(), max.unwrap()),
            }
        }
    }
}
