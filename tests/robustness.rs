//! Failure-injection and robustness tests: load shedding under bursts,
//! accuracy trade-offs being visible in summaries, WAN reordering, join
//! explosion capping, and query lifecycle edge cases.

#![allow(clippy::field_reassign_with_default)]

use std::sync::Arc;

use scrub::prelude::*;
use scrub_core::event::RequestId;
use scrub_core::schema::EventTypeId;
use scrub_simnet::{Context, Node};

/// A host that emits `burst` events every millisecond — far above any
/// reasonable budget — to force shedding.
struct BurstHost {
    harness: AgentHarness,
    burst: u64,
    emitted: u64,
}

impl Node<ScrubMsg> for BurstHost {
    fn on_start(&mut self, ctx: &mut Context<'_, ScrubMsg>) {
        self.harness.start(ctx);
        ctx.set_timer(SimDuration::from_ms(1), 1);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, ScrubMsg>, from: NodeId, msg: ScrubMsg) {
        let _ = self.harness.on_message(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, ScrubMsg>, timer: u64) {
        if self.harness.on_timer(ctx, timer) {
            return;
        }
        for _ in 0..self.burst {
            self.emitted += 1;
            self.harness.agent().log(
                EventTypeId(0),
                RequestId(self.emitted),
                ctx.now.as_ms(),
                &[Value::Long((self.emitted % 10) as i64)],
            );
        }
        ctx.set_timer(SimDuration::from_ms(1), 1);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn registry() -> Arc<SchemaRegistry> {
    let reg = SchemaRegistry::new();
    reg.register(EventSchema::new("burst", vec![FieldDef::new("k", FieldType::Long)]).unwrap())
        .unwrap();
    Arc::new(reg)
}

fn burst_cluster(burst: u64, budget: u64) -> (Sim<ScrubMsg>, scrub_server::ScrubDeployment) {
    let mut config = ScrubConfig::default();
    config.agent_events_per_sec_budget = budget;
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 5);
    let reg = registry();
    let central = deploy_central(&mut sim, &reg, config.clone(), "DC1");
    sim.add_node(
        NodeMeta::new("burst-0", "BurstServers", "DC1"),
        Box::new(BurstHost {
            harness: AgentHarness::new("burst-0", config.clone(), central),
            burst,
            emitted: 0,
        }),
    );
    let d = deploy_server(&mut sim, reg, config, central, "DC1");
    (sim, d)
}

/// Like [`burst_cluster`] but with `hosts` burst hosts (even indices in
/// DC1, odd in DC2) and the node ids returned for stats inspection.
fn fault_cluster(
    hosts: usize,
    config: ScrubConfig,
) -> (
    Sim<ScrubMsg>,
    scrub_server::ScrubDeployment,
    Vec<scrub_simnet::NodeId>,
) {
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 5);
    let reg = registry();
    let central = deploy_central(&mut sim, &reg, config.clone(), "DC1");
    let mut ids = Vec::new();
    for i in 0..hosts {
        let dc = if i % 2 == 0 { "DC1" } else { "DC2" };
        let name = format!("burst-{i}");
        ids.push(sim.add_node(
            NodeMeta::new(name.clone(), "BurstServers", dc),
            Box::new(BurstHost {
                harness: AgentHarness::new(&name, config.clone(), central),
                burst: 2,
                emitted: 0,
            }),
        ));
    }
    let d = deploy_server(&mut sim, reg, config, central, "DC1");
    (sim, d, ids)
}

#[test]
fn message_drop_is_recovered_by_retransmission() {
    // 15% loss in both directions between the agents and central (data
    // batches AND acks), switched on after the query installs: every lost
    // shipment must be retransmitted into its window and every dropped ack
    // must surface as a deduplicated duplicate, leaving the final rows in
    // exact agreement with the shipped-volume counters.
    let mut config = ScrubConfig::default();
    config.agent_retry_base_ms = 200;
    config.window_grace_ms = 5_000;
    config.host_grace_ms = 10_000;
    let (mut sim, d, ids) = fault_cluster(2, config);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from burst @[all] window 5 s duration 15 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_ms(1_500));
    let agents = NodeSel::Service("BurstServers".into());
    let central = NodeSel::Host("scrub-central".into());
    sim.set_link_drop(agents.clone(), central.clone(), 0.15);
    sim.set_link_drop(central, agents, 0.15);
    sim.run_until(SimTime::from_secs(40));

    assert!(sim.fault_stats().dropped_random > 0, "faults never fired");
    let rec = qid.record(&sim).unwrap();
    assert_eq!(rec.state, QueryState::Done);
    let s = rec.summary.as_ref().unwrap();
    let total: i64 = rec.rows.iter().map(|r| r.values[0].as_i64().unwrap()).sum();
    assert_eq!(total as u64, s.total_sampled, "lost batches not recovered");
    assert_eq!(s.total_matched, s.total_sampled);
    // the recovery machinery visibly did the work:
    let retransmits: u64 = ids
        .iter()
        .map(|id| {
            let h = sim.node_as::<BurstHost>(*id).unwrap();
            h.harness.agent().stats().snapshot().retransmits
        })
        .sum();
    assert!(retransmits > 0, "no retransmits under 15% loss");
    assert!(
        s.duplicate_batches > 0,
        "dropped acks must produce duplicates central absorbs"
    );
}

#[test]
fn partition_spanning_window_boundary_is_absorbed() {
    // A DC1/DC2 partition from 7 s to 12 s spans the [5 s, 10 s) window's
    // close: the DC2 host's batches for that window arrive only after the
    // heal, inside the widened grace, and nothing is lost or double-counted.
    let mut config = ScrubConfig::default();
    config.agent_retry_base_ms = 200;
    config.window_grace_ms = 8_000;
    config.host_grace_ms = 12_000;
    let (mut sim, d, _ids) = fault_cluster(2, config);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from burst @[all] window 5 s duration 20 s",
        )
        .expect("query accepted");
    sim.add_partition(
        NodeSel::Dc("DC1".into()),
        NodeSel::Dc("DC2".into()),
        SimTime::from_secs(7),
        SimTime::from_secs(12),
    );
    sim.run_until(SimTime::from_secs(45));

    assert!(sim.fault_stats().dropped_partition > 0, "partition inert");
    let rec = qid.record(&sim).unwrap();
    assert_eq!(rec.state, QueryState::Done);
    let s = rec.summary.as_ref().unwrap();
    let total: i64 = rec.rows.iter().map(|r| r.values[0].as_i64().unwrap()).sum();
    assert_eq!(
        total as u64, s.total_sampled,
        "partition lost data for good"
    );
    assert_eq!(s.total_matched, s.total_sampled);
    // every window closed (four full + the trailing partial), including
    // the one the partition spanned, and none needed a degraded marking
    // (the host came back in time)
    let starts: std::collections::BTreeSet<i64> =
        rec.rows.iter().map(|r| r.window_start_ms).collect();
    assert_eq!(starts.len(), 5, "windows stalled: {starts:?}");
    assert!(rec.rows.iter().all(|r| !r.degraded));
}

#[test]
fn host_crash_mid_query_degrades_gracefully() {
    // One of four hosts dies at 8 s and never returns. The query must run
    // to completion with windows closing on schedule, and the summary must
    // admit the blind spot: coverage < 100% and post-crash rows degraded.
    let (mut sim, d, _ids) = fault_cluster(4, ScrubConfig::default());
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from burst @[all] window 5 s duration 20 s",
        )
        .expect("query accepted");
    assert!(sim.inject_crash("burst-3", SimTime::from_secs(8), None));
    sim.run_until(SimTime::from_secs(45));

    let rec = qid.record(&sim).unwrap();
    assert_eq!(rec.state, QueryState::Done, "query stalled on dead host");
    let s = rec.summary.as_ref().unwrap();
    assert!(
        s.hosts_live < s.hosts_targeted,
        "dead host still counted live: {}/{}",
        s.hosts_live,
        s.hosts_targeted
    );
    assert!(s.coverage() < 1.0);
    assert!(s.degraded_rows > 0, "degradation invisible in summary");
    let starts: std::collections::BTreeSet<i64> =
        rec.rows.iter().map(|r| r.window_start_ms).collect();
    assert_eq!(starts.len(), 5, "windows stalled: {starts:?}");
    // every window closing after the failure detector fired is flagged
    assert!(rec
        .rows
        .iter()
        .filter(|r| r.window_start_ms >= 10_000)
        .all(|r| r.degraded));
}

#[test]
fn faulty_run_with_retries_converges_to_fault_free_results() {
    // Differential check: the same cluster and seed, once with a perfect
    // network and once with 15% bidirectional loss. Retransmission must
    // reconstruct the exact fault-free result rows — not approximately,
    // exactly.
    let run = |faulty: bool| {
        let mut config = ScrubConfig::default();
        config.agent_retry_base_ms = 200;
        config.window_grace_ms = 6_000;
        config.host_grace_ms = 12_000;
        let (mut sim, d, _ids) = fault_cluster(3, config);
        let qid = ScrubClient::new(&d)
            .submit(
                &mut sim,
                "select burst.k, COUNT(*) from burst @[all] \
             group by burst.k window 5 s duration 15 s",
            )
            .expect("query accepted");
        sim.run_until(SimTime::from_ms(1_500));
        if faulty {
            let agents = NodeSel::Service("BurstServers".into());
            let central = NodeSel::Host("scrub-central".into());
            sim.set_link_drop(agents.clone(), central.clone(), 0.15);
            sim.set_link_drop(central, agents, 0.15);
        }
        sim.run_until(SimTime::from_secs(40));
        if faulty {
            assert!(sim.fault_stats().dropped_random > 0, "faults never fired");
        }
        let rec = qid.record(&sim).unwrap();
        assert_eq!(rec.state, QueryState::Done);
        let mut rows: Vec<(i64, String)> = rec
            .rows
            .iter()
            .map(|r| (r.window_start_ms, format!("{:?}", r.values)))
            .collect();
        rows.sort();
        rows
    };
    let clean = run(false);
    let faulty = run(true);
    assert!(!clean.is_empty());
    assert_eq!(
        clean, faulty,
        "faulty run did not converge to fault-free rows"
    );
}

#[test]
fn shedding_bounds_shipped_volume_and_is_reported() {
    // 20k events/s against a 2k/s budget: ~90% must be shed, visibly.
    let (mut sim, d) = burst_cluster(20, 2_000);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from burst @[all] window 5 s duration 20 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(40));
    let rec = qid.record(&sim).unwrap();
    let s = rec.summary.as_ref().unwrap();
    assert!(s.total_shed > 0, "no shedding under 10x overload");
    assert!(
        s.total_sampled <= 2_000 * 21,
        "budget exceeded: shipped {}",
        s.total_sampled
    );
    // matched still counts the true population, so the scaled COUNT
    // compensates for shedding
    assert_eq!(s.total_matched, s.total_sampled + s.total_shed);
    let total: f64 = rec.rows.iter().map(|r| r.values[0].as_f64().unwrap()).sum();
    // Scaled counts compensate for shedding via the cumulative
    // matched/sampled ratio at window-close time; because shedding
    // consumes each second's budget in a burst at the second's start, the
    // ratio converges over the query's life and early windows carry some
    // bias — bounded here at ~10% under a brutal 10x overload (§2:
    // accuracy is deliberately traded for host impact).
    let rel = (total - s.total_matched as f64).abs() / s.total_matched as f64;
    assert!(
        rel < 0.12,
        "scaled count {total} vs matched {}",
        s.total_matched
    );
}

#[test]
fn no_shedding_under_budget() {
    let (mut sim, d) = burst_cluster(1, 50_000);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from burst @[all] window 5 s duration 10 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(30));
    let rec = qid.record(&sim).unwrap();
    let s = rec.summary.as_ref().unwrap();
    assert_eq!(s.total_shed, 0);
    assert_eq!(s.total_matched, s.total_sampled);
}

#[test]
fn queries_survive_extreme_join_fanout() {
    // one request id shared by a flood of events on both sides of a join:
    // the cross-product cap must keep central alive and results bounded
    use scrub_agent::{BatchPayload, EventBatch};
    use scrub_central::{QueryExecutor, MAX_JOIN_ROWS_PER_REQUEST};
    use scrub_core::event::Event;
    use scrub_core::plan::{compile, QueryId};

    let reg = SchemaRegistry::new();
    reg.register(EventSchema::new("a", vec![]).unwrap())
        .unwrap();
    reg.register(EventSchema::new("b", vec![]).unwrap())
        .unwrap();
    let spec = parse_query("select COUNT(*) from a, b window 10 s").unwrap();
    let cq = compile(&spec, &reg, &ScrubConfig::default(), QueryId(1)).unwrap();
    let mut exec = QueryExecutor::new(cq.central, 0);
    for t in 0..2u32 {
        exec.ingest(EventBatch {
            seq: 0,
            attempt: 0,
            query_id: QueryId(1),
            type_id: EventTypeId(t),
            host: format!("h{t}"),
            payload: BatchPayload::Rows(
                (0..1000)
                    .map(|i| Event::new(EventTypeId(t), RequestId(7), i, vec![]))
                    .collect(),
            ),
            matched: 1000,
            sampled: 1000,
            shed: 0,
            budget_shed: 0,
            seen: 1000,
            bytes: 0,
            spans: vec![],
        });
    }
    let rows = exec.advance(i64::MAX / 4);
    assert_eq!(
        rows[0].values[0].as_i64().unwrap(),
        MAX_JOIN_ROWS_PER_REQUEST as i64
    );
    assert_eq!(
        exec.join_rows_capped,
        1_000_000 - MAX_JOIN_ROWS_PER_REQUEST as u64
    );
}

#[test]
fn overlapping_query_spans_are_independent() {
    let (mut sim, d) = burst_cluster(2, 50_000);
    let q1 = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from burst @[all] window 5 s duration 10 s",
        )
        .expect("query accepted");
    // second query starts later and outlives the first
    let q2 = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from burst @[all] window 5 s start in 5 s duration 15 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(45));
    let r1 = q1.record(&sim).unwrap();
    let r2 = q2.record(&sim).unwrap();
    assert_eq!(r1.state, QueryState::Done);
    assert_eq!(r2.state, QueryState::Done);
    let span = |r: &scrub_server::QueryRecord| {
        let min = r.rows.iter().map(|x| x.window_start_ms).min().unwrap();
        let max = r.rows.iter().map(|x| x.window_start_ms).max().unwrap();
        (min, max)
    };
    let (min1, max1) = span(r1);
    let (min2, max2) = span(r2);
    assert!(min1 < 5_000);
    assert!(max1 <= 15_000);
    assert!(min2 >= 5_000);
    assert!(max2 > max1, "q2 must outlive q1");
}

#[test]
fn wan_reordering_does_not_corrupt_counters() {
    // DC2 host: 60 ms WAN latency with size-dependent delivery means big
    // batches arrive after small ones sent later; counters must survive.
    let mut config = ScrubConfig::default();
    config.agent_batch_events = 7; // many small batches interleaved
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 6);
    let reg = registry();
    let central = deploy_central(&mut sim, &reg, config.clone(), "DC1");
    sim.add_node(
        NodeMeta::new("far-0", "BurstServers", "DC2"),
        Box::new(BurstHost {
            harness: AgentHarness::new("far-0", config.clone(), central),
            burst: 3,
            emitted: 0,
        }),
    );
    let d = deploy_server(&mut sim, reg, config, central, "DC1");
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from burst @[all] window 5 s duration 15 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(40));
    let rec = qid.record(&sim).unwrap();
    let s = rec.summary.as_ref().unwrap();
    let total: i64 = rec.rows.iter().map(|r| r.values[0].as_i64().unwrap()).sum();
    assert_eq!(total as u64, s.total_sampled, "rows disagree with counters");
    assert_eq!(s.total_matched, s.total_sampled);
}

#[test]
fn sliding_window_end_to_end() {
    let (mut sim, d) = burst_cluster(1, 50_000);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from burst @[all] window 10 s slide 5 s duration 20 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(45));
    let rec = qid.record(&sim).unwrap();
    assert_eq!(rec.state, QueryState::Done);
    // window starts every 5 s, each counting ~10 s of traffic at ~1000/s
    let starts: Vec<i64> = rec.rows.iter().map(|r| r.window_start_ms).collect();
    assert!(starts.windows(2).all(|w| w[1] - w[0] == 5_000));
    let mid_counts: Vec<i64> = rec
        .rows
        .iter()
        .filter(|r| r.window_start_ms >= 5_000 && r.window_start_ms <= 10_000)
        .map(|r| r.values[0].as_i64().unwrap())
        .collect();
    for c in mid_counts {
        assert!((9_000..=11_000).contains(&c), "mid-window count {c}");
    }
}
