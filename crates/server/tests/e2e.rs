//! End-to-end tests of the full Scrub pipeline over the simulated cluster:
//! application hosts tap events → agents select/project/sample → batches
//! cross the (simulated) network → ScrubCentral joins/groups/aggregates →
//! the query server collects rows and summaries.

use std::sync::Arc;

use scrub_core::config::ScrubConfig;
use scrub_core::event::RequestId;
use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};
use scrub_core::value::Value;
use scrub_server::{AgentHarness, QueryState, ScrubClient, ScrubMsg};
use scrub_simnet::{Context, Node, NodeId, NodeMeta, Sim, SimDuration, SimTime, Topology};

/// An application host emitting one `bid` event every millisecond.
struct BidHost {
    harness: AgentHarness,
    emitted: u64,
    /// user id cycle length (events round-robin over users)
    users: u64,
    rate_interval: SimDuration,
}

const APP_TIMER: u64 = 1;

impl Node<ScrubMsg> for BidHost {
    fn on_start(&mut self, ctx: &mut Context<'_, ScrubMsg>) {
        self.harness.start(ctx);
        ctx.set_timer(self.rate_interval, APP_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ScrubMsg>, from: NodeId, msg: ScrubMsg) {
        let _ = self.harness.on_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ScrubMsg>, timer: u64) {
        if self.harness.on_timer(ctx, timer) {
            return;
        }
        if timer == APP_TIMER {
            let user = self.emitted % self.users;
            let price = 0.5 + (self.emitted % 10) as f64 * 0.1;
            self.harness.agent().log(
                EventTypeId(0),
                RequestId(self.emitted * 1000 + ctx.self_id.0 as u64),
                ctx.now.as_ms(),
                &[Value::Long(user as i64), Value::Double(price)],
            );
            self.emitted += 1;
            ctx.set_timer(self.rate_interval, APP_TIMER);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn schema_registry() -> Arc<SchemaRegistry> {
    let reg = SchemaRegistry::new();
    reg.register(
        EventSchema::new(
            "bid",
            vec![
                FieldDef::new("user_id", FieldType::Long),
                FieldDef::new("bid_price", FieldType::Double),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    Arc::new(reg)
}

/// Build a cluster of `n_hosts` BidHosts plus a Scrub deployment.
fn cluster(n_hosts: usize) -> (Sim<ScrubMsg>, scrub_server::ScrubDeployment) {
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 42);
    let config = ScrubConfig::default();
    let reg = schema_registry();
    let central = scrub_server::deploy_central(&mut sim, &reg, config.clone(), "DC1");
    for i in 0..n_hosts {
        let name = format!("bid-{i}");
        let dc = if i % 2 == 0 { "DC1" } else { "DC2" };
        let harness = AgentHarness::new(name.clone(), config.clone(), central);
        sim.add_node(
            NodeMeta::new(name, "BidServers", dc),
            Box::new(BidHost {
                harness,
                emitted: 0,
                users: 5,
                rate_interval: SimDuration::from_ms(1),
            }),
        );
    }
    let d = scrub_server::deploy_server(&mut sim, reg, config, central, "DC1");
    (sim, d)
}

#[test]
fn grouped_count_end_to_end() {
    let (mut sim, d) = cluster(4);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select bid.user_id, COUNT(*) from bid \
         @[Service in BidServers] group by bid.user_id window 10 s duration 30 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(60));
    let rec = qid.record(&sim).expect("query record");
    assert_eq!(rec.state, QueryState::Done);
    assert_eq!(rec.hosts.len(), 4);
    assert!(!rec.rows.is_empty(), "no rows produced");
    // 5 users per host, counted per 10s window: each full window counts
    // ~10000ms/1ms / 5 users * 4 hosts = 8000 per user
    let w0: Vec<_> = rec.rows.iter().filter(|r| r.window_start_ms == 0).collect();
    assert_eq!(w0.len(), 5, "expected 5 user groups in window 0: {w0:?}");
    for row in &w0 {
        let count = row.values[1].as_i64().unwrap();
        // each of 4 hosts emits ~2000 events per user per window
        assert!(
            (7000..=8100).contains(&count),
            "count per user per window = {count}"
        );
    }
    let summary = rec.summary.as_ref().unwrap();
    assert_eq!(summary.hosts_reporting, 4);
    assert_eq!(summary.total_shed, 0);
}

#[test]
fn where_clause_filters_on_host() {
    let (mut sim, d) = cluster(2);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from bid where bid.bid_price >= 1.3 \
         @[Service in BidServers] window 10 s duration 20 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(45));
    let rec = qid.record(&sim).unwrap();
    assert_eq!(rec.state, QueryState::Done);
    // prices cycle 0.5..1.4 by 0.1; >= 1.3 keeps 2 of 10 events
    let total: i64 = rec.rows.iter().map(|r| r.values[0].as_i64().unwrap()).sum();
    let matched = rec.summary.as_ref().unwrap().total_matched as i64;
    assert_eq!(total, matched);
    // 2 hosts * ~1000 events/s * 20s * 0.2 = ~8000
    assert!((6000..=8400).contains(&total), "total {total}");
}

#[test]
fn target_clause_limits_hosts() {
    let (mut sim, d) = cluster(4);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from bid @[Service in BidServers and DC = DC1] \
         window 10 s duration 20 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(45));
    let rec = qid.record(&sim).unwrap();
    // hosts 0 and 2 are in DC1
    assert_eq!(rec.hosts.len(), 2);
    assert_eq!(rec.matching_hosts, 2);
    assert_eq!(rec.summary.as_ref().unwrap().hosts_reporting, 2);
}

#[test]
fn single_host_target() {
    let (mut sim, d) = cluster(3);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from bid @[Server = 'bid-1'] window 10 s duration 20 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(45));
    let rec = qid.record(&sim).unwrap();
    assert_eq!(rec.hosts.len(), 1);
}

#[test]
fn bad_query_rejected_with_reason() {
    let (mut sim, d) = cluster(1);
    let err = ScrubClient::new(&d)
        .submit(&mut sim, "select NOPE(bid.x) from bid")
        .expect_err("bad query must be rejected");
    assert!(
        matches!(&err, scrub_core::error::ScrubError::Rejected(r) if r.contains("unknown function")),
        "{err}"
    );
    let rej = ScrubClient::new(&d).rejections(&sim);
    assert_eq!(rej.len(), 1);
    assert!(rej[0].1.contains("unknown function"));
}

#[test]
fn unknown_event_type_rejected() {
    let (mut sim, d) = cluster(1);
    ScrubClient::new(&d)
        .submit(&mut sim, "select COUNT(*) from nonexistent")
        .expect_err("unknown event type must be rejected");
    assert_eq!(ScrubClient::new(&d).rejections(&sim).len(), 1);
}

#[test]
fn no_matching_hosts_rejected() {
    let (mut sim, d) = cluster(1);
    let err = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from bid @[Service in WrongService]",
        )
        .expect_err("unmatched target must be rejected");
    assert!(err.to_string().contains("no hosts"), "{err}");
    let rej = ScrubClient::new(&d).rejections(&sim);
    assert_eq!(rej.len(), 1);
    assert!(rej[0].1.contains("no hosts"));
}

#[test]
fn query_span_stops_collection() {
    let (mut sim, d) = cluster(1);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from bid @[all] window 10 s duration 20 s",
        )
        .expect("query accepted");
    // run far past the query span: collection must have stopped at ~20s
    sim.run_until(SimTime::from_secs(120));
    let rec = qid.record(&sim).unwrap();
    assert_eq!(rec.state, QueryState::Done);
    let max_window = rec.rows.iter().map(|r| r.window_start_ms).max().unwrap();
    assert!(
        max_window <= 30_000,
        "windows continued after span: {max_window}"
    );
    // and the agent no longer carries subscriptions
    let host = sim.node_by_name("bid-0").unwrap();
    let bidhost = sim.node_as::<BidHost>(host).unwrap();
    assert_eq!(bidhost.harness.agent().subscription_count(), 0);
}

#[test]
fn delayed_start_honored() {
    let (mut sim, d) = cluster(1);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from bid @[all] window 10 s start in 30 s duration 10 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(90));
    let rec = qid.record(&sim).unwrap();
    assert_eq!(rec.state, QueryState::Done);
    let min_window = rec.rows.iter().map(|r| r.window_start_ms).min().unwrap();
    assert!(min_window >= 30_000, "collected before start: {min_window}");
}

#[test]
fn event_sampling_scales_estimates() {
    let (mut sim, d) = cluster(2);
    let exact = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from bid @[all] window 10 s duration 20 s",
        )
        .expect("query accepted");
    let sampled = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from bid @[all] window 10 s duration 20 s sample events 10%",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(60));
    let exact_total: f64 = exact
        .record(&sim)
        .unwrap()
        .rows
        .iter()
        .map(|r| r.values[0].as_f64().unwrap())
        .sum();
    let rec = sampled.record(&sim).unwrap();
    let sampled_total: f64 = rec.rows.iter().map(|r| r.values[0].as_f64().unwrap()).sum();
    // scaled estimate should be within 2% of the exact count (scaling uses
    // the true matched/sampled ratio, so only window-edge effects remain)
    let rel = (sampled_total - exact_total).abs() / exact_total;
    assert!(rel < 0.02, "sampled {sampled_total} vs exact {exact_total}");
    // far fewer events were actually shipped
    let s = rec.summary.as_ref().unwrap();
    assert!(s.total_sampled * 5 < s.total_matched);
}

#[test]
fn concurrent_queries_are_isolated() {
    let (mut sim, d) = cluster(2);
    let q1 = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from bid @[all] window 10 s duration 20 s",
        )
        .expect("query accepted");
    let q2 = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select bid.user_id, COUNT(*) from bid @[all] group by bid.user_id \
         window 10 s duration 20 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(60));
    let r1 = q1.record(&sim).unwrap();
    let r2 = q2.record(&sim).unwrap();
    assert_eq!(r1.state, QueryState::Done);
    assert_eq!(r2.state, QueryState::Done);
    assert!(r1.rows.iter().all(|r| r.query_id == q1.id()));
    assert!(r2.rows.iter().all(|r| r.query_id == q2.id()));
    assert_eq!(r1.rows[0].values.len(), 1);
    assert_eq!(r2.rows[0].values.len(), 2);
}

#[test]
fn host_sampling_selects_subset() {
    let (mut sim, d) = cluster(10);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from bid @[Service in BidServers] sample hosts 30% \
         window 10 s duration 20 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(60));
    let rec = qid.record(&sim).unwrap();
    assert_eq!(rec.matching_hosts, 10);
    assert_eq!(rec.hosts.len(), 3);
    assert_eq!(rec.summary.as_ref().unwrap().hosts_reporting, 3);
    // counts are scaled up by the host factor 10/3: each window's count
    // should approximate the full-fleet rate (10 hosts × ~10000/window)
    let w: Vec<f64> = rec
        .rows
        .iter()
        .filter(|r| r.window_start_ms == 10_000)
        .map(|r| r.values[0].as_f64().unwrap())
        .collect();
    assert_eq!(w.len(), 1);
    assert!(
        (80_000.0..=120_000.0).contains(&w[0]),
        "scaled count {}",
        w[0]
    );
}

#[test]
fn cancel_stops_collection_early() {
    let (mut sim, d) = cluster(1);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from bid @[all] window 10 s duration 10 m",
        )
        .expect("query accepted");
    // let it run 25 s, then cancel — far before the 10 min span
    sim.run_until(SimTime::from_secs(25));
    qid.stop(&mut sim);
    sim.run_until(SimTime::from_secs(120));
    let rec = qid.record(&sim).unwrap();
    assert_eq!(rec.state, QueryState::Done);
    let max_window = rec.rows.iter().map(|r| r.window_start_ms).max().unwrap();
    assert!(max_window <= 30_000, "collected after cancel: {max_window}");
    // agent subscriptions were removed
    let host = sim.node_by_name("bid-0").unwrap();
    assert_eq!(
        sim.node_as::<BidHost>(host)
            .unwrap()
            .harness
            .agent()
            .subscription_count(),
        0
    );
}

#[test]
fn cancel_scheduled_query_never_dispatches() {
    let (mut sim, d) = cluster(1);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from bid @[all] start in 1 m duration 1 m",
        )
        .expect("query accepted");
    qid.stop(&mut sim);
    sim.run_until(SimTime::from_secs(240));
    let rec = qid.record(&sim).unwrap();
    assert_eq!(rec.state, QueryState::Done);
    assert!(rec.rows.is_empty(), "cancelled-before-start query has rows");
}

#[test]
fn cancel_after_done_is_harmless() {
    let (mut sim, d) = cluster(1);
    let qid = ScrubClient::new(&d)
        .submit(
            &mut sim,
            "select COUNT(*) from bid @[all] window 10 s duration 10 s",
        )
        .expect("query accepted");
    sim.run_until(SimTime::from_secs(60));
    let rows_before = qid.record(&sim).unwrap().rows.len();
    qid.stop(&mut sim);
    sim.run_until(SimTime::from_secs(90));
    let rec = qid.record(&sim).unwrap();
    assert_eq!(rec.state, QueryState::Done);
    assert_eq!(rec.rows.len(), rows_before);
}

#[test]
fn central_cluster_spreads_queries() {
    use scrub_server::{deploy_central_cluster, deploy_server_clustered, CentralNode};

    let mut sim: Sim<ScrubMsg> = Sim::new(scrub_simnet::Topology::default(), 42);
    let config = ScrubConfig::default();
    let reg = schema_registry();
    let centrals = deploy_central_cluster(&mut sim, &reg, config.clone(), "DC1", 3);
    for i in 0..2 {
        let name = format!("bid-{i}");
        let harness = AgentHarness::new(name.clone(), config.clone(), centrals[0]);
        sim.add_node(
            NodeMeta::new(name, "BidServers", "DC1"),
            Box::new(BidHost {
                harness,
                emitted: 0,
                users: 5,
                rate_interval: SimDuration::from_ms(1),
            }),
        );
    }
    let d = deploy_server_clustered(&mut sim, reg, config, centrals.clone(), "DC1");

    // three queries land on three different centrals (round-robin by id)
    let qids: Vec<_> = (0..3)
        .map(|_| {
            ScrubClient::new(&d)
                .submit(
                    &mut sim,
                    "select COUNT(*) from bid @[all] window 10 s duration 20 s",
                )
                .expect("query accepted")
        })
        .collect();
    sim.run_until(SimTime::from_secs(60));

    let mut totals = Vec::new();
    for &qid in &qids {
        let rec = qid.record(&sim).unwrap();
        assert_eq!(rec.state, QueryState::Done, "query {} unfinished", qid.id());
        let total: i64 = rec.rows.iter().map(|r| r.values[0].as_i64().unwrap()).sum();
        totals.push(total);
    }
    // all three queries observed the same traffic
    assert!(
        totals.windows(2).all(|w| (w[0] - w[1]).abs() < 100),
        "{totals:?}"
    );

    // and each central carried exactly one query's batches
    let mut per_central = Vec::new();
    for &c in &centrals {
        let node = sim.node_as::<CentralNode<ScrubMsg>>(c).unwrap();
        per_central.push(node.batches_received);
    }
    assert!(
        per_central.iter().all(|&b| b > 0),
        "some central idle: {per_central:?}"
    );
}
