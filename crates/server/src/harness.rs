//! Agent harness: embeds a [`ScrubAgent`] into an application's simulated
//! node, handling Scrub control messages and periodic batch shipment so
//! the application code only calls `agent().log(...)` at its event sites.
//!
//! Shipment is reliable: every batch goes through a [`ReliableShipper`],
//! which assigns per-query sequence numbers and retransmits unacked
//! batches with exponential backoff (ScrubCentral deduplicates and acks).
//! The harness also heartbeats the query server so host failures narrow a
//! query's reported coverage instead of silently biasing its results.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use rand::Rng;
use scrub_agent::{EventBatch, ReliableShipper, RetryPolicy, ScrubAgent};
use scrub_core::config::ScrubConfig;
use scrub_core::plan::QueryId;
use scrub_obs::{should_trace, trace_threshold, SpanKind, TraceSpan};
use scrub_simnet::{Context, NodeId, SimDuration};

use crate::msg::{
    ScrubEnvelope, ScrubMsg, TIMER_AGENT_FLUSH, TIMER_AGENT_HEARTBEAT, TIMER_AGENT_RETRY,
};

/// Embeds Scrub's host-side machinery in an application node.
pub struct AgentHarness {
    agent: Arc<ScrubAgent>,
    host: String,
    /// Default central (used if a query object arrives without routing —
    /// single-central deployments).
    central: NodeId,
    /// Per-query ScrubCentral destination (cluster deployments spread
    /// queries across centrals). Routing survives `StopQuery` until the
    /// query's pending batches drain, so retransmits still find central.
    query_central: HashMap<QueryId, NodeId>,
    /// Queries stopped but possibly still draining retransmits.
    stopped: HashSet<QueryId>,
    /// The query server, learned from the sender of `InstallQuery`;
    /// heartbeats flow there once known.
    server: Option<NodeId>,
    shipper: ReliableShipper,
    retry_armed: bool,
    flush_interval: SimDuration,
    heartbeat_interval: SimDuration,
    /// Precomputed trace-sampler threshold (0 = tracing disabled).
    trace_threshold: u64,
}

/// Append a transport-hop span to a wire copy of `batch` for every
/// distinct traced request it carries. Only the copy going on the wire is
/// annotated — the shipper's buffered original is untouched — so each
/// (re)transmission documents its own journey, and whichever copy reaches
/// central first tells the truth about how it got there.
fn annotate_wire_copy(
    batch: &mut EventBatch,
    threshold: u64,
    kind: SpanKind,
    at_ms: i64,
    detail: i64,
) {
    if threshold == 0 {
        return;
    }
    let mut done: HashSet<u64> = HashSet::new();
    let mut spans = std::mem::take(&mut batch.spans);
    batch.payload.for_each_meta(|rid, _ts| {
        if should_trace(rid, threshold) && done.insert(rid) {
            spans.push(TraceSpan::new(rid, kind, at_ms, detail));
        }
    });
    batch.spans = spans;
}

impl AgentHarness {
    /// Create a harness shipping batches to `central`.
    pub fn new(host: impl Into<String>, config: ScrubConfig, central: NodeId) -> Self {
        let host = host.into();
        let flush_interval = SimDuration::from_ms(config.agent_flush_interval_ms.max(1));
        let heartbeat_interval = SimDuration::from_ms(config.agent_heartbeat_interval_ms.max(1));
        let policy = RetryPolicy {
            base_ms: config.agent_retry_base_ms.max(1),
            max_ms: config
                .agent_retry_max_ms
                .max(config.agent_retry_base_ms.max(1)),
            buffer_cap: config.agent_retransmit_buffer.max(1),
        };
        let trace_thresh = trace_threshold(config.trace_sample_rate);
        AgentHarness {
            agent: Arc::new(ScrubAgent::new(host.clone(), config)),
            host,
            central,
            query_central: HashMap::new(),
            stopped: HashSet::new(),
            server: None,
            shipper: ReliableShipper::new(policy),
            retry_armed: false,
            flush_interval,
            heartbeat_interval,
            trace_threshold: trace_thresh,
        }
    }

    fn central_for(&self, qid: QueryId) -> NodeId {
        self.query_central
            .get(&qid)
            .copied()
            .unwrap_or(self.central)
    }

    /// The embedded agent (the application's tap).
    pub fn agent(&self) -> &Arc<ScrubAgent> {
        &self.agent
    }

    /// Batches shipped but not yet acked by ScrubCentral.
    pub fn acks_pending(&self) -> usize {
        self.shipper.pending_count()
    }

    /// Call from the node's `on_start`: arms the periodic flush and
    /// heartbeat timers. Idempotent across simulated host restarts (a
    /// restart re-runs `on_start`; the previous incarnation's timers are
    /// discarded by the scheduler).
    pub fn start<E: ScrubEnvelope>(&mut self, ctx: &mut Context<'_, E>) {
        ctx.set_timer(self.flush_interval, TIMER_AGENT_FLUSH);
        ctx.set_timer(self.heartbeat_interval, TIMER_AGENT_HEARTBEAT);
        // A restart also orphans any armed retry timer.
        self.retry_armed = false;
        if self.shipper.has_pending() {
            self.arm_retry(ctx);
        }
    }

    fn update_pending_gauge(&self) {
        self.agent
            .stats()
            .acks_pending
            .store(self.shipper.pending_count() as u64, Ordering::Relaxed);
    }

    fn arm_retry<E: ScrubEnvelope>(&mut self, ctx: &mut Context<'_, E>) {
        if self.retry_armed {
            return;
        }
        if let Some(due) = self.shipper.next_due_ms() {
            let delay = (due - ctx.now.as_ms()).max(1);
            ctx.set_timer(SimDuration::from_ms(delay), TIMER_AGENT_RETRY);
            self.retry_armed = true;
        }
    }

    fn ship<E: ScrubEnvelope>(&mut self, ctx: &mut Context<'_, E>, batch: EventBatch) {
        let dest = self.central_for(batch.query_id);
        let now_ms = ctx.now.as_ms();
        let mut batch = self.shipper.ship(batch, now_ms);
        let seq = batch.seq as i64;
        annotate_wire_copy(
            &mut batch,
            self.trace_threshold,
            SpanKind::Send,
            now_ms,
            seq,
        );
        ctx.send(dest, E::wrap(ScrubMsg::Batch(batch)));
        self.update_pending_gauge();
        self.arm_retry(ctx);
    }

    /// Drop shipping state for a stopped query once nothing is pending.
    fn maybe_forget(&mut self, qid: QueryId) {
        if self.stopped.contains(&qid) && self.shipper.pending_for(qid) == 0 {
            self.shipper.forget_query(qid);
            self.query_central.remove(&qid);
            self.stopped.remove(&qid);
        }
    }

    /// Call from the node's `on_message` *before* application handling,
    /// passing the sender. Returns the envelope back when it was an
    /// application message.
    pub fn on_message<E: ScrubEnvelope>(
        &mut self,
        ctx: &mut Context<'_, E>,
        from: NodeId,
        msg: E,
    ) -> Result<(), E> {
        let scrub = msg.open()?;
        match scrub {
            ScrubMsg::InstallQuery { plans, central } => {
                self.server = Some(from);
                for p in plans {
                    self.stopped.remove(&p.query_id);
                    self.query_central.insert(p.query_id, central);
                    // install failures (duplicates) are control-plane bugs;
                    // the agent stays consistent either way
                    let _ = self.agent.install(p);
                }
            }
            ScrubMsg::StopQuery { query_id } => {
                self.server = Some(from);
                let tail = self.agent.remove(query_id, ctx.now.as_ms());
                for b in tail {
                    self.ship(ctx, b);
                }
                // keep routing until the pending batches drain
                self.stopped.insert(query_id);
                self.maybe_forget(query_id);
            }
            ScrubMsg::BatchAck { query_id, seq } => {
                self.shipper.ack(query_id, seq);
                self.update_pending_gauge();
                self.maybe_forget(query_id);
            }
            _ => { /* other scrub messages are not addressed to hosts */ }
        }
        Ok(())
    }

    /// Call from the node's `on_timer`. Returns `true` when the timer was
    /// one of the harness's timers and is consumed.
    pub fn on_timer<E: ScrubEnvelope>(&mut self, ctx: &mut Context<'_, E>, timer: u64) -> bool {
        match timer {
            TIMER_AGENT_FLUSH => {
                for b in self.agent.take_batches(ctx.now.as_ms()) {
                    self.ship(ctx, b);
                }
                ctx.set_timer(self.flush_interval, TIMER_AGENT_FLUSH);
                true
            }
            TIMER_AGENT_RETRY => {
                self.retry_armed = false;
                let now_ms = ctx.now.as_ms();
                // Jitter decorrelates retry storms across hosts; the RNG is
                // only consulted when a retransmit actually fires, so
                // fault-free executions draw nothing here.
                let rng = &mut *ctx.rng;
                let due = self
                    .shipper
                    .due_retransmits(now_ms, |backoff| rng.gen_range(0..=backoff / 4));
                let stats = self.agent.stats();
                for mut r in due {
                    let dest = self.central_for(r.batch.query_id);
                    annotate_wire_copy(
                        &mut r.batch,
                        self.trace_threshold,
                        SpanKind::Retransmit,
                        now_ms,
                        r.attempt as i64,
                    );
                    stats.retransmits.fetch_add(1, Ordering::Relaxed);
                    stats
                        .bytes_retransmitted
                        .fetch_add(r.batch.approx_bytes() as u64, Ordering::Relaxed);
                    ctx.send(dest, E::wrap(ScrubMsg::Batch(r.batch)));
                }
                let evicted = self.shipper.evicted();
                if evicted > 0 {
                    stats.retransmit_evictions.store(evicted, Ordering::Relaxed);
                }
                self.arm_retry(ctx);
                true
            }
            TIMER_AGENT_HEARTBEAT => {
                if let Some(server) = self.server {
                    ctx.send(
                        server,
                        E::wrap(ScrubMsg::Heartbeat {
                            host: self.host.clone(),
                        }),
                    );
                    self.agent
                        .stats()
                        .heartbeats_sent
                        .fetch_add(1, Ordering::Relaxed);
                }
                ctx.set_timer(self.heartbeat_interval, TIMER_AGENT_HEARTBEAT);
                true
            }
            _ => false,
        }
    }
}
