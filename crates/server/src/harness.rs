//! Agent harness: embeds a [`ScrubAgent`] into an application's simulated
//! node, handling Scrub control messages and periodic batch shipment so
//! the application code only calls `agent().log(...)` at its event sites.

use std::collections::HashMap;
use std::sync::Arc;

use scrub_agent::ScrubAgent;
use scrub_core::config::ScrubConfig;
use scrub_core::plan::QueryId;
use scrub_simnet::{Context, NodeId, SimDuration};

use crate::msg::{ScrubEnvelope, ScrubMsg, TIMER_AGENT_FLUSH};

/// Embeds Scrub's host-side machinery in an application node.
pub struct AgentHarness {
    agent: Arc<ScrubAgent>,
    /// Default central (used if a query object arrives without routing —
    /// single-central deployments).
    central: NodeId,
    /// Per-query ScrubCentral destination (cluster deployments spread
    /// queries across centrals).
    query_central: HashMap<QueryId, NodeId>,
    flush_interval: SimDuration,
}

impl AgentHarness {
    /// Create a harness shipping batches to `central`.
    pub fn new(host: impl Into<String>, config: ScrubConfig, central: NodeId) -> Self {
        let flush_interval = SimDuration::from_ms(config.agent_flush_interval_ms.max(1));
        AgentHarness {
            agent: Arc::new(ScrubAgent::new(host, config)),
            central,
            query_central: HashMap::new(),
            flush_interval,
        }
    }

    fn central_for(&self, qid: QueryId) -> NodeId {
        self.query_central
            .get(&qid)
            .copied()
            .unwrap_or(self.central)
    }

    /// The embedded agent (the application's tap).
    pub fn agent(&self) -> &Arc<ScrubAgent> {
        &self.agent
    }

    /// Call from the node's `on_start`: arms the periodic flush timer.
    pub fn start<E: ScrubEnvelope>(&mut self, ctx: &mut Context<'_, E>) {
        ctx.set_timer(self.flush_interval, TIMER_AGENT_FLUSH);
    }

    /// Call from the node's `on_message` *before* application handling.
    /// Returns `true` when the message was a Scrub message and is consumed.
    pub fn on_message<E: ScrubEnvelope>(
        &mut self,
        ctx: &mut Context<'_, E>,
        msg: E,
    ) -> Result<(), E> {
        let scrub = msg.open()?;
        match scrub {
            ScrubMsg::InstallQuery { plans, central } => {
                for p in plans {
                    self.query_central.insert(p.query_id, central);
                    // install failures (duplicates) are control-plane bugs;
                    // the agent stays consistent either way
                    let _ = self.agent.install(p);
                }
            }
            ScrubMsg::StopQuery { query_id } => {
                let tail = self.agent.remove(query_id, ctx.now.as_ms());
                let dest = self.central_for(query_id);
                self.query_central.remove(&query_id);
                for b in tail {
                    ctx.send(dest, E::wrap(ScrubMsg::Batch(b)));
                }
            }
            _ => { /* other scrub messages are not addressed to hosts */ }
        }
        Ok(())
    }

    /// Call from the node's `on_timer`. Returns `true` when the timer was
    /// the harness's flush timer and is consumed.
    pub fn on_timer<E: ScrubEnvelope>(&mut self, ctx: &mut Context<'_, E>, timer: u64) -> bool {
        if timer != TIMER_AGENT_FLUSH {
            return false;
        }
        for b in self.agent.take_batches(ctx.now.as_ms()) {
            let dest = self.central_for(b.query_id);
            ctx.send(dest, E::wrap(ScrubMsg::Batch(b)));
        }
        ctx.set_timer(self.flush_interval, TIMER_AGENT_FLUSH);
        true
    }
}
