//! # scrub-server
//!
//! The Scrub control plane (§4, Figure 3): the query server that parses,
//! validates and plans queries, resolves the `@[...]` target clause,
//! applies host sampling, dispatches query objects, enforces query spans
//! and collects results — plus the simulated-node embeddings of
//! ScrubCentral and the host agent, and a `deploy` helper that wires a
//! complete Scrub instance into a simulated cluster.

pub mod central_node;
pub mod client;
pub mod deploy;
pub mod harness;
pub mod msg;
pub mod server_node;

pub use central_node::CentralNode;
pub use client::{QueryHandle, ScrubClient};
pub use deploy::{
    deploy_central, deploy_central_cluster, deploy_server, deploy_server_clustered,
    inventory_from_sim, meta_inventory_from_sim, ScrubDeployment, SCRUB_CENTRAL_SERVICE,
    SCRUB_SERVER_SERVICE,
};
pub use harness::AgentHarness;
pub use msg::{ScrubEnvelope, ScrubMsg};
pub use server_node::{
    AdmissionDecision, AdmissionVerdict, QueryRecord, QueryServerNode, QueryState,
};
