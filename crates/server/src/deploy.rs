//! Deployment helper: wires a ScrubCentral node and a query-server node
//! into an existing simulated cluster of application hosts.

use std::sync::Arc;

use scrub_core::config::ScrubConfig;
use scrub_core::schema::SchemaRegistry;
use scrub_core::target::HostInfo;
use scrub_simnet::{NodeId, NodeMeta, Sim};

use crate::central_node::CentralNode;
use crate::msg::ScrubEnvelope;
use crate::server_node::QueryServerNode;

/// Service name of the ScrubCentral node (excluded from target
/// resolution: queries never run on Scrub's own machines).
pub const SCRUB_CENTRAL_SERVICE: &str = "ScrubCentral";
/// Service name of the query-server node.
pub const SCRUB_SERVER_SERVICE: &str = "ScrubQueryServer";

/// Handles to a deployed Scrub instance.
#[derive(Debug, Clone, Copy)]
pub struct ScrubDeployment {
    /// The query-server node.
    pub server: NodeId,
    /// The ScrubCentral node.
    pub central: NodeId,
}

/// Build the application-host inventory from the simulation's node
/// metadata, excluding Scrub's own services.
pub fn inventory_from_sim<E: ScrubEnvelope>(sim: &Sim<E>) -> Vec<(NodeId, HostInfo)> {
    sim.metas()
        .iter()
        .enumerate()
        .filter(|(_, m)| m.service != SCRUB_CENTRAL_SERVICE && m.service != SCRUB_SERVER_SERVICE)
        .map(|(i, m)| {
            (
                NodeId(i as u32),
                HostInfo::new(m.name.clone(), m.service.clone(), m.dc.clone()),
            )
        })
        .collect()
}

/// Scrub's own nodes as a target inventory. Only queries that
/// *explicitly name* a Scrub service or host (e.g.
/// `@[Service in ScrubCentral]`) resolve to these — blanket selectors
/// like `@[all]` still reach application hosts only. This is what lets
/// ScrubQL run over Scrub's own `scrub_batch`/`scrub_window` telemetry.
pub fn meta_inventory_from_sim<E: ScrubEnvelope>(sim: &Sim<E>) -> Vec<(NodeId, HostInfo)> {
    sim.metas()
        .iter()
        .enumerate()
        .filter(|(_, m)| m.service == SCRUB_CENTRAL_SERVICE)
        .map(|(i, m)| {
            (
                NodeId(i as u32),
                HostInfo::new(m.name.clone(), m.service.clone(), m.dc.clone()),
            )
        })
        .collect()
}

/// Add the ScrubCentral node. Call this *before* creating application
/// hosts so their agent harnesses know where to ship batches. The schema
/// registry must be the same one the query server validates against —
/// central registers its meta-event types into it.
pub fn deploy_central<E: ScrubEnvelope>(
    sim: &mut Sim<E>,
    registry: &Arc<SchemaRegistry>,
    config: ScrubConfig,
    central_dc: &str,
) -> NodeId {
    sim.add_node(
        NodeMeta::new("scrub-central", SCRUB_CENTRAL_SERVICE, central_dc),
        Box::new(CentralNode::<E>::new(config, registry.clone())),
    )
}

/// Add a ScrubCentral *cluster* of `n` nodes (the paper's deployment runs
/// a small cluster). Pair with [`deploy_server_clustered`].
pub fn deploy_central_cluster<E: ScrubEnvelope>(
    sim: &mut Sim<E>,
    registry: &Arc<SchemaRegistry>,
    config: ScrubConfig,
    central_dc: &str,
    n: usize,
) -> Vec<NodeId> {
    (0..n.max(1))
        .map(|i| {
            sim.add_node(
                NodeMeta::new(
                    format!("scrub-central-{i}"),
                    SCRUB_CENTRAL_SERVICE,
                    central_dc,
                ),
                Box::new(CentralNode::<E>::new(config.clone(), registry.clone())),
            )
        })
        .collect()
}

/// Add the query server. Call this *after* the application hosts exist —
/// it snapshots the host inventory for target resolution.
pub fn deploy_server<E: ScrubEnvelope>(
    sim: &mut Sim<E>,
    schema_registry: Arc<SchemaRegistry>,
    config: ScrubConfig,
    central: NodeId,
    server_dc: &str,
) -> ScrubDeployment {
    let inventory = inventory_from_sim(sim);
    let mut node = QueryServerNode::<E>::new(schema_registry, config, central, inventory);
    node.set_meta_inventory(meta_inventory_from_sim(sim));
    let server = sim.add_node(
        NodeMeta::new("scrub-server", SCRUB_SERVER_SERVICE, server_dc),
        Box::new(node),
    );
    ScrubDeployment { server, central }
}

/// Add the query server over a ScrubCentral cluster. Call after the
/// application hosts exist.
pub fn deploy_server_clustered<E: ScrubEnvelope>(
    sim: &mut Sim<E>,
    schema_registry: Arc<SchemaRegistry>,
    config: ScrubConfig,
    centrals: Vec<NodeId>,
    server_dc: &str,
) -> ScrubDeployment {
    let inventory = inventory_from_sim(sim);
    let first_central = centrals[0];
    let mut node =
        QueryServerNode::<E>::with_centrals(schema_registry, config, centrals, inventory);
    node.set_meta_inventory(meta_inventory_from_sim(sim));
    let server = sim.add_node(
        NodeMeta::new("scrub-server", SCRUB_SERVER_SERVICE, server_dc),
        Box::new(node),
    );
    ScrubDeployment {
        server,
        central: first_central,
    }
}
