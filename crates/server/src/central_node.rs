//! ScrubCentral as a simulated node: hosts one [`PartitionedExecutor`] per
//! active query, advances watermarks on a timer, and streams finished rows
//! to the query server.
//!
//! Delivery from agents is at-least-once (agents retransmit unacked
//! batches), so central deduplicates on `(host, query, seq)` and acks
//! every batch — including duplicates, so a host whose ack was lost stops
//! retransmitting. Central also watches per-host batch arrivals: a host
//! that goes silent while its peers keep reporting is suspected dead, its
//! samples leave the estimator and subsequent rows are marked degraded —
//! windows keep closing on time instead of stalling on a dead host.

use std::collections::{HashMap, HashSet};
use std::marker::PhantomData;

use scrub_central::PartitionedExecutor;
use scrub_core::config::ScrubConfig;
use scrub_core::plan::QueryId;
use scrub_simnet::{Context, Node, NodeId, SimDuration};

use crate::msg::{ScrubEnvelope, ScrubMsg, TIMER_CENTRAL_ADVANCE};

/// The centralized execution facility (one node; the paper runs a small
/// cluster — partitions model its parallelism).
pub struct CentralNode<E: ScrubEnvelope> {
    config: ScrubConfig,
    server: Option<NodeId>,
    executors: HashMap<QueryId, PartitionedExecutor>,
    /// Per-query, per-host sequence numbers already ingested.
    seen: HashMap<QueryId, HashMap<String, HashSet<u64>>>,
    /// Per-query, per-host time of the last batch heard (ms).
    last_heard: HashMap<QueryId, HashMap<String, i64>>,
    /// Events ingested across all queries (for throughput accounting).
    pub events_ingested: u64,
    /// Batches received.
    pub batches_received: u64,
    /// Batches discarded as duplicates across all queries.
    pub duplicate_batches: u64,
    _marker: PhantomData<fn(E)>,
}

impl<E: ScrubEnvelope> CentralNode<E> {
    /// Create a central node; `server` is learned from the first
    /// `CentralInstall` sender if not preset.
    pub fn new(config: ScrubConfig) -> Self {
        CentralNode {
            config,
            server: None,
            executors: HashMap::new(),
            seen: HashMap::new(),
            last_heard: HashMap::new(),
            events_ingested: 0,
            batches_received: 0,
            duplicate_batches: 0,
            _marker: PhantomData,
        }
    }

    /// Number of active queries.
    pub fn active_queries(&self) -> usize {
        self.executors.len()
    }

    fn advance_interval(&self) -> SimDuration {
        // advance watermarks a few times per window
        SimDuration::from_ms((self.config.default_window_ms / 4).max(100))
    }

    /// Hosts that reported at least once for `qid` but have been silent
    /// for `host_grace_ms` while some peer kept reporting. The reference
    /// point is the most recent arrival (not the wall clock), so a query
    /// whose *every* host went quiet — e.g. after `StopQuery` during the
    /// drain — suspects nobody.
    fn suspect_hosts(&self, qid: QueryId) -> HashSet<String> {
        let Some(heard) = self.last_heard.get(&qid) else {
            return HashSet::new();
        };
        let Some(&newest) = heard.values().max() else {
            return HashSet::new();
        };
        let cutoff = newest - self.config.host_grace_ms;
        heard
            .iter()
            .filter(|(_, &at)| at < cutoff)
            .map(|(h, _)| h.clone())
            .collect()
    }

    fn refresh_dead_hosts(&mut self) {
        let qids: Vec<QueryId> = self.executors.keys().copied().collect();
        for qid in qids {
            let dead = self.suspect_hosts(qid);
            if let Some(exec) = self.executors.get_mut(&qid) {
                if *exec.dead_hosts() != dead {
                    exec.set_dead_hosts(dead);
                }
            }
        }
    }

    fn flush_rows(&mut self, ctx: &mut Context<'_, E>, now_ms: i64) {
        let Some(server) = self.server else {
            return;
        };
        for exec in self.executors.values_mut() {
            let rows = exec.advance(now_ms);
            if !rows.is_empty() {
                ctx.send(server, E::wrap(ScrubMsg::Rows { rows }));
            }
        }
    }
}

impl<E: ScrubEnvelope> Node<E> for CentralNode<E> {
    fn on_start(&mut self, ctx: &mut Context<'_, E>) {
        ctx.set_timer(self.advance_interval(), TIMER_CENTRAL_ADVANCE);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, E>, from: NodeId, msg: E) {
        let Ok(scrub) = msg.open() else {
            return; // not a scrub message; central ignores app traffic
        };
        match scrub {
            ScrubMsg::CentralInstall { plan } => {
                self.server = Some(from);
                let qid = plan.query_id;
                let exec = PartitionedExecutor::new(
                    plan,
                    self.config.window_grace_ms,
                    self.config.central_partitions,
                );
                self.executors.insert(qid, exec);
            }
            ScrubMsg::CentralStop { query_id } => {
                self.seen.remove(&query_id);
                self.last_heard.remove(&query_id);
                if let Some(mut exec) = self.executors.remove(&query_id) {
                    let (rows, summary) = exec.finish();
                    if let Some(server) = self.server {
                        if !rows.is_empty() {
                            ctx.send(server, E::wrap(ScrubMsg::Rows { rows }));
                        }
                        ctx.send(server, E::wrap(ScrubMsg::Summary { summary }));
                    }
                }
            }
            ScrubMsg::Batch(batch) => {
                self.batches_received += 1;
                // Ack everything — duplicates and batches for unknown
                // (already-finished) queries too — so the sender stops
                // retransmitting even when the original ack was lost.
                ctx.send(
                    from,
                    E::wrap(ScrubMsg::BatchAck {
                        query_id: batch.query_id,
                        seq: batch.seq,
                    }),
                );
                let fresh = self
                    .seen
                    .entry(batch.query_id)
                    .or_default()
                    .entry(batch.host.clone())
                    .or_default()
                    .insert(batch.seq);
                if !fresh {
                    self.duplicate_batches += 1;
                    if let Some(exec) = self.executors.get_mut(&batch.query_id) {
                        exec.note_duplicate();
                    }
                    return;
                }
                self.last_heard
                    .entry(batch.query_id)
                    .or_default()
                    .insert(batch.host.clone(), ctx.now.as_ms());
                self.events_ingested += batch.events.len() as u64;
                if let Some(exec) = self.executors.get_mut(&batch.query_id) {
                    exec.ingest(batch);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, E>, timer: u64) {
        if timer == TIMER_CENTRAL_ADVANCE {
            let now_ms = ctx.now.as_ms();
            self.refresh_dead_hosts();
            self.flush_rows(ctx, now_ms);
            ctx.set_timer(self.advance_interval(), TIMER_CENTRAL_ADVANCE);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
