//! ScrubCentral as a simulated node: hosts one [`PartitionedExecutor`] per
//! active query, advances watermarks on a timer, and streams finished rows
//! to the query server.

use std::collections::HashMap;
use std::marker::PhantomData;

use scrub_central::PartitionedExecutor;
use scrub_core::config::ScrubConfig;
use scrub_core::plan::QueryId;
use scrub_simnet::{Context, Node, NodeId, SimDuration};

use crate::msg::{ScrubEnvelope, ScrubMsg, TIMER_CENTRAL_ADVANCE};

/// The centralized execution facility (one node; the paper runs a small
/// cluster — partitions model its parallelism).
pub struct CentralNode<E: ScrubEnvelope> {
    config: ScrubConfig,
    server: Option<NodeId>,
    executors: HashMap<QueryId, PartitionedExecutor>,
    /// Events ingested across all queries (for throughput accounting).
    pub events_ingested: u64,
    /// Batches received.
    pub batches_received: u64,
    _marker: PhantomData<fn(E)>,
}

impl<E: ScrubEnvelope> CentralNode<E> {
    /// Create a central node; `server` is learned from the first
    /// `CentralInstall` sender if not preset.
    pub fn new(config: ScrubConfig) -> Self {
        CentralNode {
            config,
            server: None,
            executors: HashMap::new(),
            events_ingested: 0,
            batches_received: 0,
            _marker: PhantomData,
        }
    }

    /// Number of active queries.
    pub fn active_queries(&self) -> usize {
        self.executors.len()
    }

    fn advance_interval(&self) -> SimDuration {
        // advance watermarks a few times per window
        SimDuration::from_ms((self.config.default_window_ms / 4).max(100))
    }

    fn flush_rows(&mut self, ctx: &mut Context<'_, E>, now_ms: i64) {
        let Some(server) = self.server else {
            return;
        };
        for exec in self.executors.values_mut() {
            let rows = exec.advance(now_ms);
            if !rows.is_empty() {
                ctx.send(server, E::wrap(ScrubMsg::Rows { rows }));
            }
        }
    }
}

impl<E: ScrubEnvelope> Node<E> for CentralNode<E> {
    fn on_start(&mut self, ctx: &mut Context<'_, E>) {
        ctx.set_timer(self.advance_interval(), TIMER_CENTRAL_ADVANCE);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, E>, from: NodeId, msg: E) {
        let Ok(scrub) = msg.open() else {
            return; // not a scrub message; central ignores app traffic
        };
        match scrub {
            ScrubMsg::CentralInstall { plan } => {
                self.server = Some(from);
                let qid = plan.query_id;
                let exec = PartitionedExecutor::new(
                    plan,
                    self.config.window_grace_ms,
                    self.config.central_partitions,
                );
                self.executors.insert(qid, exec);
            }
            ScrubMsg::CentralStop { query_id } => {
                if let Some(mut exec) = self.executors.remove(&query_id) {
                    let (rows, summary) = exec.finish();
                    if let Some(server) = self.server {
                        if !rows.is_empty() {
                            ctx.send(server, E::wrap(ScrubMsg::Rows { rows }));
                        }
                        ctx.send(server, E::wrap(ScrubMsg::Summary { summary }));
                    }
                }
            }
            ScrubMsg::Batch(batch) => {
                self.batches_received += 1;
                self.events_ingested += batch.events.len() as u64;
                if let Some(exec) = self.executors.get_mut(&batch.query_id) {
                    exec.ingest(batch);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, E>, timer: u64) {
        if timer == TIMER_CENTRAL_ADVANCE {
            let now_ms = ctx.now.as_ms();
            self.flush_rows(ctx, now_ms);
            ctx.set_timer(self.advance_interval(), TIMER_CENTRAL_ADVANCE);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
