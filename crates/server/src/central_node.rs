//! ScrubCentral as a simulated node: hosts one [`PartitionedExecutor`] per
//! active query, advances watermarks on a timer, and streams finished rows
//! to the query server.
//!
//! Delivery from agents is at-least-once (agents retransmit unacked
//! batches), so central deduplicates on `(host, query, seq)` and acks
//! every batch — including duplicates, so a host whose ack was lost stops
//! retransmitting. Central also watches per-host batch arrivals: a host
//! that goes silent while its peers keep reporting is suspected dead, its
//! samples leave the estimator and subsequent rows are marked degraded —
//! windows keep closing on time instead of stalling on a dead host.
//!
//! # Self-observability
//!
//! Central is where every query's data plane converges, so it assembles
//! the per-query [`QueryProfile`]s (per-host tap counters, first-sent vs
//! retransmitted bytes, window opens/closes/degradations, join-state
//! pressure, ingest latency) and keeps node-level counters in a
//! [`Registry`]. It also *dogfoods* Scrub: an embedded [`AgentHarness`]
//! taps a `scrub_batch` meta-event per received batch and a
//! `scrub_window` meta-event per window close, through the same `log()`
//! fast path the application uses. A ScrubQL query targeting
//! `@[Service in ScrubCentral]` runs over this telemetry like any other
//! query — selection, windows, sampling, reliable shipment and all.
//! Batches that themselves carry meta-events are not re-tapped, which
//! breaks the feedback loop after one hop.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::marker::PhantomData;
use std::sync::Arc;

use scrub_agent::EventBatch;
use scrub_central::PartitionedExecutor;
use scrub_core::config::ScrubConfig;
use scrub_core::event::RequestId;
use scrub_core::plan::{OutputMode, QueryId};
use scrub_core::schema::SchemaRegistry;
use scrub_obs::{
    register_meta_events, should_trace, trace_threshold, AlertEngine, AlertEventKind,
    AlertProvenance, Counter, FlightEventKind, FlightRecorder, Gauge, Histogram, LedgerParts,
    LossLedger, MetaEvents, MetricsHistory, MetricsSnapshot, PlanProfile, QueryProfile, Registry,
    ScrubBatchEvent, ScrubMetricEvent, ScrubWindowEvent, SpanKind, TelemetryStore, TraceSpan,
    TraceStore,
};
use scrub_simnet::{Context, Node, NodeId, SimDuration};

use crate::harness::AgentHarness;
use crate::msg::{ScrubEnvelope, ScrubMsg, TIMER_CENTRAL_ADVANCE};

/// The centralized execution facility (one node; the paper runs a small
/// cluster — partitions model its parallelism).
pub struct CentralNode<E: ScrubEnvelope> {
    config: ScrubConfig,
    server: Option<NodeId>,
    executors: HashMap<QueryId, PartitionedExecutor>,
    /// Per-query, per-host sequence numbers already ingested.
    seen: HashMap<QueryId, HashMap<String, HashSet<u64>>>,
    /// Per-query, per-host time of the last batch heard (ms).
    last_heard: HashMap<QueryId, HashMap<String, i64>>,
    /// Events ingested across all queries (for throughput accounting).
    pub events_ingested: u64,
    /// Batches received.
    pub batches_received: u64,
    /// Batches discarded as duplicates across all queries.
    pub duplicate_batches: u64,
    /// Per-query execution profiles; retained after a query finishes so
    /// `profile <qid>` works post-hoc.
    profiles: HashMap<QueryId, QueryProfile>,
    /// Per-query `EXPLAIN ANALYZE` plan profiles, captured at query stop
    /// and retained (like `profiles`) so `explain analyze <qid>` works
    /// post-hoc. Live queries read the executor directly instead.
    plan_profiles: HashMap<QueryId, PlanProfile>,
    /// Per-query lifecycle trace trees assembled from the spans batches
    /// piggyback; retained after a query finishes, like `profiles`.
    traces: HashMap<QueryId, TraceStore>,
    /// Loss-provenance inputs central observes directly (events lost to
    /// degraded windows, hosts suspected dead); joined with the profile's
    /// tap counters to build a [`LossLedger`]. Retained post-finish.
    ledger_parts: HashMap<QueryId, LedgerParts>,
    /// Delivered events per open window per host, for aggregate-mode
    /// queries: window start → host → events. Drained at window close to
    /// attribute degraded-window losses to the hosts that fed the window.
    window_events: HashMap<QueryId, BTreeMap<i64, BTreeMap<String, u64>>>,
    /// Multi-resolution telemetry store (raw snapshot ring + mid/coarse
    /// rollup tiers with exemplar links), fed each advance tick —
    /// backing `scrubql watch`/`range` and the alert engine.
    tsdb: TelemetryStore,
    /// Precomputed trace-sampler threshold (0 = tracing disabled).
    trace_threshold: u64,
    /// Queries whose inputs are meta-events (their window closes are not
    /// re-tapped as `scrub_window`).
    meta_queries: HashSet<QueryId>,
    /// Node-level metrics.
    obs: Registry,
    m_batches: Arc<Counter>,
    m_duplicates: Arc<Counter>,
    m_events: Arc<Counter>,
    m_acks: Arc<Counter>,
    m_rows: Arc<Counter>,
    m_windows_closed: Arc<Counter>,
    m_windows_degraded: Arc<Counter>,
    m_installed: Arc<Counter>,
    m_finished: Arc<Counter>,
    m_backpressure: Arc<Counter>,
    m_ingest_latency: Arc<Histogram>,
    m_budget_shed: Arc<Counter>,
    m_groups_overflow: Arc<Counter>,
    m_retransmitted: Arc<Counter>,
    m_batch_dropped: Arc<Counter>,
    m_trace_dropped: Arc<Counter>,
    m_advance_barriers: Arc<Counter>,
    m_advances_skipped: Arc<Counter>,
    m_hosts_suspected: Arc<Gauge>,
    m_alerts_fired: Arc<Counter>,
    m_alerts_cleared: Arc<Counter>,
    m_anomalies: Arc<Counter>,
    m_snaps_ooo: Arc<Counter>,
    /// Last per-query cumulative totals folded into the node counters,
    /// so each advance adds only the delta (profiles and
    /// `ExecutorStats` are cumulative; the node metrics want fleet
    /// totals without double counting).
    fold_seen: HashMap<QueryId, FoldSeen>,
    /// Last cumulative `backpressure_stalls` folded per query
    /// (`ExecutorStats` counters are cumulative; the node metric wants
    /// deltas).
    bp_seen: HashMap<QueryId, u64>,
    /// The health plane: rule engine + anomaly baselines + bounded
    /// alert log, ticked right after each history snapshot.
    alerts: AlertEngine,
    /// Per-query lifecycle journals (data-plane half: window closes,
    /// retransmit episodes, host deaths, alert firings). Retained after
    /// a query finishes, like `profiles`.
    recorders: HashMap<QueryId, FlightRecorder>,
    /// Per-metric evidence hints for the alert engine, refreshed
    /// whenever a fold sees a positive delta: which query/host moved
    /// the metric last, and which ledger column names the cause.
    prov_hints: BTreeMap<String, AlertProvenance>,
    /// Resolved meta-event type ids (registered into the shared schema
    /// registry at construction).
    meta: MetaEvents,
    /// The embedded agent shipping Scrub's own telemetry; created on
    /// start (it needs the node's name and id).
    meta_harness: Option<AgentHarness>,
    /// Request-id source for meta-events (each tap gets a fresh id; meta
    /// queries never join on it).
    meta_rid: u64,
    _marker: PhantomData<fn(E)>,
}

/// Per-query high-water marks of cumulative figures already folded into
/// the node counters (see `CentralNode::fold_seen`).
#[derive(Debug, Clone, Copy, Default)]
struct FoldSeen {
    budget_shed: u64,
    groups_overflow: u64,
    retransmitted: u64,
    batch_dropped: u64,
    trace_dropped: u64,
    advance_barriers: u64,
    advances_skipped: u64,
}

impl<E: ScrubEnvelope> CentralNode<E> {
    /// Create a central node; `server` is learned from the first
    /// `CentralInstall` sender if not preset. The schema registry is the
    /// deployment-wide one — central registers the `scrub_batch` /
    /// `scrub_window` / `scrub_metric` meta-event types into it
    /// (idempotently) so ScrubQL queries over Scrub's own telemetry
    /// validate.
    pub fn new(config: ScrubConfig, registry: Arc<SchemaRegistry>) -> Self {
        let meta = register_meta_events(&registry).expect("meta-event schemas register cleanly");
        let obs = Registry::new();
        let m_batches = obs.counter("central.batches_received");
        let m_duplicates = obs.counter("central.batches_duplicate");
        let m_events = obs.counter("central.events_ingested");
        let m_acks = obs.counter("central.acks_sent");
        let m_rows = obs.counter("central.rows_emitted");
        let m_windows_closed = obs.counter("central.windows_closed");
        let m_windows_degraded = obs.counter("central.windows_degraded");
        let m_installed = obs.counter("central.queries_installed");
        let m_finished = obs.counter("central.queries_finished");
        let m_backpressure = obs.counter("central.ingest_backpressure");
        let m_ingest_latency = obs.histogram("central.ingest_latency_ms");
        let m_budget_shed = obs.counter("overload.budget_shed_events");
        let m_groups_overflow = obs.counter("overload.groups_overflow");
        let m_retransmitted = obs.counter("agent.retransmitted_batches");
        let m_batch_dropped = obs.counter("ledger.batch_dropped");
        let m_trace_dropped = obs.counter("trace.dropped_spans");
        let m_advance_barriers = obs.counter("executor.advance_barriers");
        let m_advances_skipped = obs.counter("executor.advances_skipped");
        let m_hosts_suspected = obs.gauge("central.hosts_suspected");
        let m_alerts_fired = obs.counter("alert.fired");
        let m_alerts_cleared = obs.counter("alert.cleared");
        let m_anomalies = obs.counter("alert.anomalies");
        let m_snaps_ooo = obs.counter("obs.snapshots_out_of_order");
        let tsdb = TelemetryStore::from_config(&config);
        let trace_thresh = trace_threshold(config.trace_sample_rate);
        let alerts = if config.alerts_enabled {
            AlertEngine::from_config(&config)
        } else {
            AlertEngine::new(config.alert_log_cap)
        };
        CentralNode {
            config,
            server: None,
            executors: HashMap::new(),
            seen: HashMap::new(),
            last_heard: HashMap::new(),
            events_ingested: 0,
            batches_received: 0,
            duplicate_batches: 0,
            profiles: HashMap::new(),
            plan_profiles: HashMap::new(),
            traces: HashMap::new(),
            ledger_parts: HashMap::new(),
            window_events: HashMap::new(),
            tsdb,
            trace_threshold: trace_thresh,
            meta_queries: HashSet::new(),
            obs,
            m_batches,
            m_duplicates,
            m_events,
            m_acks,
            m_rows,
            m_windows_closed,
            m_windows_degraded,
            m_installed,
            m_finished,
            m_backpressure,
            m_ingest_latency,
            m_budget_shed,
            m_groups_overflow,
            m_retransmitted,
            m_batch_dropped,
            m_trace_dropped,
            m_advance_barriers,
            m_advances_skipped,
            m_hosts_suspected,
            m_alerts_fired,
            m_alerts_cleared,
            m_anomalies,
            m_snaps_ooo,
            fold_seen: HashMap::new(),
            bp_seen: HashMap::new(),
            alerts,
            recorders: HashMap::new(),
            prov_hints: BTreeMap::new(),
            meta,
            meta_harness: None,
            meta_rid: 0,
            _marker: PhantomData,
        }
    }

    /// Number of active queries.
    pub fn active_queries(&self) -> usize {
        self.executors.len()
    }

    /// Execution profile of a query (live or finished).
    pub fn profile(&self, qid: QueryId) -> Option<&QueryProfile> {
        self.profiles.get(&qid)
    }

    /// `EXPLAIN ANALYZE` plan profile of a query: assembled fresh from the
    /// executor while the query runs (on the threaded backend the figures
    /// lag the live state by at most one advance tick), and served from
    /// the retained copy captured at stop afterwards.
    pub fn plan_profile(&self, qid: QueryId) -> Option<PlanProfile> {
        match self.executors.get(&qid) {
            Some(exec) => Some(exec.plan_profile()),
            None => self.plan_profiles.get(&qid).cloned(),
        }
    }

    /// Export a finished query's per-operator counters and worst
    /// estimate-error gauge into the node registry, so `scrubql stats` /
    /// `render_text` surface the plan audit alongside the other metrics.
    /// Counter values are integer-exact; the nondeterministic wall-clock
    /// `.ns` counters carry an `_ns` suffix so deterministic consumers
    /// (golden tests) can mask them.
    fn export_plan_metrics(&self, profile: &PlanProfile) {
        let q = profile.query_id;
        for op in &profile.ops {
            let label = op.metric_label();
            self.obs
                .counter(&format!("plan.q{q}.{label}.rows_in"))
                .add(op.rows_in);
            self.obs
                .counter(&format!("plan.q{q}.{label}.rows_out"))
                .add(op.rows_out);
            self.obs
                .counter(&format!("plan.q{q}.{label}.op_ns"))
                .add(op.ns);
        }
        // worst per-operator |est − actual| selectivity error, in basis
        // points (the registry's gauges are integers)
        self.obs
            .gauge(&format!("plan.q{q}.estimate_error_bp"))
            .set((profile.max_estimate_error() * 10_000.0).round() as i64);
    }

    /// Node-level metrics snapshot at sim time `at_ms`.
    pub fn metrics(&self, at_ms: i64) -> MetricsSnapshot {
        self.obs.snapshot(at_ms)
    }

    /// Lifecycle trace trees of a query (live or finished); `None` when
    /// tracing never recorded a span for it.
    pub fn trace_store(&self, qid: QueryId) -> Option<&TraceStore> {
        self.traces.get(&qid)
    }

    /// Build the loss ledger of a query from its profile and the
    /// centrally-observed loss parts. `None` for unknown queries.
    pub fn ledger(&self, qid: QueryId) -> Option<LossLedger> {
        let profile = self.profiles.get(&qid)?;
        let parts = self.ledger_parts.get(&qid).cloned().unwrap_or_default();
        Some(LossLedger::build(profile, &parts))
    }

    /// Ring of periodic node-metrics snapshots (oldest first) — the
    /// telemetry store's raw tier.
    pub fn history(&self) -> &MetricsHistory {
        self.tsdb.raw()
    }

    /// The multi-resolution telemetry store: raw ring plus mid/coarse
    /// rollup tiers with exemplar trace links — the data behind
    /// `scrubql watch`/`range`.
    pub fn telemetry(&self) -> &TelemetryStore {
        &self.tsdb
    }

    /// The health plane: alert rules, hysteresis states, anomaly
    /// baselines and the bounded alert log.
    pub fn alert_engine(&self) -> &AlertEngine {
        &self.alerts
    }

    /// The data-plane half of a query's flight recorder (window closes,
    /// retransmit episodes, host deaths, alert firings); retained after
    /// the query finishes. `None` for unknown queries.
    pub fn flight_recorder(&self, qid: QueryId) -> Option<&FlightRecorder> {
        self.recorders.get(&qid)
    }

    /// Tap-side counters of the embedded meta agent (how much of Scrub's
    /// own telemetry was collected/shipped).
    pub fn meta_agent_stats(&self) -> Option<scrub_agent::StatsSnapshot> {
        self.meta_harness
            .as_ref()
            .map(|h| h.agent().stats().snapshot())
    }

    fn advance_interval(&self) -> SimDuration {
        // advance watermarks a few times per window
        SimDuration::from_ms((self.config.default_window_ms / 4).max(100))
    }

    /// Hosts that reported at least once for `qid` but have been silent
    /// for `host_grace_ms` while some peer kept reporting. The reference
    /// point is the most recent arrival (not the wall clock), so a query
    /// whose *every* host went quiet — e.g. after `StopQuery` during the
    /// drain — suspects nobody.
    fn suspect_hosts(&self, qid: QueryId) -> HashSet<String> {
        let Some(heard) = self.last_heard.get(&qid) else {
            return HashSet::new();
        };
        let Some(&newest) = heard.values().max() else {
            return HashSet::new();
        };
        let cutoff = newest - self.config.host_grace_ms;
        heard
            .iter()
            .filter(|(_, &at)| at < cutoff)
            .map(|(h, _)| h.clone())
            .collect()
    }

    fn refresh_dead_hosts(&mut self, now_ms: i64) {
        let mut qids: Vec<QueryId> = self.executors.keys().copied().collect();
        qids.sort();
        let mut union: BTreeSet<String> = BTreeSet::new();
        let mut first_hint: Option<AlertProvenance> = None;
        for qid in qids {
            let dead = self.suspect_hosts(qid);
            if !dead.is_empty() || self.ledger_parts.contains_key(&qid) {
                self.ledger_parts.entry(qid).or_default().dead_hosts =
                    dead.iter().cloned().collect();
            }
            if let Some(exec) = self.executors.get_mut(&qid) {
                if *exec.dead_hosts() != dead {
                    // journal hosts crossing into suspected-dead for
                    // this query (qids are sorted, so entry order is
                    // deterministic)
                    let mut newly: Vec<&String> = dead
                        .iter()
                        .filter(|h| !exec.dead_hosts().contains(*h))
                        .collect();
                    newly.sort();
                    if let Some(rec) = self.recorders.get_mut(&qid) {
                        for host in newly {
                            rec.record(
                                now_ms,
                                FlightEventKind::HostDead,
                                format!("host={host} silent past grace"),
                                AlertProvenance {
                                    query_id: Some(qid.0),
                                    host: Some(host.clone()),
                                    ledger_column: Some("host_dead".to_string()),
                                    trace_rid: None,
                                },
                            );
                        }
                    }
                    exec.set_dead_hosts(dead.clone());
                }
            }
            if !dead.is_empty() && first_hint.is_none() {
                let host = dead.iter().min().cloned();
                first_hint = Some(AlertProvenance {
                    query_id: Some(qid.0),
                    host,
                    ledger_column: Some("host_dead".to_string()),
                    trace_rid: None,
                });
            }
            union.extend(dead);
        }
        self.m_hosts_suspected.set(union.len() as i64);
        if let Some(hint) = first_hint {
            self.prov_hints
                .insert("central.hosts_suspected".to_string(), hint);
        }
    }

    /// Fold a fresh batch's piggybacked spans into the query's trace
    /// store and append the central-side hops (ingest, partition route,
    /// window assignment) for every traced request the batch carries.
    /// Also accrues per-window delivered-event counts for aggregate-mode
    /// queries so degraded-window losses can be attributed per host.
    fn observe_ingest(&mut self, batch: &mut EventBatch, now_ms: i64) {
        let qid = batch.query_id;
        let Some(exec) = self.executors.get(&qid) else {
            // Late batch for a finished query: keep the agent-side spans
            // so the trace still shows how far the events got.
            if self.trace_threshold != 0 && !batch.spans.is_empty() {
                self.traces
                    .entry(qid)
                    .or_default()
                    .ingest_spans(std::mem::take(&mut batch.spans), &batch.host);
            }
            return;
        };
        let plan = exec.plan();
        let (window, slide) = (plan.window_ms.max(1), plan.slide_ms.max(1));
        let aggregate = matches!(plan.mode, OutputMode::Aggregate { .. });
        if aggregate {
            // count this batch's events into every window that covers them
            let mut counts: BTreeMap<i64, u64> = BTreeMap::new();
            batch.payload.for_each_meta(|_rid, ts| {
                for k in ((ts - window).div_euclid(slide) + 1)..=ts.div_euclid(slide) {
                    *counts.entry(k * slide).or_default() += 1;
                }
            });
            let wmap = self.window_events.entry(qid).or_default();
            for (w, n) in counts {
                *wmap
                    .entry(w)
                    .or_default()
                    .entry(batch.host.clone())
                    .or_default() += n;
            }
        }
        if self.trace_threshold == 0 {
            return;
        }
        let store = self.traces.entry(qid).or_default();
        store.ingest_spans(std::mem::take(&mut batch.spans), &batch.host);
        let mut done: HashSet<u64> = HashSet::new();
        let threshold = self.trace_threshold;
        batch.payload.for_each_meta(|rid, ts| {
            if !should_trace(rid, threshold) {
                return;
            }
            if done.insert(rid) {
                store.add(TraceSpan {
                    request_id: rid,
                    kind: SpanKind::Ingest,
                    at_ms: now_ms,
                    host: "central".to_string(),
                    detail: 0,
                });
                store.add(TraceSpan {
                    request_id: rid,
                    kind: SpanKind::Route,
                    at_ms: now_ms,
                    host: "central".to_string(),
                    detail: exec.route_partition(rid) as i64,
                });
            }
            if aggregate {
                for k in ((ts - window).div_euclid(slide) + 1)..=ts.div_euclid(slide) {
                    store.assign_window(rid, k * slide, now_ms, "central");
                }
            }
        });
    }

    /// Drain one executor's window closes into the profile, node metrics
    /// and (for application queries) `scrub_window` meta-events.
    fn observe_advance(&mut self, ctx: &mut Context<'_, E>, qid: QueryId, rows_emitted: u64) {
        let Some(exec) = self.executors.get_mut(&qid) else {
            return;
        };
        let closes = exec.take_window_closes();
        let stats = exec.stats();
        let open = stats.open_windows as u64;
        let held = stats.join_rows_held;
        let overflow_total = stats.groups_overflow;
        let is_meta_query = self.meta_queries.contains(&qid);
        let mut budget_shed_total = 0u64;
        let mut retransmitted_total = 0u64;
        let mut batch_dropped_total = 0u64;
        // most-implicated host per figure: largest cumulative
        // contribution, first name on ties (hosts is a BTreeMap, so the
        // scan order — and therefore the pick — is deterministic)
        let mut retransmit_host: Option<(u64, String)> = None;
        let mut dropped_host: Option<(u64, String)> = None;
        let mut shed_host: Option<(u64, String)> = None;
        if let Some(profile) = self.profiles.get_mut(&qid) {
            for c in &closes {
                profile.observe_windows_closed(1, c.degraded as u64);
            }
            profile.observe_state(open, held);
            profile.observe_rows(rows_emitted);
            budget_shed_total = profile.total_budget_shed();
            for (host, hp) in &profile.hosts {
                retransmitted_total += hp.retransmitted_batches;
                if hp.retransmitted_batches > retransmit_host.as_ref().map_or(0, |(n, _)| *n) {
                    retransmit_host = Some((hp.retransmitted_batches, host.clone()));
                }
                let gap = hp.selected.saturating_sub(hp.events);
                batch_dropped_total += gap;
                if gap > dropped_host.as_ref().map_or(0, |(n, _)| *n) {
                    dropped_host = Some((gap, host.clone()));
                }
                if hp.budget_shed > shed_host.as_ref().map_or(0, |(n, _)| *n) {
                    shed_host = Some((hp.budget_shed, host.clone()));
                }
            }
        }
        let trace_dropped_total = self.traces.get(&qid).map_or(0, |s| s.dropped_spans);
        // Node-level counters advance by the per-query deltas so
        // `scrubql stats` shows fleet totals without double counting.
        // All of these are observed node-side (profiles, trace stores),
        // so the deltas are per-tick partition-invariant and safe for
        // alert rules. A positive delta also refreshes the provenance
        // hint for the metric: which query/host moved it last.
        let seen = self.fold_seen.entry(qid).or_default();
        let d_shed = budget_shed_total.saturating_sub(seen.budget_shed);
        let d_retransmit = retransmitted_total.saturating_sub(seen.retransmitted);
        let d_dropped = batch_dropped_total.saturating_sub(seen.batch_dropped);
        self.m_budget_shed.add(d_shed);
        self.m_retransmitted.add(d_retransmit);
        self.m_batch_dropped.add(d_dropped);
        self.m_trace_dropped
            .add(trace_dropped_total.saturating_sub(seen.trace_dropped));
        self.m_advance_barriers
            .add(stats.advance_barriers.saturating_sub(seen.advance_barriers));
        self.m_advances_skipped
            .add(stats.advances_skipped.saturating_sub(seen.advances_skipped));
        // groups_overflow comes from inside the executor, where the
        // inline backend accrues mid-window but the threaded backend's
        // snapshot refreshes only at advance barriers. Both agree at
        // window-close ticks, so the fold is gated on closes — that is
        // what keeps alert firing ticks identical at 1 vs N partitions.
        let mut d_overflow = 0u64;
        if !closes.is_empty() {
            d_overflow = overflow_total.saturating_sub(seen.groups_overflow);
            self.m_groups_overflow.add(d_overflow);
            seen.groups_overflow = overflow_total.max(seen.groups_overflow);
        }
        seen.budget_shed = budget_shed_total.max(seen.budget_shed);
        seen.retransmitted = retransmitted_total.max(seen.retransmitted);
        seen.batch_dropped = batch_dropped_total.max(seen.batch_dropped);
        seen.trace_dropped = trace_dropped_total.max(seen.trace_dropped);
        seen.advance_barriers = stats.advance_barriers.max(seen.advance_barriers);
        seen.advances_skipped = stats.advances_skipped.max(seen.advances_skipped);
        let hint = |host: Option<(u64, String)>, column: Option<&str>| AlertProvenance {
            query_id: Some(qid.0),
            host: host.map(|(_, h)| h),
            ledger_column: column.map(str::to_string),
            trace_rid: None,
        };
        if d_retransmit > 0 {
            self.prov_hints.insert(
                "agent.retransmitted_batches".to_string(),
                hint(retransmit_host, None),
            );
        }
        if d_dropped > 0 {
            self.prov_hints.insert(
                "ledger.batch_dropped".to_string(),
                hint(dropped_host, Some("batch_dropped")),
            );
        }
        if d_shed > 0 {
            self.prov_hints.insert(
                "overload.budget_shed_events".to_string(),
                hint(shed_host, Some("budget_shed")),
            );
        }
        if d_overflow > 0 {
            self.prov_hints.insert(
                "overload.groups_overflow".to_string(),
                hint(None, Some("groups_overflow")),
            );
        }
        self.m_rows.add(rows_emitted);
        self.m_windows_closed.add(closes.len() as u64);
        self.m_windows_degraded
            .add(closes.iter().filter(|c| c.degraded).count() as u64);
        for c in &closes {
            // Windows close in start order; drop the per-window delivery
            // counts up to this close, folding degraded windows' counts
            // into the ledger so the loss is attributed per host.
            if let Some(wmap) = self.window_events.get_mut(&qid) {
                let later = wmap.split_off(&(c.window_start_ms + 1));
                let closed = std::mem::replace(wmap, later);
                if c.degraded {
                    if let Some(hosts) = closed.get(&c.window_start_ms) {
                        let parts = self.ledger_parts.entry(qid).or_default();
                        for (host, n) in hosts {
                            *parts.degraded_events.entry(host.clone()).or_default() += n;
                        }
                    }
                }
            }
            if self.trace_threshold != 0 {
                if let Some(store) = self.traces.get_mut(&qid) {
                    store.close_window(c.window_start_ms, ctx.now.as_ms(), "central", c.degraded);
                }
            }
            if let Some(rec) = self.recorders.get_mut(&qid) {
                rec.record(
                    ctx.now.as_ms(),
                    if c.degraded {
                        FlightEventKind::WindowDegrade
                    } else {
                        FlightEventKind::WindowClose
                    },
                    format!("start={} rows={}", c.window_start_ms, c.rows),
                    AlertProvenance {
                        query_id: Some(qid.0),
                        ..Default::default()
                    },
                );
            }
        }
        // Continuously enforce the provenance invariant — every tapped
        // event is delivered or attributed to exactly one loss cause
        // (LossLedger::build debug-asserts reconciliation internally).
        #[cfg(debug_assertions)]
        if let Some(profile) = self.profiles.get(&qid) {
            let parts = self.ledger_parts.get(&qid).cloned().unwrap_or_default();
            let ledger = LossLedger::build(profile, &parts);
            debug_assert!(
                ledger.reconciles(),
                "loss ledger fails to reconcile for query {}",
                qid.0
            );
        }
        if let Some(harness) = &self.meta_harness {
            let now_ms = ctx.now.as_ms();
            for c in closes {
                // meta queries' own closes are not re-tapped: the
                // telemetry describes the application pipeline
                if is_meta_query {
                    continue;
                }
                self.meta_rid += 1;
                harness.agent().log_typed(
                    self.meta.window,
                    RequestId(self.meta_rid),
                    now_ms,
                    || ScrubWindowEvent {
                        query: qid.0 as i64,
                        window_start: c.window_start_ms,
                        rows: c.rows as i64,
                        degraded: c.degraded as i64,
                    },
                );
            }
        }
    }

    fn flush_rows(&mut self, ctx: &mut Context<'_, E>, now_ms: i64) {
        // sorted so cross-query side effects (row sends, provenance
        // hints) happen in a deterministic order
        let mut qids: Vec<QueryId> = self.executors.keys().copied().collect();
        qids.sort();
        for qid in qids {
            let Some(exec) = self.executors.get_mut(&qid) else {
                continue;
            };
            let rows = exec.advance(now_ms);
            let n = rows.len() as u64;
            if let (Some(server), false) = (self.server, rows.is_empty()) {
                ctx.send(server, E::wrap(ScrubMsg::Rows { rows }));
            }
            self.observe_advance(ctx, qid, n);
        }
        // threaded-backend health: per-partition worker clocks summed
        // across queries. Wall-clock figures — the `_ns` suffix marks
        // them nondeterministic so golden consumers mask them. Empty
        // (no gauges ever created) on the inline backend.
        let mut per_part: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
        for exec in self.executors.values() {
            for w in exec.stats().workers {
                let slot = per_part.entry(w.partition).or_default();
                slot.0 += w.busy_ns;
                slot.1 += w.idle_ns;
            }
        }
        for (p, (busy, idle)) in per_part {
            self.obs
                .gauge(&format!("executor.p{p}.busy_ns"))
                .set(busy.min(i64::MAX as u64) as i64);
            self.obs
                .gauge(&format!("executor.p{p}.idle_ns"))
                .set(idle.min(i64::MAX as u64) as i64);
        }
    }

    /// Record the periodic node snapshot into the telemetry store and
    /// stream it as `scrub_metric` meta-events.
    ///
    /// Rollup exemplars are resolved lazily — the store calls back only
    /// when a mid/coarse bucket seals and only for metrics that moved
    /// up — with the same deterministic scan alert provenance uses: the
    /// smallest traced rid (of the smallest query id) with a span in
    /// the max-delta raw interval. Out-of-order snapshots are dropped
    /// by the store and counted (`obs.snapshots_out_of_order`).
    ///
    /// The meta-stream tap mirrors the `scrub_batch` tap: one
    /// `scrub_metric` event per metric per tick through the embedded
    /// agent (a relaxed atomic load each while no meta query is live).
    /// Only [`scrub_obs::partition_invariant`] metrics are streamed —
    /// `_ns` wall-clock gauges, `central.ingest_backpressure` and the
    /// `executor.*` scheduling counters are skipped — so meta-query
    /// results keep the determinism contract.
    fn record_telemetry(&mut self, now_ms: i64) {
        let snap = self.obs.snapshot(now_ms);
        let prev = self.tsdb.raw().latest().cloned();
        let traces = &self.traces;
        // many metrics share a max-delta interval; resolve each once
        let mut cache: BTreeMap<(i64, i64), Option<u64>> = BTreeMap::new();
        let accepted = self
            .tsdb
            .record_with(snap.clone(), |_metric, from_ms, to_ms| {
                *cache.entry((from_ms, to_ms)).or_insert_with(|| {
                    let mut qids: Vec<QueryId> = traces.keys().copied().collect();
                    qids.sort();
                    qids.iter()
                        .find_map(|qid| traces[qid].first_rid_in(from_ms, to_ms))
                })
            });
        if !accepted {
            self.m_snaps_ooo.inc();
            return;
        }
        let (Some(prev), Some(harness)) = (prev, &self.meta_harness) else {
            // no delta yet (first snapshot) or not started: nothing to
            // stream — the event stream carries exactly the raw tier's
            // delta series
            return;
        };
        for (name, &v) in &snap.counters {
            if !scrub_obs::partition_invariant(name) {
                continue;
            }
            let delta = v as i64 - prev.counters.get(name).map(|&p| p as i64).unwrap_or(0);
            self.meta_rid += 1;
            harness
                .agent()
                .log_typed(self.meta.metric, RequestId(self.meta_rid), now_ms, || {
                    ScrubMetricEvent {
                        metric: name.clone(),
                        kind: "counter".into(),
                        delta,
                        value: v as i64,
                    }
                });
        }
        for (name, &v) in &snap.gauges {
            if !scrub_obs::partition_invariant(name) {
                continue;
            }
            let delta = v - prev.gauges.get(name).copied().unwrap_or(0);
            self.meta_rid += 1;
            harness
                .agent()
                .log_typed(self.meta.metric, RequestId(self.meta_rid), now_ms, || {
                    ScrubMetricEvent {
                        metric: name.clone(),
                        kind: "gauge".into(),
                        delta,
                        value: v,
                    }
                });
        }
    }

    /// Tick the alert engine against the just-recorded telemetry (read
    /// at raw resolution): attach provenance hints (enriched with a
    /// sampled trace rid where one carries a relevant span), count the
    /// events, and journal firings into the implicated query's flight
    /// recorder.
    fn evaluate_alerts(&mut self, now_ms: i64) {
        if !self.config.alerts_enabled {
            return;
        }
        let hints = &self.prov_hints;
        let traces = &self.traces;
        let events = self.alerts.tick(&self.tsdb, |rule, _value| {
            let mut prov = hints.get(&rule.metric).cloned().unwrap_or_default();
            if prov.trace_rid.is_none() && rule.metric == "agent.retransmitted_batches" {
                if let Some(store) = prov.query_id.and_then(|q| traces.get(&QueryId(q))) {
                    // smallest sampled rid that carries a retransmit
                    // hop (request_ids iterates a BTreeMap)
                    prov.trace_rid = store.request_ids().find(|&rid| {
                        store.trace(rid).is_some_and(|spans| {
                            spans.iter().any(|s| s.kind == SpanKind::Retransmit)
                        })
                    });
                }
            }
            prov
        });
        for ev in &events {
            let kind = match ev.kind {
                AlertEventKind::Fired => {
                    self.m_alerts_fired.inc();
                    FlightEventKind::AlertFired
                }
                AlertEventKind::Cleared => {
                    self.m_alerts_cleared.inc();
                    FlightEventKind::AlertCleared
                }
                AlertEventKind::Anomaly => {
                    self.m_anomalies.inc();
                    continue;
                }
            };
            if let Some(rec) = ev
                .provenance
                .query_id
                .and_then(|q| self.recorders.get_mut(&QueryId(q)))
            {
                rec.record(
                    now_ms,
                    kind,
                    format!("rule={} {}={}", ev.rule, ev.metric, ev.value),
                    ev.provenance.clone(),
                );
            }
        }
    }
}

impl<E: ScrubEnvelope> Node<E> for CentralNode<E> {
    fn on_start(&mut self, ctx: &mut Context<'_, E>) {
        ctx.set_timer(self.advance_interval(), TIMER_CENTRAL_ADVANCE);
        // The embedded meta agent survives central restarts (pending
        // retransmits and all); it is only built on first start.
        if self.meta_harness.is_none() {
            self.meta_harness = Some(AgentHarness::new(
                ctx.self_meta().name.clone(),
                self.config.clone(),
                ctx.self_id,
            ));
        }
        if let Some(h) = &mut self.meta_harness {
            h.start(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, E>, from: NodeId, msg: E) {
        let Ok(scrub) = msg.open() else {
            return; // not a scrub message; central ignores app traffic
        };
        match scrub {
            // Control traffic for the embedded meta agent: central is a
            // *host* for queries over Scrub's own telemetry.
            m @ (ScrubMsg::InstallQuery { .. }
            | ScrubMsg::StopQuery { .. }
            | ScrubMsg::BatchAck { .. }) => {
                if let Some(h) = &mut self.meta_harness {
                    let _ = h.on_message(ctx, from, E::wrap(m));
                }
            }
            ScrubMsg::CentralInstall { plan } => {
                self.server = Some(from);
                let qid = plan.query_id;
                if plan.inputs.iter().any(|i| self.meta.contains(i.type_id)) {
                    self.meta_queries.insert(qid);
                }
                let exec = PartitionedExecutor::new(
                    plan,
                    self.config.window_grace_ms,
                    self.config.central_partitions,
                );
                self.executors.insert(qid, exec);
                self.profiles.insert(qid, QueryProfile::new(qid.0));
                self.recorders
                    .entry(qid)
                    .or_insert_with(|| FlightRecorder::new(qid.0, self.config.flight_recorder_cap));
                self.m_installed.inc();
            }
            ScrubMsg::CentralStop { query_id } => {
                self.seen.remove(&query_id);
                self.last_heard.remove(&query_id);
                self.window_events.remove(&query_id);
                if let Some(mut exec) = self.executors.remove(&query_id) {
                    let (rows, summary) = exec.finish();
                    let n = rows.len() as u64;
                    // capture the final plan profile (post-finish, so the
                    // close/render counters are complete) before the
                    // executor drops, then record the final closes
                    let plan_profile = exec.plan_profile();
                    self.export_plan_metrics(&plan_profile);
                    self.plan_profiles.insert(query_id, plan_profile);
                    self.executors.insert(query_id, exec);
                    self.observe_advance(ctx, query_id, n);
                    self.executors.remove(&query_id);
                    self.meta_queries.remove(&query_id);
                    self.fold_seen.remove(&query_id);
                    self.bp_seen.remove(&query_id);
                    self.m_finished.inc();
                    if let Some(server) = self.server {
                        if !rows.is_empty() {
                            ctx.send(server, E::wrap(ScrubMsg::Rows { rows }));
                        }
                        ctx.send(server, E::wrap(ScrubMsg::Summary { summary }));
                    }
                }
            }
            ScrubMsg::Batch(mut batch) => {
                self.batches_received += 1;
                self.m_batches.inc();
                // Ack everything — duplicates and batches for unknown
                // (already-finished) queries too — so the sender stops
                // retransmitting even when the original ack was lost.
                ctx.send(
                    from,
                    E::wrap(ScrubMsg::BatchAck {
                        query_id: batch.query_id,
                        seq: batch.seq,
                    }),
                );
                self.m_acks.inc();
                if let Some(p) = self.profiles.get_mut(&batch.query_id) {
                    p.observe_ack();
                }
                let fresh = self
                    .seen
                    .entry(batch.query_id)
                    .or_default()
                    .entry(batch.host.clone())
                    .or_default()
                    .insert(batch.seq);
                let now_ms = ctx.now.as_ms();
                // Tap the meta-event for every arrival (dupes included —
                // they are part of the transport's behavior), except for
                // batches that themselves carry meta-events.
                if let (Some(harness), false) =
                    (&self.meta_harness, self.meta.contains(batch.type_id))
                {
                    self.meta_rid += 1;
                    let (query, host, events, bytes, retransmit, duplicate) = (
                        batch.query_id.0 as i64,
                        batch.host.clone(),
                        batch.len() as i64,
                        batch.approx_bytes() as i64,
                        (batch.attempt > 0) as i64,
                        !fresh as i64,
                    );
                    harness.agent().log_typed(
                        self.meta.batch,
                        RequestId(self.meta_rid),
                        now_ms,
                        || ScrubBatchEvent {
                            query,
                            host,
                            events,
                            bytes,
                            retransmit,
                            duplicate,
                        },
                    );
                }
                if batch.attempt > 0 {
                    // journal the retransmit episode; consecutive
                    // resends from the same host coalesce into one run
                    if let Some(rec) = self.recorders.get_mut(&batch.query_id) {
                        rec.record_coalesced(
                            now_ms,
                            FlightEventKind::Retransmit,
                            format!("host={}", batch.host),
                            AlertProvenance {
                                query_id: Some(batch.query_id.0),
                                host: Some(batch.host.clone()),
                                ledger_column: None,
                                trace_rid: None,
                            },
                        );
                    }
                }
                if !fresh {
                    self.duplicate_batches += 1;
                    self.m_duplicates.inc();
                    if let Some(p) = self.profiles.get_mut(&batch.query_id) {
                        p.observe_duplicate(&batch.host, batch.len() as u64);
                    }
                    if let Some(exec) = self.executors.get_mut(&batch.query_id) {
                        exec.note_duplicate();
                    }
                    return;
                }
                self.last_heard
                    .entry(batch.query_id)
                    .or_default()
                    .insert(batch.host.clone(), now_ms);
                self.events_ingested += batch.len() as u64;
                self.m_events.add(batch.len() as u64);
                let latency = batch.payload.ts_range().map(|(_, newest)| now_ms - newest);
                if let Some(lat) = latency {
                    self.m_ingest_latency.record(lat);
                }
                if let Some(p) = self.profiles.get_mut(&batch.query_id) {
                    p.observe_batch(
                        &batch.host,
                        batch.type_id.0,
                        batch.approx_bytes() as u64,
                        batch.len() as u64,
                        batch.matched,
                        batch.sampled,
                        batch.shed,
                        batch.budget_shed,
                        batch.attempt > 0,
                        latency,
                    );
                }
                self.observe_ingest(&mut batch, now_ms);
                if let Some(exec) = self.executors.get_mut(&batch.query_id) {
                    let qid = batch.query_id;
                    exec.ingest(batch);
                    // Surface parallel-ingest stalls instead of absorbing
                    // them silently: the counter feeds `scrubql stats`, the
                    // profile feeds `profile <qid>`.
                    let total = exec.stats().backpressure_stalls;
                    let seen = self.bp_seen.entry(qid).or_insert(0);
                    let stalls = total.saturating_sub(*seen);
                    *seen = total.max(*seen);
                    if stalls > 0 {
                        self.m_backpressure.add(stalls);
                        if let Some(p) = self.profiles.get_mut(&qid) {
                            p.observe_backpressure(stalls);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, E>, timer: u64) {
        if let Some(mut h) = self.meta_harness.take() {
            let consumed = h.on_timer(ctx, timer);
            self.meta_harness = Some(h);
            if consumed {
                return;
            }
        }
        if timer == TIMER_CENTRAL_ADVANCE {
            let now_ms = ctx.now.as_ms();
            self.refresh_dead_hosts(now_ms);
            self.flush_rows(ctx, now_ms);
            self.record_telemetry(now_ms);
            self.evaluate_alerts(now_ms);
            ctx.set_timer(self.advance_interval(), TIMER_CENTRAL_ADVANCE);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
