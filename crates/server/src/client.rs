//! Typed client API: [`ScrubClient`] + [`QueryHandle`].
//!
//! `ScrubClient::submit` returns `ScrubResult<QueryHandle>` — rejections
//! come back as [`ScrubError::Rejected`] with the server's reason — and
//! the handle knows how to fetch state, rows, the per-query execution
//! [`QueryProfile`] and the `EXPLAIN ANALYZE` [`PlanProfile`] from
//! whichever ScrubCentral node runs the query.
//!
//! Everything is driven through the deterministic simulation, so all
//! accessors take the [`Sim`] explicitly; the client and handle
//! themselves are plain `Copy` values that hold node ids only.

use scrub_central::{QuerySummary, ResultRow};
use scrub_core::error::{ScrubError, ScrubResult};
use scrub_core::plan::QueryId;
use scrub_obs::{merge_timelines, FlightEvent, LossLedger, PlanProfile, QueryProfile, TraceStore};
use scrub_simnet::{NodeId, Sim};

use crate::central_node::CentralNode;
use crate::deploy::ScrubDeployment;
use crate::msg::{ScrubEnvelope, ScrubMsg};
use crate::server_node::{QueryRecord, QueryServerNode, QueryState};

/// A troubleshooter's connection to a deployed Scrub instance.
///
/// ```ignore
/// let client = ScrubClient::new(&deployment);
/// let q = client.submit(&mut sim, "select COUNT(*) from bid @[all] window 1 s duration 10 s")?;
/// sim.run_until(SimTime::from_secs(30));
/// let rows = q.results(&sim);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ScrubClient {
    d: ScrubDeployment,
}

impl ScrubClient {
    /// Connect to a deployment (as returned by
    /// [`crate::deploy::deploy_server`]).
    pub fn new(d: &ScrubDeployment) -> Self {
        ScrubClient { d: *d }
    }

    /// The deployment this client talks to.
    pub fn deployment(&self) -> ScrubDeployment {
        self.d
    }

    /// Submit a ScrubQL query and run the simulation just far enough for
    /// the server to admit or reject it. Rejections (lex/parse/validate/
    /// target errors) surface as [`ScrubError::Rejected`] carrying the
    /// server's reason, so interactive callers can print a diagnostic
    /// instead of aborting.
    pub fn submit<E: ScrubEnvelope>(
        &self,
        sim: &mut Sim<E>,
        src: &str,
    ) -> ScrubResult<QueryHandle> {
        let observe = |sim: &Sim<E>| {
            let node = sim
                .node_as::<QueryServerNode<E>>(self.d.server)
                .expect("server node");
            (node.peek_next_qid(), node.rejected.len())
        };
        let (next, rejected_before) = observe(sim);
        sim.inject(
            self.d.server,
            self.d.server,
            E::wrap(ScrubMsg::Submit {
                src: src.to_string(),
            }),
        );
        // Step until the submission is processed so sequential submissions
        // get sequential ids and rejections map to this source text.
        for _ in 0..100_000 {
            let (qid_now, rejected_now) = observe(sim);
            if rejected_now > rejected_before {
                let reason = self
                    .rejections(sim)
                    .last()
                    .map(|(_, r)| r.clone())
                    .unwrap_or_else(|| "unknown".into());
                return Err(ScrubError::Rejected(reason));
            }
            if qid_now != next {
                return Ok(QueryHandle {
                    d: self.d,
                    qid: QueryId(next),
                });
            }
            if !sim.step() {
                break;
            }
        }
        Err(ScrubError::Rejected(
            "submission was never processed (simulation exhausted)".into(),
        ))
    }

    /// Rejection reasons recorded by the server, in submission order, as
    /// `(source, reason)` pairs.
    pub fn rejections<'a, E: ScrubEnvelope>(&self, sim: &'a Sim<E>) -> &'a [(String, String)] {
        &sim.node_as::<QueryServerNode<E>>(self.d.server)
            .expect("server node")
            .rejected
    }
}

/// A handle to one accepted query: fetch lifecycle state, result rows,
/// the end-of-query summary, and the per-query execution profile, or
/// stop the query early. `Copy` — hand it around freely.
#[derive(Debug, Clone, Copy)]
pub struct QueryHandle {
    d: ScrubDeployment,
    qid: QueryId,
}

impl QueryHandle {
    /// Rehydrate a handle from a raw query id (e.g. one printed earlier
    /// by an interactive shell).
    pub fn from_id(d: &ScrubDeployment, qid: QueryId) -> Self {
        QueryHandle { d: *d, qid }
    }

    /// The server-assigned query id.
    pub fn id(&self) -> QueryId {
        self.qid
    }

    /// The query's full server-side record, if the server still knows it.
    pub fn record<'a, E: ScrubEnvelope>(&self, sim: &'a Sim<E>) -> Option<&'a QueryRecord> {
        sim.node_as::<QueryServerNode<E>>(self.d.server)?
            .record(self.qid)
    }

    /// Lifecycle state (`Scheduled` → `Running` → `Draining` → `Done`).
    pub fn state<E: ScrubEnvelope>(&self, sim: &Sim<E>) -> Option<QueryState> {
        self.record(sim).map(|r| r.state)
    }

    /// Result rows received so far (empty slice if the query is unknown).
    pub fn results<'a, E: ScrubEnvelope>(&self, sim: &'a Sim<E>) -> &'a [ResultRow] {
        self.record(sim).map(|r| r.rows.as_slice()).unwrap_or(&[])
    }

    /// End-of-query summary, once the query has drained.
    pub fn summary<'a, E: ScrubEnvelope>(&self, sim: &'a Sim<E>) -> Option<&'a QuerySummary> {
        self.record(sim).and_then(|r| r.summary.as_ref())
    }

    /// The ScrubCentral node executing this query.
    pub fn central<E: ScrubEnvelope>(&self, sim: &Sim<E>) -> NodeId {
        sim.node_as::<QueryServerNode<E>>(self.d.server)
            .expect("server node")
            .central_for(self.qid)
    }

    /// The per-query execution profile collected by ScrubCentral:
    /// per-host tap/selection/shedding counts, first-sent vs
    /// retransmitted bytes, window and join-state accounting, and the
    /// central ingest-latency histogram. Retained after the query
    /// finishes. `None` if the query never reached central.
    pub fn profile<E: ScrubEnvelope>(&self, sim: &Sim<E>) -> Option<QueryProfile> {
        let central = self.central(sim);
        sim.node_as::<CentralNode<E>>(central)?
            .profile(self.qid)
            .cloned()
    }

    /// The `EXPLAIN ANALYZE` plan profile: per-operator rows in/out,
    /// estimated-vs-actual selectivity, and ns attribution (cost-model ns
    /// for the host-side trio, wall-clock at central). Live queries are
    /// read from the running executor; finished queries from the copy
    /// retained at stop. `None` if the query never reached central.
    pub fn plan_profile<E: ScrubEnvelope>(&self, sim: &Sim<E>) -> Option<PlanProfile> {
        let central = self.central(sim);
        sim.node_as::<CentralNode<E>>(central)?
            .plan_profile(self.qid)
    }

    /// The lifecycle trace trees central assembled for this query's
    /// sampled requests (see `ScrubConfig::trace_sample_rate`). Retained
    /// after the query finishes. `None` when tracing recorded nothing.
    pub fn traces<E: ScrubEnvelope>(&self, sim: &Sim<E>) -> Option<TraceStore> {
        let central = self.central(sim);
        sim.node_as::<CentralNode<E>>(central)?
            .trace_store(self.qid)
            .cloned()
    }

    /// The loss ledger: per-host accounting of every tapped event that
    /// did not reach a result, bucketed by cause, reconciled against the
    /// profile's tap counters. `None` if the query never reached central.
    pub fn loss_ledger<E: ScrubEnvelope>(&self, sim: &Sim<E>) -> Option<LossLedger> {
        let central = self.central(sim);
        sim.node_as::<CentralNode<E>>(central)?.ledger(self.qid)
    }

    /// The query's full flight-recorder timeline: the server's
    /// control-plane journal (admission, plan, dispatch, eviction,
    /// stop, completion) merged with central's data-plane journal
    /// (window closes/degrades, retransmit episodes, host deaths, alert
    /// firings), ordered by sim time with a stable tiebreak. Returns
    /// the merged events plus the total count of entries evicted from
    /// the bounded journals. `None` if neither side journaled anything.
    pub fn timeline<E: ScrubEnvelope>(&self, sim: &Sim<E>) -> Option<(Vec<FlightEvent>, u64)> {
        let server_rec = sim
            .node_as::<QueryServerNode<E>>(self.d.server)
            .and_then(|n| n.flight_recorder(self.qid));
        let central = self.central(sim);
        let central_rec = sim
            .node_as::<CentralNode<E>>(central)
            .and_then(|n| n.flight_recorder(self.qid));
        let sources: Vec<_> = [server_rec, central_rec].into_iter().flatten().collect();
        if sources.is_empty() {
            return None;
        }
        let dropped = sources.iter().map(|r| r.dropped).sum();
        Some((merge_timelines(&sources), dropped))
    }

    /// Stop the query before its span elapses (injects a cancel; step the
    /// sim to let it take effect).
    pub fn stop<E: ScrubEnvelope>(&self, sim: &mut Sim<E>) {
        sim.inject(
            self.d.server,
            self.d.server,
            E::wrap(ScrubMsg::Cancel { query_id: self.qid }),
        );
    }
}
