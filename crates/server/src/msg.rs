//! The Scrub wire protocol: messages exchanged between the query server,
//! host agents and ScrubCentral (the arrows of Figure 3).
//!
//! Applications simulate their own traffic with their own message enum; the
//! [`ScrubEnvelope`] trait lets Scrub's generic node implementations ride
//! inside it.

use scrub_agent::EventBatch;
use scrub_central::{QuerySummary, ResultRow};
use scrub_core::plan::{CentralPlan, HostPlan, QueryId};
use scrub_simnet::Message;

/// Messages of the Scrub control and data planes.
#[derive(Debug, Clone)]
pub enum ScrubMsg {
    /// Client → query server: submit a ScrubQL query (step 1 in Fig. 3).
    Submit {
        /// ScrubQL source text.
        src: String,
    },
    /// Query server → host: install the selection/projection query object
    /// (step 2).
    InstallQuery {
        /// One plan per event type of the query.
        plans: Vec<HostPlan>,
        /// The ScrubCentral node this query's batches must be shipped to
        /// (queries are spread across the ScrubCentral cluster).
        central: scrub_simnet::NodeId,
    },
    /// Query server → host: tear the query down (span elapsed).
    StopQuery {
        /// Query to stop.
        query_id: QueryId,
    },
    /// Query server → ScrubCentral: install the join/group-by/aggregation
    /// query object (step 2').
    CentralInstall {
        /// The central plan, with host-population info filled in.
        plan: CentralPlan,
    },
    /// Query server → ScrubCentral: all hosts stopped; finish the query
    /// after the drain.
    CentralStop {
        /// Query to finish.
        query_id: QueryId,
    },
    /// Host → ScrubCentral: selected/projected events (step 3).
    Batch(EventBatch),
    /// ScrubCentral → host: batch `(query_id, seq)` was received. Sent for
    /// duplicates too, so a host whose ack was lost stops retransmitting.
    BatchAck {
        /// Query the acked batch belongs to.
        query_id: QueryId,
        /// The acked per-(host, query) sequence number.
        seq: u64,
    },
    /// Host → query server: liveness beacon. The server suspects hosts
    /// whose heartbeats stop and narrows query coverage accordingly.
    Heartbeat {
        /// Reporting host name.
        host: String,
    },
    /// ScrubCentral → query server: result rows as windows close (step 4).
    Rows {
        /// Finished rows.
        rows: Vec<ResultRow>,
    },
    /// ScrubCentral → query server: end-of-query summary.
    Summary {
        /// Totals and sampling estimates.
        summary: QuerySummary,
    },
    /// Client → query server: cancel a running query before its span
    /// elapses (the span itself guards against forgotten queries, §3.2;
    /// cancellation lets a troubleshooter stop one deliberately).
    Cancel {
        /// Query to cancel.
        query_id: QueryId,
    },
    /// Query server → client (or recorded server-side): submission outcome.
    Accepted {
        /// The id assigned to the accepted query.
        query_id: QueryId,
    },
    /// Query server → client: the query failed validation.
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
}

impl ScrubMsg {
    /// Approximate wire size for latency/byte accounting.
    pub fn approx_bytes(&self) -> usize {
        match self {
            ScrubMsg::Submit { src } => 16 + src.len(),
            ScrubMsg::InstallQuery { plans, .. } => 64 + plans.len() * 256,
            ScrubMsg::StopQuery { .. } => 16,
            ScrubMsg::Cancel { .. } => 16,
            ScrubMsg::CentralInstall { .. } => 512,
            ScrubMsg::CentralStop { .. } => 16,
            ScrubMsg::Batch(b) => b.approx_bytes(),
            ScrubMsg::BatchAck { .. } => 24,
            ScrubMsg::Heartbeat { host } => 16 + host.len(),
            ScrubMsg::Rows { rows } => {
                16 + rows.iter().map(|r| 16 + r.values.len() * 16).sum::<usize>()
            }
            ScrubMsg::Summary { .. } => 128,
            ScrubMsg::Accepted { .. } => 16,
            ScrubMsg::Rejected { reason } => 16 + reason.len(),
        }
    }
}

impl Message for ScrubMsg {
    fn size_bytes(&self) -> usize {
        self.approx_bytes()
    }
}

/// Implemented by an application's message enum so Scrub's generic nodes
/// (agents, ScrubCentral, the query server) can be embedded in its
/// simulation.
pub trait ScrubEnvelope: Message + Sized {
    /// Wrap a Scrub message for transmission.
    fn wrap(msg: ScrubMsg) -> Self;
    /// Recover a Scrub message, or return the original envelope when it is
    /// an application message.
    fn open(self) -> Result<ScrubMsg, Self>;
}

impl ScrubEnvelope for ScrubMsg {
    fn wrap(msg: ScrubMsg) -> Self {
        msg
    }
    fn open(self) -> Result<ScrubMsg, Self> {
        Ok(self)
    }
}

/// Base of the timer-id range Scrub's embedded components reserve;
/// applications must keep their own timer ids below this.
pub const SCRUB_TIMER_BASE: u64 = 1 << 62;
/// Periodic agent flush timer.
pub const TIMER_AGENT_FLUSH: u64 = SCRUB_TIMER_BASE + 1;
/// Periodic ScrubCentral watermark-advance timer.
pub const TIMER_CENTRAL_ADVANCE: u64 = SCRUB_TIMER_BASE + 2;
/// Agent retransmit-check timer (armed only while acks are outstanding).
pub const TIMER_AGENT_RETRY: u64 = SCRUB_TIMER_BASE + 3;
/// Periodic agent heartbeat timer.
pub const TIMER_AGENT_HEARTBEAT: u64 = SCRUB_TIMER_BASE + 4;

/// Per-query server timers: start dispatch, stop, and central drain.
pub fn timer_query_start(q: QueryId) -> u64 {
    SCRUB_TIMER_BASE + 0x100 + q.0 * 4
}
/// Timer id for stopping a query.
pub fn timer_query_stop(q: QueryId) -> u64 {
    SCRUB_TIMER_BASE + 0x100 + q.0 * 4 + 1
}
/// Timer id for finishing a query at central after the drain delay.
pub fn timer_query_drain(q: QueryId) -> u64 {
    SCRUB_TIMER_BASE + 0x100 + q.0 * 4 + 2
}

/// Inverse of the `timer_query_*` encodings.
pub fn decode_query_timer(id: u64) -> Option<(QueryId, QueryTimerKind)> {
    if id < SCRUB_TIMER_BASE + 0x100 {
        return None;
    }
    let rel = id - SCRUB_TIMER_BASE - 0x100;
    let kind = match rel % 4 {
        0 => QueryTimerKind::Start,
        1 => QueryTimerKind::Stop,
        2 => QueryTimerKind::Drain,
        _ => return None,
    };
    Some((QueryId(rel / 4), kind))
}

/// What a per-query timer means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryTimerKind {
    /// Dispatch query objects.
    Start,
    /// Stop data collection on hosts.
    Stop,
    /// Finish the query at ScrubCentral.
    Drain,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_encoding_round_trips() {
        for q in [0u64, 1, 7, 12345] {
            let q = QueryId(q);
            assert_eq!(
                decode_query_timer(timer_query_start(q)),
                Some((q, QueryTimerKind::Start))
            );
            assert_eq!(
                decode_query_timer(timer_query_stop(q)),
                Some((q, QueryTimerKind::Stop))
            );
            assert_eq!(
                decode_query_timer(timer_query_drain(q)),
                Some((q, QueryTimerKind::Drain))
            );
        }
        assert_eq!(decode_query_timer(5), None);
        assert_eq!(decode_query_timer(TIMER_AGENT_FLUSH), None);
    }

    #[test]
    fn sizes_scale_with_content() {
        let small = ScrubMsg::Submit { src: "x".into() };
        let big = ScrubMsg::Submit {
            src: "x".repeat(100),
        };
        assert!(big.size_bytes() > small.size_bytes() + 90);
    }

    #[test]
    fn envelope_identity() {
        let m = ScrubMsg::StopQuery {
            query_id: QueryId(3),
        };
        let wrapped = ScrubMsg::wrap(m);
        assert!(matches!(
            wrapped.open(),
            Ok(ScrubMsg::StopQuery { query_id }) if query_id == QueryId(3)
        ));
    }
}
