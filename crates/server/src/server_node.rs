//! The Scrub query server (Figure 3): parses and validates queries,
//! assigns query ids, resolves the `@[...]` target clause against the
//! service registry, applies host sampling, dispatches query objects to
//! hosts and ScrubCentral, enforces the query span, and collects results.

use std::collections::{BTreeMap, HashMap};
use std::marker::PhantomData;
use std::sync::Arc;

use scrub_agent::CostModel;
use scrub_central::{QuerySummary, ResultRow};
use scrub_core::config::{AdmissionPolicy, ScrubConfig};
use scrub_core::error::{ScrubError, ScrubResult};
use scrub_core::plan::{compile, CompiledQuery, HostSampleInfo, QueryId};
use scrub_core::ql::ast::StartSpec;
use scrub_core::ql::parser::parse_query;
use scrub_core::schema::SchemaRegistry;
use scrub_core::target::{sample_indices, HostInfo};
use scrub_obs::{
    AlertProvenance, Counter, FlightEventKind, FlightRecorder, MetricsSnapshot, Registry,
};
use scrub_simnet::{Context, Node, NodeId, SimDuration};
use serde::Serialize;

use crate::msg::{
    decode_query_timer, timer_query_drain, timer_query_start, timer_query_stop, QueryTimerKind,
    ScrubEnvelope, ScrubMsg,
};

/// Lifecycle of a submitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryState {
    /// Accepted, waiting for its start time.
    Scheduled,
    /// Query objects dispatched; data flowing.
    Running,
    /// Hosts stopped; waiting for ScrubCentral to drain.
    Draining,
    /// Summary received; results complete.
    Done,
}

/// Everything the server knows about one query.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Original source text.
    pub src: String,
    /// The compiled query (host plans + central plan).
    pub compiled: CompiledQuery,
    /// Hosts selected to run the query (after target resolution and host
    /// sampling).
    pub hosts: Vec<NodeId>,
    /// Hosts matching the target clause before sampling.
    pub matching_hosts: usize,
    /// Lifecycle state.
    pub state: QueryState,
    /// Result rows received so far.
    pub rows: Vec<ResultRow>,
    /// End-of-query summary, once received.
    pub summary: Option<QuerySummary>,
    /// Virtual time (ms) the first result rows arrived — the query's
    /// time-to-first-answer.
    pub first_rows_at_ms: Option<i64>,
    /// Who submitted (gets Accepted/Rejected notifications).
    pub client: NodeId,
    /// Estimated per-host CPU fraction this query costs, priced by the
    /// deterministic cost model at admission time (after any degrade).
    /// The admission controller sums this over Scheduled/Running queries
    /// to decide whether a new query fits the envelope.
    pub est_cost: f64,
}

/// How the admission controller disposed of one submission that was
/// otherwise valid (parse/validate/target resolution all passed).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum AdmissionVerdict {
    /// Fit within the envelope (or admission control is off).
    Admitted,
    /// Admitted with its event-sampling fraction multiplied by `factor`
    /// so the estimate fits the remaining headroom.
    Degraded { factor: f64 },
    /// Admitted after evicting the listed running queries (most
    /// expensive first, newest first on ties).
    Evicted { victims: Vec<u64> },
    /// Rejected: the envelope could not be met even by degrading or
    /// evicting (per the configured policy).
    Rejected,
}

/// One admission decision, recorded in submission order. Deterministic
/// for a fixed config + submission sequence: pricing uses the cost model
/// at the configured assumed event rate, never wall-clock measurements.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AdmissionDecision {
    /// Query id the submission received (or would have received).
    pub query_id: u64,
    /// What the controller decided.
    pub verdict: AdmissionVerdict,
    /// Rate-independent part of the estimate (tap + predicate on every
    /// event seen), as a fraction of one core.
    pub est_fixed: f64,
    /// Sampling-scalable part (projection + ship of selected events), as
    /// a fraction of one core, before any degrade.
    pub est_variable: f64,
    /// Σ est_cost over Scheduled/Running queries before this decision.
    pub running_before: f64,
    /// The envelope the decision was made against.
    pub budget: f64,
}

/// The query-server node.
pub struct QueryServerNode<E: ScrubEnvelope> {
    schema_registry: Arc<SchemaRegistry>,
    config: ScrubConfig,
    /// The ScrubCentral cluster; queries are spread round-robin.
    centrals: Vec<NodeId>,
    /// Application hosts (node id + target attributes).
    inventory: Vec<(NodeId, HostInfo)>,
    /// Scrub's own nodes (ScrubCentral); targeted only by queries that
    /// name them explicitly — self-observability queries.
    meta_inventory: Vec<(NodeId, HostInfo)>,
    next_qid: u64,
    /// Ordered so float-summing running costs is deterministic across runs.
    queries: BTreeMap<QueryId, QueryRecord>,
    /// Queries rejected at submission, with reasons (for tests/inspection).
    pub rejected: Vec<(String, String)>,
    /// Every admission-control decision in submission order (only
    /// submissions that passed parse/validate/target resolution).
    pub admission_log: Vec<AdmissionDecision>,
    /// Victims selected by an `Evict` admission, cancelled by the Submit
    /// handler right after the new query is accepted (admit() itself is
    /// pure and cannot send messages).
    pending_evictions: Vec<QueryId>,
    /// Per-query lifecycle journals (control-plane half: admission
    /// verdict, plan chosen, dispatch, eviction, stop, completion).
    /// Merged with central's data-plane half by `QueryHandle::timeline`.
    recorders: HashMap<QueryId, FlightRecorder>,
    /// Last heartbeat per agent host (ms). Hosts only start heartbeating
    /// once they learn the server's address from their first
    /// `InstallQuery`.
    heartbeats: HashMap<NodeId, i64>,
    /// Lifecycle metrics.
    obs: Registry,
    m_submitted: Arc<Counter>,
    m_accepted: Arc<Counter>,
    m_rejected: Arc<Counter>,
    m_dispatched: Arc<Counter>,
    m_completed: Arc<Counter>,
    m_cancelled: Arc<Counter>,
    m_rows: Arc<Counter>,
    m_heartbeats: Arc<Counter>,
    m_rejected_budget: Arc<Counter>,
    m_degraded: Arc<Counter>,
    m_evicted: Arc<Counter>,
    _marker: PhantomData<fn(E)>,
}

impl<E: ScrubEnvelope> QueryServerNode<E> {
    /// Create a server over the given application-host inventory.
    pub fn new(
        schema_registry: Arc<SchemaRegistry>,
        config: ScrubConfig,
        central: NodeId,
        inventory: Vec<(NodeId, HostInfo)>,
    ) -> Self {
        Self::with_centrals(schema_registry, config, vec![central], inventory)
    }

    /// Create a server over a ScrubCentral *cluster*: each accepted query
    /// is assigned one central node (round-robin by query id), keeping all
    /// of a query's join/group-by state on one node while spreading query
    /// load across the cluster.
    pub fn with_centrals(
        schema_registry: Arc<SchemaRegistry>,
        config: ScrubConfig,
        centrals: Vec<NodeId>,
        inventory: Vec<(NodeId, HostInfo)>,
    ) -> Self {
        assert!(!centrals.is_empty(), "need at least one ScrubCentral");
        let obs = Registry::new();
        let m_submitted = obs.counter("server.queries_submitted");
        let m_accepted = obs.counter("server.queries_accepted");
        let m_rejected = obs.counter("server.queries_rejected");
        let m_dispatched = obs.counter("server.queries_dispatched");
        let m_completed = obs.counter("server.queries_completed");
        let m_cancelled = obs.counter("server.queries_cancelled");
        let m_rows = obs.counter("server.rows_received");
        let m_heartbeats = obs.counter("server.heartbeats_received");
        let m_rejected_budget = obs.counter("overload.queries_rejected_budget");
        let m_degraded = obs.counter("overload.queries_degraded");
        let m_evicted = obs.counter("overload.queries_evicted");
        QueryServerNode {
            schema_registry,
            config,
            centrals,
            inventory,
            meta_inventory: Vec::new(),
            next_qid: 1,
            queries: BTreeMap::new(),
            rejected: Vec::new(),
            admission_log: Vec::new(),
            pending_evictions: Vec::new(),
            recorders: HashMap::new(),
            heartbeats: HashMap::new(),
            obs,
            m_submitted,
            m_accepted,
            m_rejected,
            m_dispatched,
            m_completed,
            m_cancelled,
            m_rows,
            m_heartbeats,
            m_rejected_budget,
            m_degraded,
            m_evicted,
            _marker: PhantomData,
        }
    }

    /// Install the inventory of Scrub's own nodes. These resolve as
    /// targets only for queries that name a Scrub service or host
    /// explicitly (`@[Service in ScrubCentral]`); `@[all]` and other
    /// blanket selectors keep matching application hosts only.
    pub fn set_meta_inventory(&mut self, meta_inventory: Vec<(NodeId, HostInfo)>) {
        self.meta_inventory = meta_inventory;
    }

    /// Lifecycle metrics snapshot at sim time `at_ms`.
    pub fn metrics(&self, at_ms: i64) -> MetricsSnapshot {
        self.obs.snapshot(at_ms)
    }

    /// Time (ms) of the last heartbeat received from `host`, if any.
    pub fn last_heartbeat(&self, host: NodeId) -> Option<i64> {
        self.heartbeats.get(&host).copied()
    }

    /// Whether `host` is suspected dead at `now_ms`: it heartbeated at
    /// least once and has then been silent for longer than the host grace
    /// period. Hosts that never heartbeated are not suspected (they may
    /// simply never have been targeted by a query).
    pub fn is_suspect(&self, host: NodeId, now_ms: i64) -> bool {
        match self.heartbeats.get(&host) {
            Some(&last) => now_ms - last > self.config.host_grace_ms,
            None => false,
        }
    }

    /// Hosts currently suspected dead.
    pub fn suspected_hosts(&self, now_ms: i64) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .heartbeats
            .keys()
            .copied()
            .filter(|h| self.is_suspect(*h, now_ms))
            .collect();
        out.sort();
        out
    }

    /// A query's host coverage at `now_ms`: `(live, targeted)` over the
    /// hosts selected to run it. Failure of a targeted host narrows
    /// coverage below 1.0 — the summary's error bounds widen accordingly.
    pub fn query_coverage(&self, qid: QueryId, now_ms: i64) -> Option<(usize, usize)> {
        let rec = self.queries.get(&qid)?;
        let live = rec
            .hosts
            .iter()
            .filter(|h| !self.is_suspect(**h, now_ms))
            .count();
        Some((live, rec.hosts.len()))
    }

    /// Record of a query (rows, summary, state).
    pub fn record(&self, qid: QueryId) -> Option<&QueryRecord> {
        self.queries.get(&qid)
    }

    /// The id the next accepted query will receive.
    pub fn peek_next_qid(&self) -> u64 {
        self.next_qid
    }

    /// The ScrubCentral node a query is (or would be) assigned to.
    pub fn central_for(&self, qid: QueryId) -> NodeId {
        self.centrals[(qid.0 as usize) % self.centrals.len()]
    }

    /// Ids of all queries ever accepted, in submission order.
    pub fn query_ids(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> = self.queries.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The control-plane half of a query's flight recorder (admission,
    /// plan, dispatch, eviction, stop, completion). `None` for queries
    /// that were never accepted.
    pub fn flight_recorder(&self, qid: QueryId) -> Option<&FlightRecorder> {
        self.recorders.get(&qid)
    }

    fn journal(&mut self, qid: QueryId, at_ms: i64, kind: FlightEventKind, detail: String) {
        self.recorders
            .entry(qid)
            .or_insert_with(|| FlightRecorder::new(qid.0, self.config.flight_recorder_cap))
            .record(
                at_ms,
                kind,
                detail,
                AlertProvenance {
                    query_id: Some(qid.0),
                    ..Default::default()
                },
            );
    }

    /// Validate + plan + target-resolve a query. Pure (no dispatch).
    fn admit(&mut self, src: &str) -> ScrubResult<QueryId> {
        let qid = QueryId(self.next_qid);
        let spec = parse_query(src)?;
        let mut compiled = compile(&spec, &self.schema_registry, &self.config, qid)?;

        // Resolve targets and apply host sampling (deterministic per qid).
        let matching: Vec<NodeId> = self
            .inventory
            .iter()
            .filter(|(_, info)| info.matches(&spec.target))
            .map(|(id, _)| *id)
            .collect();
        // Scrub's own nodes join the target set only when the clause names
        // them explicitly; they are never host-sampled (there are few of
        // them, and a meta query wants them all).
        let meta_matching: Vec<NodeId> = self
            .meta_inventory
            .iter()
            .filter(|(_, info)| info.matches(&spec.target) && info.explicitly_named(&spec.target))
            .map(|(id, _)| *id)
            .collect();
        if matching.is_empty() && meta_matching.is_empty() {
            return Err(scrub_core::error::ScrubError::Target(
                "target clause matches no hosts".into(),
            ));
        }
        let chosen = sample_indices(matching.len(), spec.sample.host_fraction, qid.0);
        let mut hosts: Vec<NodeId> = chosen.iter().map(|&i| matching[i]).collect();
        hosts.extend(meta_matching.iter().copied());
        compiled.central.host_info = HostSampleInfo {
            matching: matching.len() + meta_matching.len(),
            selected: hosts.len(),
        };

        // Admission control: price the query's per-host CPU cost with the
        // deterministic cost model and hold the fleet to the envelope.
        // Pricing uses the configured assumed event rate, never wall-clock
        // measurements, so a fixed config + submission order always yields
        // the same decisions.
        let cost = CostModel::default();
        let (est_fixed, est_variable) = cost.query_cost_fractions(
            &compiled.host_plans,
            self.config.admission_events_per_host_per_sec,
            self.config.wire_format,
        );
        let mut est = est_fixed + est_variable;
        let budget = self.config.host_cpu_budget;
        let running_before: f64 = self
            .queries
            .values()
            .filter(|r| matches!(r.state, QueryState::Scheduled | QueryState::Running))
            .map(|r| r.est_cost)
            .sum();
        let mut verdict = AdmissionVerdict::Admitted;
        if self.config.admission != AdmissionPolicy::Off && running_before + est > budget {
            match self.config.admission {
                AdmissionPolicy::Off => unreachable!("guarded above"),
                AdmissionPolicy::Reject => verdict = AdmissionVerdict::Rejected,
                AdmissionPolicy::Degrade => {
                    let headroom = budget - running_before;
                    if est_fixed >= headroom || est_variable <= 0.0 {
                        // Even the irreducible selection cost (every event
                        // must be seen regardless of sampling) does not
                        // fit: there is nothing left to degrade.
                        verdict = AdmissionVerdict::Rejected;
                    } else {
                        let factor = ((headroom - est_fixed) / est_variable).clamp(0.0, 1.0);
                        for hp in &mut compiled.host_plans {
                            hp.event_fraction *= factor;
                        }
                        // Keep the central plan's copy consistent so the
                        // estimator and EXPLAIN output see the admitted
                        // fraction, not the requested one.
                        compiled.central.sample.event_fraction *= factor;
                        est = est_fixed + est_variable * factor;
                        verdict = AdmissionVerdict::Degraded { factor };
                    }
                }
                AdmissionPolicy::Evict => {
                    // Most expensive first; newest (highest id) on ties —
                    // the cheapest accumulated value per unit of CPU.
                    let mut victims: Vec<QueryId> = Vec::new();
                    let mut running_now = running_before;
                    while running_now + est > budget {
                        let candidate = self
                            .queries
                            .iter()
                            .filter(|(id, r)| {
                                matches!(r.state, QueryState::Scheduled | QueryState::Running)
                                    && !victims.contains(id)
                            })
                            .map(|(id, r)| (*id, r.est_cost))
                            .max_by(|a, b| {
                                a.1.partial_cmp(&b.1)
                                    .unwrap_or(std::cmp::Ordering::Equal)
                                    .then(a.0.cmp(&b.0))
                            });
                        let Some((vid, vcost)) = candidate else { break };
                        victims.push(vid);
                        running_now -= vcost;
                    }
                    if running_now + est > budget {
                        // Even an empty fleet cannot host this query;
                        // reject it without sacrificing anyone.
                        verdict = AdmissionVerdict::Rejected;
                    } else {
                        self.pending_evictions.extend(victims.iter().copied());
                        verdict = AdmissionVerdict::Evicted {
                            victims: victims.iter().map(|q| q.0).collect(),
                        };
                    }
                }
            }
        }
        match &verdict {
            AdmissionVerdict::Degraded { .. } => self.m_degraded.inc(),
            AdmissionVerdict::Evicted { victims } => self.m_evicted.add(victims.len() as u64),
            AdmissionVerdict::Rejected => self.m_rejected_budget.inc(),
            AdmissionVerdict::Admitted => {}
        }
        let rejected = verdict == AdmissionVerdict::Rejected;
        self.admission_log.push(AdmissionDecision {
            query_id: qid.0,
            verdict,
            est_fixed,
            est_variable,
            running_before,
            budget,
        });
        if rejected {
            return Err(ScrubError::Rejected(format!(
                "admission control ({:?}): estimated per-host cost {:.4}% on top of \
                 {:.4}% already running exceeds the {:.2}% CPU budget",
                self.config.admission,
                (est_fixed + est_variable) * 100.0,
                running_before * 100.0,
                budget * 100.0
            )));
        }

        self.next_qid += 1;
        self.queries.insert(
            qid,
            QueryRecord {
                src: src.to_string(),
                compiled,
                hosts,
                matching_hosts: matching.len() + meta_matching.len(),
                state: QueryState::Scheduled,
                rows: Vec::new(),
                summary: None,
                first_rows_at_ms: None,
                client: NodeId(0), // set by caller
                est_cost: est,
            },
        );
        Ok(qid)
    }

    fn dispatch(&mut self, ctx: &mut Context<'_, E>, qid: QueryId) {
        let Some(rec) = self.queries.get_mut(&qid) else {
            return;
        };
        if rec.state != QueryState::Scheduled {
            return; // cancelled before its start time
        }
        rec.state = QueryState::Running;
        let n_hosts = rec.hosts.len();
        self.m_dispatched.inc();
        self.journal(
            qid,
            ctx.now.as_ms(),
            FlightEventKind::Dispatched,
            format!("installed on {n_hosts} host(s) + central"),
        );
        let Some(rec) = self.queries.get_mut(&qid) else {
            return;
        };
        let central = self.centrals[(qid.0 as usize) % self.centrals.len()];
        for &host in &rec.hosts {
            ctx.send(
                host,
                E::wrap(ScrubMsg::InstallQuery {
                    plans: rec.compiled.host_plans.clone(),
                    central,
                }),
            );
        }
        ctx.send(
            central,
            E::wrap(ScrubMsg::CentralInstall {
                plan: rec.compiled.central.clone(),
            }),
        );
        ctx.set_timer(
            SimDuration::from_ms(rec.compiled.duration_ms),
            timer_query_stop(qid),
        );
    }

    fn stop(&mut self, ctx: &mut Context<'_, E>, qid: QueryId) {
        let Some(rec) = self.queries.get_mut(&qid) else {
            return;
        };
        if rec.state != QueryState::Running {
            return; // already stopped (e.g. cancelled before the span timer)
        }
        rec.state = QueryState::Draining;
        let n_hosts = rec.hosts.len();
        self.journal(
            qid,
            ctx.now.as_ms(),
            FlightEventKind::Stopped,
            format!("stopping {n_hosts} host(s), draining central"),
        );
        let Some(rec) = self.queries.get(&qid) else {
            return;
        };
        for &host in &rec.hosts {
            ctx.send(host, E::wrap(ScrubMsg::StopQuery { query_id: qid }));
        }
        // Give agents' tail batches time to cross the WAN before asking
        // central to finish. Central closes all open windows on finish, so
        // the drain must NOT wait out the window length (a 1-day window
        // would stall the query for a day); one flush interval plus grace
        // plus a WAN margin suffices.
        let drain_ms = self.config.agent_flush_interval_ms + self.config.window_grace_ms + 2_000;
        ctx.set_timer(SimDuration::from_ms(drain_ms), timer_query_drain(qid));
    }
}

impl<E: ScrubEnvelope> Node<E> for QueryServerNode<E> {
    fn on_message(&mut self, ctx: &mut Context<'_, E>, from: NodeId, msg: E) {
        let Ok(scrub) = msg.open() else {
            return;
        };
        match scrub {
            ScrubMsg::Submit { src } => {
                self.m_submitted.inc();
                match self.admit(&src) {
                    Ok(qid) => {
                        self.m_accepted.inc();
                        let now_ms = ctx.now.as_ms();
                        if let Some(rec) = self.queries.get_mut(&qid) {
                            rec.client = from;
                        }
                        // Journal the admission verdict and the chosen
                        // plan — the first two entries of every
                        // accepted query's timeline.
                        if let Some(d) = self.admission_log.last() {
                            let verdict = match &d.verdict {
                                AdmissionVerdict::Admitted => "verdict=admitted".to_string(),
                                AdmissionVerdict::Degraded { factor } => {
                                    format!("verdict=degraded factor={factor:.4}")
                                }
                                AdmissionVerdict::Evicted { victims } => {
                                    format!("verdict=admitted, evicting {} running", victims.len())
                                }
                                AdmissionVerdict::Rejected => "verdict=rejected".to_string(),
                            };
                            let detail = format!(
                                "{verdict} est={:.4}% over {:.4}% running (budget {:.2}%)",
                                (d.est_fixed + d.est_variable) * 100.0,
                                d.running_before * 100.0,
                                d.budget * 100.0
                            );
                            self.journal(qid, now_ms, FlightEventKind::Admitted, detail);
                        }
                        if let Some(rec) = self.queries.get(&qid) {
                            let detail = format!(
                                "{} host plan(s), window {} ms, est cost {:.4}%",
                                rec.compiled.host_plans.len(),
                                rec.compiled.central.window_ms,
                                rec.est_cost * 100.0
                            );
                            self.journal(qid, now_ms, FlightEventKind::PlanChosen, detail);
                        }
                        // Carry out evictions the admission controller
                        // scheduled to make room for this query.
                        let victims = std::mem::take(&mut self.pending_evictions);
                        for vid in victims {
                            self.journal(
                                vid,
                                now_ms,
                                FlightEventKind::Evicted,
                                format!("evicted to admit query {}", qid.0),
                            );
                            match self.queries.get(&vid).map(|r| r.state) {
                                Some(QueryState::Running) => self.stop(ctx, vid),
                                Some(QueryState::Scheduled) => {
                                    if let Some(rec) = self.queries.get_mut(&vid) {
                                        rec.state = QueryState::Done;
                                    }
                                }
                                _ => {}
                            }
                        }
                        if from != ctx.self_id {
                            ctx.send(from, E::wrap(ScrubMsg::Accepted { query_id: qid }));
                        }
                        // honor the query span's start spec
                        let delay = match self.queries[&qid].compiled.spec.start {
                            StartSpec::Now => SimDuration::ZERO,
                            StartSpec::In(ms) => SimDuration::from_ms(ms.max(0)),
                            StartSpec::At(t_ms) => {
                                SimDuration::from_ms((t_ms - ctx.now.as_ms()).max(0))
                            }
                        };
                        ctx.set_timer(delay, timer_query_start(qid));
                    }
                    Err(e) => {
                        self.m_rejected.inc();
                        self.rejected.push((src, e.to_string()));
                        if from != ctx.self_id {
                            ctx.send(
                                from,
                                E::wrap(ScrubMsg::Rejected {
                                    reason: e.to_string(),
                                }),
                            );
                        }
                    }
                }
            }
            ScrubMsg::Cancel { query_id } => {
                let state = self.queries.get(&query_id).map(|r| r.state);
                match state {
                    Some(QueryState::Running) => {
                        self.m_cancelled.inc();
                        self.stop(ctx, query_id);
                    }
                    Some(QueryState::Scheduled) => {
                        // not yet dispatched: mark done with no results
                        self.m_cancelled.inc();
                        if let Some(rec) = self.queries.get_mut(&query_id) {
                            rec.state = QueryState::Done;
                        }
                    }
                    _ => { /* draining/done/unknown: nothing to do */ }
                }
            }
            ScrubMsg::Rows { rows } => {
                let now_ms = ctx.now.as_ms();
                for row in rows {
                    if let Some(rec) = self.queries.get_mut(&row.query_id) {
                        rec.first_rows_at_ms.get_or_insert(now_ms);
                        rec.rows.push(row);
                        self.m_rows.inc();
                    }
                }
            }
            ScrubMsg::Summary { summary } => {
                let qid = summary.query_id;
                if let Some(rec) = self.queries.get_mut(&qid) {
                    rec.summary = Some(summary);
                    rec.state = QueryState::Done;
                    let rows = rec.rows.len();
                    self.m_completed.inc();
                    self.journal(
                        qid,
                        ctx.now.as_ms(),
                        FlightEventKind::Completed,
                        format!("summary received, {rows} row(s)"),
                    );
                }
            }
            ScrubMsg::Heartbeat { .. } => {
                self.heartbeats.insert(from, ctx.now.as_ms());
                self.m_heartbeats.inc();
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, E>, timer: u64) {
        let Some((qid, kind)) = decode_query_timer(timer) else {
            return;
        };
        match kind {
            QueryTimerKind::Start => self.dispatch(ctx, qid),
            QueryTimerKind::Stop => self.stop(ctx, qid),
            QueryTimerKind::Drain => {
                let central = self.central_for(qid);
                ctx.send(central, E::wrap(ScrubMsg::CentralStop { query_id: qid }));
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
