//! # scrub-baseline
//!
//! The alternative Scrub replaces: troubleshooting by logging (§1, §8.1).
//! Every event is logged in full, shipped cross-DC to a warehouse, and
//! questions are answered by offline batch jobs. The crate provides the
//! full-event log store (exact byte accounting with Scrub's own wire
//! encoding), a batch query engine that doubles as a correctness oracle
//! for the live pipeline, and a cost model (transfer, scan, storage,
//! time-to-answer) for the §8.1 comparison.

pub mod batch;
pub mod costmodel;
pub mod logstore;

pub use batch::{apply_host_plan, run_batch};
pub use costmodel::{LoggingCostModel, LoggingCosts};
pub use logstore::{FleetLog, HostLog};
