//! Cost model of troubleshooting-by-logging, for the Scrub-vs-logging
//! comparison of §8.1: shipping all data over cross-continental links to a
//! centralized warehouse, retaining it, and answering a question with a
//! batch (Hadoop-style) job.

use serde::{Deserialize, Serialize};

/// Parameters of the logging pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoggingCostModel {
    /// Usable cross-DC bandwidth for log shipment (bytes/s). Shared
    /// capacity — in production a fraction of a WAN pipe.
    pub cross_dc_bandwidth_bytes_per_s: f64,
    /// Scan throughput of one batch-cluster node (bytes/s).
    pub scan_bytes_per_s_per_node: f64,
    /// Nodes in the batch cluster.
    pub cluster_nodes: usize,
    /// Fixed batch-job startup latency (scheduling, JVM spin-up...), s.
    pub job_startup_s: f64,
    /// Storage price per GB-month (for the retention comparison).
    pub storage_usd_per_gb_month: f64,
}

impl Default for LoggingCostModel {
    fn default() -> Self {
        LoggingCostModel {
            cross_dc_bandwidth_bytes_per_s: 125e6, // 1 Gb/s of WAN share
            scan_bytes_per_s_per_node: 200e6,
            cluster_nodes: 20,
            job_startup_s: 30.0,
            storage_usd_per_gb_month: 0.02,
        }
    }
}

/// What the logging alternative costs for a given troubleshooting session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoggingCosts {
    /// Bytes shipped cross-DC (all of them: queries are not known a
    /// priori, so everything is logged centrally).
    pub bytes_shipped: u64,
    /// Time for the data to reach the warehouse (s).
    pub transfer_s: f64,
    /// Time for the batch job over that data (startup + scan) (s).
    pub batch_job_s: f64,
    /// Total time to the first answer (s).
    pub time_to_answer_s: f64,
    /// Storage bill for retaining the data one month (USD).
    pub storage_usd_month: f64,
}

impl LoggingCostModel {
    /// Costs of answering one question over `bytes` of logged data.
    pub fn costs(&self, bytes: u64) -> LoggingCosts {
        let transfer_s = bytes as f64 / self.cross_dc_bandwidth_bytes_per_s;
        let scan_s = bytes as f64 / (self.scan_bytes_per_s_per_node * self.cluster_nodes as f64);
        let batch_job_s = self.job_startup_s + scan_s;
        LoggingCosts {
            bytes_shipped: bytes,
            transfer_s,
            batch_job_s,
            time_to_answer_s: transfer_s + batch_job_s,
            storage_usd_month: bytes as f64 / 1e9 * self.storage_usd_per_gb_month,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_linearly_in_bytes() {
        let m = LoggingCostModel::default();
        let a = m.costs(1_000_000_000);
        let b = m.costs(2_000_000_000);
        assert!((b.transfer_s - 2.0 * a.transfer_s).abs() < 1e-9);
        assert!(b.time_to_answer_s > a.time_to_answer_s);
        assert!((b.storage_usd_month - 2.0 * a.storage_usd_month).abs() < 1e-12);
    }

    #[test]
    fn startup_dominates_tiny_jobs() {
        let m = LoggingCostModel::default();
        let c = m.costs(1_000);
        assert!((c.batch_job_s - m.job_startup_s).abs() < 0.1);
    }
}
