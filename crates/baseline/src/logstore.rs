//! The log-everything store: what troubleshooting-by-logging implies.
//!
//! §8.1: "Since queries are not known a priori, all data would need to be
//! logged. Moving all this data over cross-continental links to a
//! centralized location for analysis would be very costly, retaining it
//! for any length of time even more so." This store captures the *full*
//! event stream (every field of every event, no selection, no projection,
//! no sampling) with the same wire encoding Scrub uses, so the byte
//! comparison is apples-to-apples.

use bytes::BytesMut;

use scrub_core::encode::encode_event;
use scrub_core::event::Event;

/// Append-only full-event log for one host.
#[derive(Debug, Default)]
pub struct HostLog {
    events: Vec<Event>,
    encoded_bytes: u64,
    /// Reused per-append encode buffer — the encoding only exists to count
    /// storage bytes, so one scratch allocation serves the whole log.
    scratch: BytesMut,
}

impl HostLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event (encodes it to account storage bytes exactly).
    pub fn append(&mut self, ev: Event) {
        self.scratch.clear();
        encode_event(&mut self.scratch, &ev);
        self.encoded_bytes += self.scratch.len() as u64;
        self.events.push(ev);
    }

    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Encoded size of the log.
    pub fn bytes(&self) -> u64 {
        self.encoded_bytes
    }

    /// The logged events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

/// The whole fleet's logs.
#[derive(Debug, Default)]
pub struct FleetLog {
    hosts: Vec<(String, HostLog)>,
}

impl FleetLog {
    /// Empty fleet log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The (created-on-demand) log of one host.
    pub fn host(&mut self, name: &str) -> &mut HostLog {
        if let Some(i) = self.hosts.iter().position(|(n, _)| n == name) {
            return &mut self.hosts[i].1;
        }
        self.hosts.push((name.to_string(), HostLog::new()));
        &mut self.hosts.last_mut().expect("just pushed").1
    }

    /// Total events across hosts.
    pub fn total_events(&self) -> u64 {
        self.hosts.iter().map(|(_, l)| l.len() as u64).sum()
    }

    /// Total encoded bytes across hosts — the volume a centralized
    /// analysis must move and retain.
    pub fn total_bytes(&self) -> u64 {
        self.hosts.iter().map(|(_, l)| l.bytes()).sum()
    }

    /// Iterate all events of all hosts.
    pub fn all_events(&self) -> impl Iterator<Item = &Event> {
        self.hosts.iter().flat_map(|(_, l)| l.events().iter())
    }

    /// Number of hosts with logs.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrub_core::event::RequestId;
    use scrub_core::schema::EventTypeId;
    use scrub_core::value::Value;

    fn ev(i: u64) -> Event {
        Event::new(
            EventTypeId(0),
            RequestId(i),
            i as i64,
            vec![Value::Long(i as i64), Value::Str("payload".into())],
        )
    }

    #[test]
    fn bytes_grow_with_events() {
        let mut log = HostLog::new();
        assert!(log.is_empty());
        log.append(ev(1));
        let one = log.bytes();
        log.append(ev(2));
        assert!(log.bytes() > one);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn fleet_aggregates() {
        let mut fleet = FleetLog::new();
        fleet.host("h1").append(ev(1));
        fleet.host("h2").append(ev(2));
        fleet.host("h1").append(ev(3));
        assert_eq!(fleet.total_events(), 3);
        assert_eq!(fleet.host_count(), 2);
        assert_eq!(fleet.all_events().count(), 3);
        assert!(fleet.total_bytes() > 0);
    }
}

#[cfg(test)]
mod analytic_bridge_tests {
    use super::*;
    use scrub_core::event::RequestId;
    use scrub_core::schema::EventTypeId;
    use scrub_core::value::Value;

    /// The E11/E15 experiments estimate full-log volume analytically as
    /// (events per type) x (representative encoded size). This test pins
    /// that approximation against the exact FleetLog encoding for a
    /// homogeneous stream: they must agree to within the varint slack of
    /// the varying ids (a few percent).
    #[test]
    fn analytic_bytes_match_exact_encoding() {
        let representative = Event::new(
            EventTypeId(0),
            RequestId(1 << 48),
            1_000_000,
            vec![
                Value::Long(123_456),
                Value::Str("targeting_country".into()),
                Value::Double(0.55),
            ],
        );
        let per_event = {
            let mut buf = bytes::BytesMut::new();
            scrub_core::encode::encode_event(&mut buf, &representative);
            buf.len() as u64
        };

        let mut fleet = FleetLog::new();
        const N: u64 = 5_000;
        for i in 0..N {
            fleet.host(&format!("h{}", i % 4)).append(Event::new(
                EventTypeId(0),
                RequestId((1 << 48) + i),
                1_000_000 + i as i64,
                vec![
                    Value::Long(100_000 + i as i64),
                    Value::Str("targeting_country".into()),
                    Value::Double(0.55),
                ],
            ));
        }
        let exact = fleet.total_bytes();
        let analytic = N * per_event;
        let rel = (exact as f64 - analytic as f64).abs() / exact as f64;
        assert!(
            rel < 0.05,
            "analytic {analytic} vs exact {exact} ({rel:.3})"
        );
    }
}
