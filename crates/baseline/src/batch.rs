//! Offline batch query execution over full logs — the Hadoop-style
//! alternative Scrub replaces (§8.1), and, conveniently, an *oracle*: it
//! executes the same compiled query over the complete event stream, so
//! tests can compare the live sampled/windowed pipeline against ground
//! truth.

use scrub_agent::{BatchPayload, EventBatch};
use scrub_central::{QueryExecutor, QuerySummary, ResultRow};
use scrub_core::event::Event;
use scrub_core::plan::{CompiledQuery, HostPlan};
use scrub_core::value::Value;

/// Run a compiled query over a complete event log (all hosts' events,
/// unsampled). Host plans are applied first (selection/projection — as the
/// batch job's map phase), then the central plan (join/group/aggregate —
/// the reduce phase). Returns all result rows plus the summary.
pub fn run_batch(cq: &CompiledQuery, events: &[Event]) -> (Vec<ResultRow>, QuerySummary) {
    let mut exec = QueryExecutor::new(cq.central.clone(), 0);
    // one batch per event type: counters are per (host, type) subscription
    for plan in &cq.host_plans {
        let mut shipped: Vec<Event> = Vec::new();
        let mut matched = 0u64;
        for ev in events.iter().filter(|e| e.type_id == plan.type_id) {
            if let Some(projected) = apply_host_plan(plan, ev) {
                matched += 1;
                shipped.push(projected);
            }
        }
        exec.ingest(EventBatch {
            seq: 0,
            attempt: 0,
            query_id: cq.query_id,
            type_id: plan.type_id,
            host: "batch".into(),
            payload: BatchPayload::Rows(shipped),
            matched,
            sampled: matched,
            shed: 0,
            budget_shed: 0,
            seen: matched,
            bytes: 0,
            spans: vec![],
        });
    }
    let (mut rows, summary) = {
        let rows = exec.advance(i64::MAX / 4);
        let (more, summary) = exec.finish();
        let mut all = rows;
        all.extend(more);
        (all, summary)
    };
    rows.sort_by_key(|r| (r.window_start_ms, row_key(r)));
    (rows, summary)
}

fn row_key(r: &ResultRow) -> Vec<scrub_core::value::GroupKey> {
    r.values.iter().map(Value::group_key).collect()
}

/// Apply one host plan (selection + projection, no sampling) to an event.
pub fn apply_host_plan(plan: &HostPlan, ev: &Event) -> Option<Event> {
    if let Some(pred) = &plan.predicate {
        let arity = plan.arity;
        let ok = pred.eval_bool_by(&|slot| {
            if slot < arity {
                ev.values.get(slot).cloned().unwrap_or(Value::Null)
            } else if slot == arity {
                Value::Long(ev.request_id.0 as i64)
            } else {
                Value::DateTime(ev.timestamp)
            }
        });
        if !ok {
            return None;
        }
    }
    let values = plan.projection.iter().map(|s| ev.slot(*s)).collect();
    Some(Event::new(ev.type_id, ev.request_id, ev.timestamp, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrub_core::config::ScrubConfig;
    use scrub_core::event::RequestId;
    use scrub_core::plan::{compile, QueryId};
    use scrub_core::ql::parser::parse_query;
    use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};

    fn registry() -> SchemaRegistry {
        let reg = SchemaRegistry::new();
        reg.register(
            EventSchema::new(
                "bid",
                vec![
                    FieldDef::new("user_id", FieldType::Long),
                    FieldDef::new("price", FieldType::Double),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        reg.register(
            EventSchema::new("impression", vec![FieldDef::new("cost", FieldType::Double)]).unwrap(),
        )
        .unwrap();
        reg
    }

    fn compile_src(src: &str) -> CompiledQuery {
        compile(
            &parse_query(src).unwrap(),
            &registry(),
            &ScrubConfig::default(),
            QueryId(1),
        )
        .unwrap()
    }

    fn bid(rid: u64, ts: i64, user: i64, price: f64) -> Event {
        Event::new(
            EventTypeId(0),
            RequestId(rid),
            ts,
            vec![Value::Long(user), Value::Double(price)],
        )
    }

    #[test]
    fn grouped_count_matches_hand_computation() {
        let cq =
            compile_src("select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s");
        let events: Vec<Event> = (0..100)
            .map(|i| bid(i, (i as i64) * 200, (i % 3) as i64, 1.0))
            .collect();
        let (rows, summary) = run_batch(&cq, &events);
        assert_eq!(summary.total_matched, 100);
        // 100 events over 20s -> 2 windows × 3 users
        assert_eq!(rows.len(), 6);
        let total: i64 = rows.iter().map(|r| r.values[1].as_i64().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn where_clause_applies() {
        let cq = compile_src("select COUNT(*) from bid where bid.price > 2.0");
        let events: Vec<Event> = (0..10).map(|i| bid(i, 0, 0, i as f64)).collect();
        let (rows, _) = run_batch(&cq, &events);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[0], Value::Long(7)); // prices 3..9
    }

    #[test]
    fn join_over_logs() {
        let cq = compile_src("select COUNT(*) from bid, impression window 10 s");
        let mut events: Vec<Event> = (0..10).map(|i| bid(i, 100, 0, 1.0)).collect();
        for i in 0..5u64 {
            events.push(Event::new(
                EventTypeId(1),
                RequestId(i),
                150,
                vec![Value::Double(0.3)],
            ));
        }
        let (rows, _) = run_batch(&cq, &events);
        assert_eq!(rows[0].values[0], Value::Long(5));
    }

    #[test]
    fn rows_sorted_deterministically() {
        let cq =
            compile_src("select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s");
        let events: Vec<Event> = (0..50)
            .map(|i| bid(i, 0, ((i * 7) % 5) as i64, 1.0))
            .collect();
        let (a, _) = run_batch(&cq, &events);
        let (b, _) = run_batch(&cq, &events);
        assert_eq!(a, b);
        let users: Vec<i64> = a.iter().map(|r| r.values[0].as_i64().unwrap()).collect();
        let mut sorted = users.clone();
        sorted.sort_unstable();
        assert_eq!(users, sorted);
    }
}
