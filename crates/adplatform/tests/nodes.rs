//! Node-level tests of the platform services: the AdServer's filtering
//! phase and auction, the ProfileStore's replication and fault injection,
//! and the exchange frontend's external auction, driven through minimal
//! purpose-built simulations.

#![allow(clippy::field_reassign_with_default)]

use adplatform::events::platform_registry;
use adplatform::model::{ExclusionReason, LineItem};
use adplatform::msg::{BidRequest, PlatformMsg};
use adplatform::nodes::adserver::AdServer;
use adplatform::nodes::profilestore::ProfileStore;
use scrub_agent::CostModel;
use scrub_core::config::ScrubConfig;
use scrub_server::AgentHarness;
use scrub_simnet::{Context, Node, NodeId, NodeMeta, Sim, SimTime, Topology};

/// Collects every message sent to it (plays the BidServer's role).
#[derive(Default)]
struct Sink {
    responses: Vec<PlatformMsg>,
}

impl Node<PlatformMsg> for Sink {
    fn on_message(&mut self, _ctx: &mut Context<'_, PlatformMsg>, _from: NodeId, msg: PlatformMsg) {
        self.responses.push(msg);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn request(user: u64, exchange: u32, country: &str, floor: f64) -> BidRequest {
    BidRequest {
        request_id: 42,
        user_id: user,
        segments: vec![0, 1],
        exchange_id: exchange,
        floor_price: floor,
        publisher: "news".into(),
        country: country.into(),
        city: "porto".into(),
        sent_at: SimTime::ZERO,
    }
}

fn adserver_sim(line_items: Vec<LineItem>) -> (Sim<PlatformMsg>, NodeId, NodeId) {
    let (_registry, events) = platform_registry();
    let mut sim: Sim<PlatformMsg> = Sim::new(Topology::default(), 1);
    let sink = sim.add_node(
        NodeMeta::new("sink", "BidServers", "DC1"),
        Box::<Sink>::default(),
    );
    let harness = AgentHarness::new("ad-test", ScrubConfig::default(), sink);
    let ad = sim.add_node(
        NodeMeta::new("ad-test", "AdServers", "DC1"),
        Box::new(AdServer::new(
            harness,
            events,
            0,
            1.0,
            line_items,
            100,
            false,
            CostModel::default(),
        )),
    );
    (sim, ad, sink)
}

fn run_request(
    sim: &mut Sim<PlatformMsg>,
    ad: NodeId,
    sink: NodeId,
    req: BidRequest,
) -> Option<adplatform::Win> {
    let before = sim.node_as::<Sink>(sink).unwrap().responses.len();
    sim.inject(
        ad,
        sink,
        PlatformMsg::AdRequest {
            req,
            reply_to: sink,
        },
    );
    sim.run_all(10_000);
    let sinknode = sim.node_as::<Sink>(sink).unwrap();
    match &sinknode.responses[before..] {
        [PlatformMsg::AdResponse { winner, .. }] => *winner,
        other => panic!("expected one AdResponse, got {other:?}"),
    }
}

#[test]
fn filtering_respects_targeting() {
    let mut li = LineItem::new(1, 1, 1.0);
    li.targeting.countries = vec!["us".into()];
    let (mut sim, ad, sink) = adserver_sim(vec![li]);

    // wrong country: excluded, no bid
    assert!(run_request(&mut sim, ad, sink, request(7, 0, "pt", 0.1)).is_none());
    // right country: wins
    let w = run_request(&mut sim, ad, sink, request(7, 0, "us", 0.1)).unwrap();
    assert_eq!(w.line_item_id, 1);
    let node = sim.node_as::<AdServer>(ad).unwrap();
    assert_eq!(node.no_bid, 1);
    assert_eq!(node.auctions_run, 1);
    assert_eq!(node.exclusions_emitted, 1);
}

#[test]
fn price_floor_excludes_cheap_line_items() {
    let li = LineItem::new(1, 1, 0.3);
    let (mut sim, ad, sink) = adserver_sim(vec![li]);
    assert!(run_request(&mut sim, ad, sink, request(7, 0, "us", 0.5)).is_none());
    assert!(run_request(&mut sim, ad, sink, request(7, 0, "us", 0.1)).is_some());
}

#[test]
fn budget_exhaustion_excludes_over_time() {
    let mut li = LineItem::new(1, 1, 1.0);
    li.daily_budget = 2.0; // two wins at ~1.0 each exhaust it
    let (mut sim, ad, sink) = adserver_sim(vec![li]);
    let mut wins = 0;
    for _ in 0..10 {
        if run_request(&mut sim, ad, sink, request(7, 0, "us", 0.1)).is_some() {
            wins += 1;
        }
    }
    assert!((2..=3).contains(&wins), "budget did not bind: {wins} wins");
}

#[test]
fn frequency_cap_binds_after_replicated_update() {
    let mut li = LineItem::new(1, 1, 1.0);
    li.freq_cap = Some(1);
    let (mut sim, ad, sink) = adserver_sim(vec![li]);

    // first request wins (count 0)
    assert!(run_request(&mut sim, ad, sink, request(7, 0, "us", 0.1)).is_some());
    // simulate the ProfileStore's replicated count update
    sim.inject(
        ad,
        sink,
        PlatformMsg::FreqUpdate {
            user_id: 7,
            line_item_id: 1,
            day: 0,
            count: 1,
        },
    );
    sim.run_all(100);
    // now the cap binds for user 7 but not user 8
    assert!(run_request(&mut sim, ad, sink, request(7, 0, "us", 0.1)).is_none());
    assert!(run_request(&mut sim, ad, sink, request(8, 0, "us", 0.1)).is_some());
}

#[test]
fn auction_picks_highest_scored_price() {
    // λ-style setup: a cheap item never beats expensive competitors
    let cheap = LineItem::new(1, 1, 0.4);
    let pricey = LineItem::new(2, 2, 1.0);
    let (mut sim, ad, sink) = adserver_sim(vec![cheap, pricey]);
    for _ in 0..50 {
        let w = run_request(&mut sim, ad, sink, request(9, 0, "us", 0.1)).unwrap();
        assert_eq!(w.line_item_id, 2, "cheap item won against dominant band");
        // winner price stays inside the ±15% advisory band
        assert!((0.85..=1.15).contains(&w.bid_price));
    }
}

#[test]
fn profile_store_replicates_and_injects_fault() {
    let mut sim: Sim<PlatformMsg> = Sim::new(Topology::default(), 2);
    let sink = sim.add_node(
        NodeMeta::new("ad", "AdServers", "DC1"),
        Box::<Sink>::default(),
    );
    let store_id = sim.add_node(
        NodeMeta::new("profile", "ProfileStore", "DC1"),
        Box::new(ProfileStore::new(Some(2))), // drop even user ids
    );
    sim.node_as_mut::<ProfileStore>(store_id)
        .unwrap()
        .set_adservers(vec![sink]);

    for user in [1u64, 2, 3, 4] {
        sim.inject(
            store_id,
            sink,
            PlatformMsg::UpdateProfile {
                user_id: user,
                line_item_id: 9,
                ts_ms: 1_000,
            },
        );
    }
    sim.run_all(1_000);
    let store = sim.node_as::<ProfileStore>(store_id).unwrap();
    assert_eq!(store.updates_applied, 2); // users 1, 3
    assert_eq!(store.updates_dropped, 2); // users 2, 4
    assert_eq!(store.count(1, 9, 0), 1);
    assert_eq!(store.count(2, 9, 0), 0); // the planted fault
                                         // replication reached the AdServer-side sink
    let sinknode = sim.node_as::<Sink>(sink).unwrap();
    let freq_updates = sinknode
        .responses
        .iter()
        .filter(|m| matches!(m, PlatformMsg::FreqUpdate { .. }))
        .count();
    assert_eq!(freq_updates, 2);
}

#[test]
fn exclusion_reason_strings_round_trip_through_events() {
    // every reason the AdServer can emit parses back to a known label
    for r in [
        ExclusionReason::TargetingCountry,
        ExclusionReason::TargetingExchange,
        ExclusionReason::TargetingSegment,
        ExclusionReason::BudgetExhausted,
        ExclusionReason::FrequencyCap,
        ExclusionReason::PriceFloor,
    ] {
        assert!(!r.as_str().is_empty());
        assert!(r
            .as_str()
            .chars()
            .all(|c| c.is_ascii_lowercase() || c == '_'));
    }
}
