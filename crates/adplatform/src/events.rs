//! Scrub event types emitted by the platform — the "tens of Scrub event
//! types" of §7, narrowed to the five the case studies use: `bid`,
//! `auction`, `exclusion`, `impression` and `click`.

use std::sync::Arc;

use scrub_core::error::ScrubResult;
use scrub_core::event::ToEvent;
use scrub_core::schema::{EventTypeId, SchemaRegistry};
use scrub_core::scrub_event;

scrub_event! {
    /// Bid response sent back to an ad exchange (Figure 1, extended with
    /// the fields the case-study queries reference).
    pub struct BidEvent("bid") {
        user_id: long,
        exchange_id: long,
        line_item_id: long,
        campaign_id: long,
        bid_price: double,
        country: string,
        city: string,
    }
}

scrub_event! {
    /// Internal auction at an AdServer (§8.5): the participating line
    /// items with their score-adjusted prices, and the winner.
    pub struct AuctionEvent("auction") {
        line_item_ids: list_long,
        bid_prices: list_double,
        winner_line_item_id: long,
        winner_price: double,
        exchange_id: long,
    }
}

scrub_event! {
    /// A line item excluded during the filtering phase (§8.4), with the
    /// reason.
    pub struct ExclusionEvent("exclusion") {
        line_item_id: long,
        campaign_id: long,
        reason: string,
        exchange_id: long,
        publisher: string,
    }
}

scrub_event! {
    /// An ad actually shown to a user (PresentationServers, §7).
    pub struct ImpressionEvent("impression") {
        user_id: long,
        line_item_id: long,
        campaign_id: long,
        exchange_id: long,
        cost: double,
        model: string,
    }
}

scrub_event! {
    /// A user clicked an ad.
    pub struct ClickEvent("click") {
        user_id: long,
        line_item_id: long,
        campaign_id: long,
        exchange_id: long,
        model: string,
    }
}

/// Resolved event type ids for the platform's event types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlatformEvents {
    pub bid: EventTypeId,
    pub auction: EventTypeId,
    pub exclusion: EventTypeId,
    pub impression: EventTypeId,
    pub click: EventTypeId,
}

/// Register all platform event types (idempotent) and return their ids.
pub fn register_platform_events(reg: &SchemaRegistry) -> ScrubResult<PlatformEvents> {
    Ok(PlatformEvents {
        bid: reg.register(BidEvent::schema())?,
        auction: reg.register(AuctionEvent::schema())?,
        exclusion: reg.register(ExclusionEvent::schema())?,
        impression: reg.register(ImpressionEvent::schema())?,
        click: reg.register(ClickEvent::schema())?,
    })
}

/// A shared schema registry pre-populated with the platform event types.
pub fn platform_registry() -> (Arc<SchemaRegistry>, PlatformEvents) {
    let reg = SchemaRegistry::new();
    let events = register_platform_events(&reg).expect("static schemas are valid");
    (Arc::new(reg), events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_complete() {
        let (reg, ev) = platform_registry();
        assert_eq!(reg.len(), 5);
        let again = register_platform_events(&reg).unwrap();
        assert_eq!(ev, again);
        assert_eq!(reg.id_of("bid"), Some(ev.bid));
        assert_eq!(reg.id_of("impression"), Some(ev.impression));
    }

    #[test]
    fn schemas_match_usage() {
        let s = BidEvent::schema();
        assert_eq!(s.field_index("bid_price"), Some(4));
        let s = ExclusionEvent::schema();
        assert!(s.field_index("reason").is_some());
        let s = AuctionEvent::schema();
        assert!(s.field_index("line_item_ids").is_some());
    }

    #[test]
    fn events_conform_to_schema() {
        let values = BidEvent {
            user_id: 1,
            exchange_id: 2,
            line_item_id: 3,
            campaign_id: 4,
            bid_price: 1.5,
            country: "us".into(),
            city: "san jose".into(),
        }
        .into_values();
        BidEvent::schema().check_tuple(&values).unwrap();
        let values = AuctionEvent {
            line_item_ids: vec![1, 2],
            bid_prices: vec![0.5, 0.7],
            winner_line_item_id: 2,
            winner_price: 0.7,
            exchange_id: 1,
        }
        .into_values();
        AuctionEvent::schema().check_tuple(&values).unwrap();
    }
}
