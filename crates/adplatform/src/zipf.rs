//! Zipf-distributed sampling for the simulated user population.
//!
//! Web-audience activity is heavy-tailed; page views are drawn from a Zipf
//! distribution over users so that the per-user bid-request histogram of
//! the spam case study (§8.1, Figure 10) exhibits the paper's
//! "exponentially decreasing" human tail against which bots stand out.

use rand::Rng;

/// Zipf(α) sampler over `{0, 1, ..., n-1}` using a precomputed CDF
/// (exact inverse-CDF sampling; n is at most a few hundred thousand).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` items with exponent `alpha > 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(alpha > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw one index (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the support is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn head_is_heavier_than_tail() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[500]);
        // rank-0 share for alpha=1.1 over 1000 items is ~13%
        assert!(counts[0] > 8_000, "head count {}", counts[0]);
    }

    #[test]
    fn all_indices_in_range() {
        let z = Zipf::new(10, 0.8);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn single_item_support() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
