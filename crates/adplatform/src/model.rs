//! Domain model of the simulated ad bidding platform (§7): exchanges,
//! campaigns, line items with targeting / budgets / frequency caps, and the
//! exclusion reasons produced by the AdServers' filtering phase.

use serde::{Deserialize, Serialize};

/// An ad exchange sending bid requests to the DSP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exchange {
    /// Numeric id used in events.
    pub id: u32,
    /// Human-readable name ("A", "B", ...).
    pub name: String,
    /// The exchange starts sending traffic at this virtual time (ms);
    /// models new-exchange onboarding (§8.2).
    pub live_from_ms: i64,
    /// Relative traffic share once live (weights, not normalized).
    pub traffic_weight: f64,
    /// Price floor for its auctions.
    pub floor_price: f64,
}

/// Targeting criteria of a line item — deliberately simple but structurally
/// faithful: country list, exchange list, and user-segment requirement.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Targeting {
    /// Countries the ad may serve in (empty = all).
    pub countries: Vec<String>,
    /// Exchanges the ad may serve on (empty = all).
    pub exchanges: Vec<u32>,
    /// Required user segment (None = any user).
    pub segment: Option<u32>,
}

impl Targeting {
    /// Does a request with these attributes pass?
    pub fn passes(
        &self,
        country: &str,
        exchange: u32,
        user_segments: &[u32],
    ) -> Result<(), ExclusionReason> {
        if !self.countries.is_empty() && !self.countries.iter().any(|c| c == country) {
            return Err(ExclusionReason::TargetingCountry);
        }
        if !self.exchanges.is_empty() && !self.exchanges.contains(&exchange) {
            return Err(ExclusionReason::TargetingExchange);
        }
        if let Some(seg) = self.segment {
            if !user_segments.contains(&seg) {
                return Err(ExclusionReason::TargetingSegment);
            }
        }
        Ok(())
    }
}

/// Why a line item was excluded during the filtering phase (§8.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExclusionReason {
    /// Country not targeted.
    TargetingCountry,
    /// Exchange not targeted.
    TargetingExchange,
    /// Required user segment missing.
    TargetingSegment,
    /// Daily budget exhausted.
    BudgetExhausted,
    /// Per-user frequency cap reached (§8.6).
    FrequencyCap,
    /// Advisory price below the exchange's floor.
    PriceFloor,
}

impl ExclusionReason {
    /// Event-field string for this reason.
    pub fn as_str(self) -> &'static str {
        match self {
            ExclusionReason::TargetingCountry => "targeting_country",
            ExclusionReason::TargetingExchange => "targeting_exchange",
            ExclusionReason::TargetingSegment => "targeting_segment",
            ExclusionReason::BudgetExhausted => "budget_exhausted",
            ExclusionReason::FrequencyCap => "frequency_cap",
            ExclusionReason::PriceFloor => "price_floor",
        }
    }
}

/// One line item (the unit of ad delivery within a campaign).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineItem {
    /// Unique id.
    pub id: u64,
    /// Owning campaign.
    pub campaign_id: u64,
    /// Preconfigured advisory bid price (§8.5): actual bids move in a
    /// narrow band around it.
    pub advisory_price: f64,
    /// Targeting criteria.
    pub targeting: Targeting,
    /// Daily budget in currency units (impression costs deplete it).
    pub daily_budget: f64,
    /// Max ads shown per user per day (None = uncapped) (§8.6).
    pub freq_cap: Option<u32>,
    /// True click-through probability of the ad.
    pub base_ctr: f64,
}

impl LineItem {
    /// A plain line item with permissive defaults.
    pub fn new(id: u64, campaign_id: u64, advisory_price: f64) -> Self {
        LineItem {
            id,
            campaign_id,
            advisory_price,
            targeting: Targeting::default(),
            daily_budget: f64::INFINITY,
            freq_cap: None,
            base_ctr: 0.01,
        }
    }
}

/// Milliseconds in a (simulated) day — used by budgets and frequency caps.
pub const DAY_MS: i64 = 86_400_000;

/// The day index of a timestamp.
pub fn day_of(ts_ms: i64) -> i64 {
    ts_ms.div_euclid(DAY_MS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targeting_pass_and_exclusion_reasons() {
        let t = Targeting {
            countries: vec!["us".into()],
            exchanges: vec![1, 2],
            segment: Some(7),
        };
        assert_eq!(t.passes("us", 1, &[7]), Ok(()));
        assert_eq!(
            t.passes("pt", 1, &[7]),
            Err(ExclusionReason::TargetingCountry)
        );
        assert_eq!(
            t.passes("us", 3, &[7]),
            Err(ExclusionReason::TargetingExchange)
        );
        assert_eq!(
            t.passes("us", 1, &[8]),
            Err(ExclusionReason::TargetingSegment)
        );
    }

    #[test]
    fn empty_targeting_passes_everything() {
        let t = Targeting::default();
        assert_eq!(t.passes("zz", 99, &[]), Ok(()));
    }

    #[test]
    fn day_arithmetic() {
        assert_eq!(day_of(0), 0);
        assert_eq!(day_of(DAY_MS - 1), 0);
        assert_eq!(day_of(DAY_MS), 1);
        assert_eq!(day_of(-1), -1);
    }

    #[test]
    fn reason_strings_unique() {
        use std::collections::HashSet;
        let all = [
            ExclusionReason::TargetingCountry,
            ExclusionReason::TargetingExchange,
            ExclusionReason::TargetingSegment,
            ExclusionReason::BudgetExhausted,
            ExclusionReason::FrequencyCap,
            ExclusionReason::PriceFloor,
        ];
        let set: HashSet<&str> = all.iter().map(|r| r.as_str()).collect();
        assert_eq!(set.len(), all.len());
    }
}
