//! Platform configuration: cluster shape, workload, campaigns, anomalies.

use scrub_agent::CostModel;
use scrub_core::config::ScrubConfig;
use scrub_simnet::FaultPlan;

use crate::model::{Exchange, LineItem};

/// A spam bot (§8.1): issues large batches of page views at high frequency
/// — unlike humans, whose page views are Zipf-paced.
#[derive(Debug, Clone, PartialEq)]
pub struct BotSpec {
    /// Index of the bot (user id becomes `n_users + index`).
    pub index: u64,
    /// Exchange whose frontend the bot hits.
    pub exchange_id: u32,
    /// First batch at this time (ms).
    pub start_ms: i64,
    /// Batch period (ms).
    pub period_ms: i64,
    /// Page views per batch.
    pub batch_pages: u32,
}

/// The simulated platform's knobs.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Data centers hosting the DSP.
    pub dcs: Vec<String>,
    /// BidServers per DC.
    pub bidservers_per_dc: usize,
    /// AdServers per DC.
    pub adservers_per_dc: usize,
    /// PresentationServers per DC.
    pub presservers_per_dc: usize,
    /// Human user population size.
    pub n_users: usize,
    /// Zipf exponent of user activity.
    pub zipf_alpha: f64,
    /// Number of user segments (user u belongs to segment u % n_segments).
    pub n_segments: u32,
    /// Aggregate human page views per second per exchange frontend.
    pub page_views_per_sec: f64,
    /// Ads per page: uniform in 1..=this.
    pub max_ads_per_page: u32,
    /// The exchanges.
    pub exchanges: Vec<Exchange>,
    /// The line items (across all campaigns).
    pub line_items: Vec<LineItem>,
    /// Spam bots.
    pub bots: Vec<BotSpec>,
    /// Pods (adserver index mod pod count) running targeting model "B";
    /// the rest run "A" (§8.3).
    pub model_b_pods: Vec<usize>,
    /// Realized-CTR multiplier of model A.
    pub model_a_ctr_mult: f64,
    /// Realized-CTR multiplier of model B.
    pub model_b_ctr_mult: f64,
    /// Probability scale of winning the external auction.
    pub external_win_scale: f64,
    /// BidServer base service time per request (µs).
    pub bidserver_service_us: i64,
    /// AdServer base service time per request (µs).
    pub adserver_service_us: i64,
    /// Whether Scrub agent work inflates service times (the honest
    /// overhead model; disable to measure a Scrub-free baseline).
    pub scrub_overhead_enabled: bool,
    /// The agent cost model used for that inflation.
    pub cost_model: CostModel,
    /// Scrub deployment configuration.
    pub scrub: ScrubConfig,
    /// §8.6 bug: frequency-count updates for users with
    /// `user_id % modulo == 0` are silently dropped at the ProfileStore.
    pub corrupt_freq_user_mod: Option<u64>,
    /// Rollout-regression scenario (§1: "new versions of the software
    /// often introduce bugs"): pods in this list run the new build.
    pub rollout_pods: Vec<usize>,
    /// The new build activates (and its bug with it) at this time (ms).
    pub rollout_at_ms: i64,
    /// The planted defect: the new build multiplies its winning bid price
    /// by this factor (1.0 = healthy rollout).
    pub rollout_price_bug: f64,
    /// Fault schedule injected into the simulator (chaos scenarios);
    /// `None` leaves the network perfect.
    pub faults: Option<FaultPlan>,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            seed: 7,
            dcs: vec!["DC1".into(), "DC2".into()],
            bidservers_per_dc: 2,
            adservers_per_dc: 2,
            presservers_per_dc: 2,
            n_users: 2_000,
            zipf_alpha: 1.05,
            n_segments: 8,
            page_views_per_sec: 50.0,
            max_ads_per_page: 3,
            exchanges: default_exchanges(),
            line_items: default_line_items(),
            bots: Vec::new(),
            model_b_pods: Vec::new(),
            model_a_ctr_mult: 1.0,
            model_b_ctr_mult: 1.0,
            external_win_scale: 0.8,
            bidserver_service_us: 300,
            adserver_service_us: 2_000,
            scrub_overhead_enabled: true,
            cost_model: CostModel::default(),
            scrub: ScrubConfig::default(),
            corrupt_freq_user_mod: None,
            rollout_pods: Vec::new(),
            rollout_at_ms: 0,
            rollout_price_bug: 1.0,
            faults: None,
        }
    }
}

/// Four exchanges, all live from the start.
pub fn default_exchanges() -> Vec<Exchange> {
    ["A", "B", "C", "D"]
        .iter()
        .enumerate()
        .map(|(i, name)| Exchange {
            id: i as u32,
            name: (*name).into(),
            live_from_ms: 0,
            traffic_weight: 1.0,
            floor_price: 0.2 + 0.1 * i as f64,
        })
        .collect()
}

/// A default campaign mix: 40 line items across 10 campaigns with varied
/// advisory prices, country/segment targeting, budgets and caps.
pub fn default_line_items() -> Vec<LineItem> {
    let countries = ["us", "pt", "de", "jp"];
    (0..40u64)
        .map(|i| {
            let mut li = LineItem::new(1000 + i, 100 + i / 4, 0.5 + 0.05 * (i % 12) as f64);
            if i % 3 == 0 {
                li.targeting.countries = vec![countries[(i % 4) as usize].into()];
            }
            if i % 5 == 0 {
                li.targeting.segment = Some((i % 8) as u32);
            }
            if i % 7 == 0 {
                li.targeting.exchanges = vec![(i % 4) as u32, ((i + 1) % 4) as u32];
            }
            li.base_ctr = 0.005 + 0.002 * (i % 5) as f64;
            li
        })
        .collect()
}

impl PlatformConfig {
    /// Total AdServer pods in the deployment.
    pub fn total_pods(&self) -> usize {
        self.dcs.len() * self.adservers_per_dc
    }

    /// The model label ("A"/"B") a pod runs.
    pub fn pod_model(&self, pod: usize) -> &'static str {
        if self.model_b_pods.contains(&pod) {
            "B"
        } else {
            "A"
        }
    }

    /// Realized-CTR multiplier of a pod's model.
    pub fn pod_ctr_mult(&self, pod: usize) -> f64 {
        if self.model_b_pods.contains(&pod) {
            self.model_b_ctr_mult
        } else {
            self.model_a_ctr_mult
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn defaults_consistent() {
        let c = PlatformConfig::default();
        assert_eq!(c.total_pods(), 4);
        assert_eq!(c.exchanges.len(), 4);
        assert_eq!(c.line_items.len(), 40);
        assert_eq!(c.pod_model(0), "A");
    }

    #[test]
    fn pod_models() {
        let mut c = PlatformConfig::default();
        c.model_b_pods = vec![1, 3];
        assert_eq!(c.pod_model(1), "B");
        assert_eq!(c.pod_model(2), "A");
        assert_eq!(c.pod_ctr_mult(1), c.model_b_ctr_mult);
    }
}
