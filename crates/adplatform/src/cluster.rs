//! Cluster builder: instantiates the whole platform — exchange frontends,
//! BidServers, AdServers, PresentationServers, the ProfileStore — plus a
//! full Scrub deployment, on the discrete-event simulator.

#![allow(clippy::field_reassign_with_default)]

use std::sync::Arc;

use scrub_core::schema::SchemaRegistry;
use scrub_server::{deploy_central, deploy_server, AgentHarness, ScrubDeployment};
use scrub_simnet::{NodeId, NodeMeta, Sim, Topology};

use crate::config::PlatformConfig;
use crate::events::{platform_registry, PlatformEvents};
use crate::msg::PlatformMsg;
use crate::nodes::adserver::AdServer;
use crate::nodes::bidserver::BidServer;
use crate::nodes::presentation::PresentationServer;
use crate::nodes::profilestore::ProfileStore;
use crate::nodes::traffic::ExchangeFrontend;

/// Service name of the BidServers.
pub const SVC_BID: &str = "BidServers";
/// Service name of the AdServers.
pub const SVC_AD: &str = "AdServers";
/// Service name of the PresentationServers.
pub const SVC_PRES: &str = "PresentationServers";
/// Service name of the ProfileStore.
pub const SVC_PROFILE: &str = "ProfileStore";
/// Service name of the exchange frontends (external to the DSP).
pub const SVC_EXCHANGE: &str = "Exchanges";

/// A built platform: the simulator plus all the handles experiments need.
pub struct Platform {
    /// The simulator (run it!).
    pub sim: Sim<PlatformMsg>,
    /// Scrub deployment handles (query server + central).
    pub scrub: ScrubDeployment,
    /// Shared event-schema registry.
    pub registry: Arc<SchemaRegistry>,
    /// Resolved platform event type ids.
    pub events: PlatformEvents,
    /// Exchange frontends, in exchange order.
    pub frontends: Vec<NodeId>,
    /// BidServers.
    pub bidservers: Vec<NodeId>,
    /// AdServers (index = pod).
    pub adservers: Vec<NodeId>,
    /// PresentationServers (index = pod, 1:1 with AdServers when sizes
    /// match).
    pub presservers: Vec<NodeId>,
    /// The ProfileStore.
    pub profile: NodeId,
    /// The configuration the platform was built with.
    pub config: PlatformConfig,
}

impl Platform {
    /// Host names of AdServers running the new (true) or old (false) build
    /// in a rollout scenario.
    pub fn adserver_hosts_for_rollout(&self, new_build: bool) -> Vec<String> {
        self.adservers
            .iter()
            .enumerate()
            .filter(|(pod, _)| self.config.rollout_pods.contains(pod) == new_build)
            .map(|(_, id)| self.sim.metas()[id.0 as usize].name.clone())
            .collect()
    }

    /// Host names of the PresentationServers in pods running `model`.
    pub fn pres_hosts_for_model(&self, model: &str) -> Vec<String> {
        self.presservers
            .iter()
            .enumerate()
            .filter(|(pod, _)| self.config.pod_model(*pod) == model)
            .map(|(_, id)| self.sim.metas()[id.0 as usize].name.clone())
            .collect()
    }

    /// All recorded bid latencies (ms timestamp, µs latency), across
    /// frontends, sorted by time.
    pub fn all_latencies(&self) -> Vec<(i64, i64)> {
        let mut out = Vec::new();
        for &f in &self.frontends {
            if let Some(fe) = self.sim.node_as::<ExchangeFrontend>(f) {
                out.extend(fe.latencies.iter().copied());
            }
        }
        out.sort_unstable();
        out
    }

    /// Per-host Scrub agent statistics across all instrumented services.
    pub fn agent_stats(&self) -> Vec<(String, scrub_agent::StatsSnapshot)> {
        let mut out = Vec::new();
        for &id in &self.bidservers {
            if let Some(n) = self.sim.node_as::<BidServer>(id) {
                out.push((
                    self.sim.metas()[id.0 as usize].name.clone(),
                    n.harness.agent().stats().snapshot(),
                ));
            }
        }
        for &id in &self.adservers {
            if let Some(n) = self.sim.node_as::<AdServer>(id) {
                out.push((
                    self.sim.metas()[id.0 as usize].name.clone(),
                    n.harness.agent().stats().snapshot(),
                ));
            }
        }
        for &id in &self.presservers {
            if let Some(n) = self.sim.node_as::<PresentationServer>(id) {
                out.push((
                    self.sim.metas()[id.0 as usize].name.clone(),
                    n.harness.agent().stats().snapshot(),
                ));
            }
        }
        out
    }

    /// How many events of each type the platform produced (tap call sites,
    /// regardless of any query being active) — the population the logging
    /// baseline would have to record in full.
    pub fn event_production(&self) -> EventProduction {
        let mut p = EventProduction::default();
        for &id in &self.frontends {
            if let Some(n) = self.sim.node_as::<ExchangeFrontend>(id) {
                p.bids += n.bids;
            }
        }
        for &id in &self.adservers {
            if let Some(n) = self.sim.node_as::<AdServer>(id) {
                p.auctions += n.auctions_run;
                p.exclusions += n.exclusions_emitted;
            }
        }
        for &id in &self.presservers {
            if let Some(n) = self.sim.node_as::<PresentationServer>(id) {
                p.impressions += n.impressions;
                p.clicks += n.clicks;
            }
        }
        p
    }
}

/// Per-type event production counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventProduction {
    /// `bid` events (bid responses with a winner).
    pub bids: u64,
    /// `auction` events.
    pub auctions: u64,
    /// `exclusion` events.
    pub exclusions: u64,
    /// `impression` events.
    pub impressions: u64,
    /// `click` events.
    pub clicks: u64,
}

impl EventProduction {
    /// Total events across types.
    pub fn total(&self) -> u64 {
        self.bids + self.auctions + self.exclusions + self.impressions + self.clicks
    }
}

/// Build the platform per `config`.
pub fn build_platform(config: PlatformConfig) -> Platform {
    let (registry, events) = platform_registry();
    let mut topology = Topology::default();
    // cross-continental DC pairs stay at the default 60 ms
    topology.intra_dc_us = 250;
    let mut sim: Sim<PlatformMsg> = Sim::new(topology, config.seed);

    // Scrub central first: app hosts need its address.
    let central = deploy_central(&mut sim, &registry, config.scrub.clone(), &config.dcs[0]);

    // ProfileStore (AdServer wiring patched below).
    let profile = sim.add_node(
        NodeMeta::new("profile-0", SVC_PROFILE, &config.dcs[0]),
        Box::new(ProfileStore::new(config.corrupt_freq_user_mod)),
    );

    // AdServers: one pod per server, round-robin across DCs.
    let mut adservers = Vec::new();
    let total_pods = config.total_pods();
    for pod in 0..total_pods {
        let dc = &config.dcs[pod % config.dcs.len()];
        let name = format!("ad-{dc}-{pod}");
        let harness = AgentHarness::new(name.clone(), config.scrub.clone(), central);
        let mut node = AdServer::new(
            harness,
            events,
            pod,
            config.pod_ctr_mult(pod),
            config.line_items.clone(),
            config.adserver_service_us,
            config.scrub_overhead_enabled,
            config.cost_model,
        );
        if config.rollout_pods.contains(&pod) {
            node.set_rollout_bug(config.rollout_at_ms, config.rollout_price_bug);
        }
        adservers.push(sim.add_node(NodeMeta::new(name, SVC_AD, dc), Box::new(node)));
    }

    // PresentationServers (paired with pods).
    let mut presservers = Vec::new();
    let total_pres = config.dcs.len() * config.presservers_per_dc;
    for pod in 0..total_pres {
        let dc = &config.dcs[pod % config.dcs.len()];
        let name = format!("pres-{dc}-{pod}");
        let harness = AgentHarness::new(name.clone(), config.scrub.clone(), central);
        let model = config.pod_model(pod);
        let node = PresentationServer::new(harness, events, model, profile);
        presservers.push(sim.add_node(NodeMeta::new(name, SVC_PRES, dc), Box::new(node)));
    }

    // BidServers.
    let mut bidservers = Vec::new();
    let total_bid = config.dcs.len() * config.bidservers_per_dc;
    for i in 0..total_bid {
        let dc = &config.dcs[i % config.dcs.len()];
        let name = format!("bid-{dc}-{i}");
        let harness = AgentHarness::new(name.clone(), config.scrub.clone(), central);
        // prefer same-DC AdServers; fall back to all
        let local: Vec<NodeId> = adservers
            .iter()
            .copied()
            .filter(|id| sim.metas()[id.0 as usize].dc == *dc)
            .collect();
        let targets = if local.is_empty() {
            adservers.clone()
        } else {
            local
        };
        let node = BidServer::new(
            harness,
            events,
            targets,
            config.bidserver_service_us,
            config.scrub_overhead_enabled,
            config.cost_model,
        );
        bidservers.push(sim.add_node(NodeMeta::new(name, SVC_BID, dc), Box::new(node)));
    }

    // Exchange frontends.
    let mut frontends = Vec::new();
    for ex in &config.exchanges {
        let dc = &config.dcs[ex.id as usize % config.dcs.len()];
        let name = format!("exch-{}", ex.name);
        let bots = config
            .bots
            .iter()
            .filter(|b| b.exchange_id == ex.id)
            .cloned()
            .collect();
        // weight traffic by the exchange's share
        let total_weight: f64 = config
            .exchanges
            .iter()
            .map(|e| e.traffic_weight)
            .sum::<f64>()
            .max(1e-9);
        let rate = config.page_views_per_sec * ex.traffic_weight / total_weight;
        let local_bids: Vec<NodeId> = bidservers
            .iter()
            .copied()
            .filter(|id| sim.metas()[id.0 as usize].dc == *dc)
            .collect();
        let node = ExchangeFrontend::new(
            ex.clone(),
            if local_bids.is_empty() {
                bidservers.clone()
            } else {
                local_bids
            },
            presservers.clone(),
            config.n_users,
            config.zipf_alpha,
            config.n_segments,
            rate,
            config.max_ads_per_page,
            bots,
            config.external_win_scale,
        );
        frontends.push(sim.add_node(NodeMeta::new(name, SVC_EXCHANGE, dc), Box::new(node)));
    }

    // Wire ProfileStore replication now that AdServers exist.
    sim.node_as_mut::<ProfileStore>(profile)
        .expect("profile node")
        .set_adservers(adservers.clone());

    // Query server last: it snapshots the host inventory.
    let scrub = deploy_server(
        &mut sim,
        registry.clone(),
        config.scrub.clone(),
        central,
        &config.dcs[0],
    );

    // Chaos: install the scenario's fault schedule, if any.
    if let Some(plan) = config.faults.clone() {
        sim.set_fault_plan(plan);
    }

    Platform {
        sim,
        scrub,
        registry,
        events,
        frontends,
        bidservers,
        adservers,
        presservers,
        profile,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrub_simnet::SimTime;

    #[test]
    fn platform_builds_and_serves_traffic() {
        let mut cfg = PlatformConfig::default();
        cfg.page_views_per_sec = 20.0;
        let mut p = build_platform(cfg);
        p.sim.run_until(SimTime::from_secs(30));

        let handled: u64 = p
            .bidservers
            .iter()
            .map(|&id| p.sim.node_as::<BidServer>(id).unwrap().requests_handled)
            .sum();
        assert!(handled > 300, "only {handled} requests in 30s");

        let auctions: u64 = p
            .adservers
            .iter()
            .map(|&id| p.sim.node_as::<AdServer>(id).unwrap().auctions_run)
            .sum();
        assert!(auctions > 0, "no auctions ran");

        let impressions: u64 = p
            .presservers
            .iter()
            .map(|&id| p.sim.node_as::<PresentationServer>(id).unwrap().impressions)
            .sum();
        assert!(impressions > 0, "no impressions served");

        // latencies respect the SLO ballpark (AdServer 2 ms + network)
        let lats = p.all_latencies();
        assert!(!lats.is_empty());
        let max = lats.iter().map(|(_, l)| *l).max().unwrap();
        assert!(max < 20_000, "worst bid latency {max}µs blows the SLO");
    }

    #[test]
    fn profile_counts_flow_back() {
        let mut cfg = PlatformConfig::default();
        cfg.page_views_per_sec = 50.0;
        // tight cap so it actually binds
        for li in cfg.line_items.iter_mut() {
            li.freq_cap = Some(1);
        }
        let mut p = build_platform(cfg);
        p.sim.run_until(SimTime::from_secs(30));
        let store = p.sim.node_as::<ProfileStore>(p.profile).unwrap();
        assert!(store.updates_applied > 0);
        assert_eq!(store.updates_dropped, 0);
    }

    #[test]
    fn corruption_drops_updates() {
        let mut cfg = PlatformConfig::default();
        cfg.page_views_per_sec = 50.0;
        cfg.corrupt_freq_user_mod = Some(2);
        let mut p = build_platform(cfg);
        p.sim.run_until(SimTime::from_secs(20));
        let store = p.sim.node_as::<ProfileStore>(p.profile).unwrap();
        assert!(store.updates_dropped > 0, "fault not exercised");
    }

    #[test]
    fn model_hosts_resolve() {
        let mut cfg = PlatformConfig::default();
        cfg.model_b_pods = vec![1, 3];
        let p = build_platform(cfg);
        let a = p.pres_hosts_for_model("A");
        let b = p.pres_hosts_for_model("B");
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert!(a.iter().all(|h| !b.contains(h)));
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = || {
            let mut cfg = PlatformConfig::default();
            cfg.page_views_per_sec = 10.0;
            let mut p = build_platform(cfg);
            p.sim.run_until(SimTime::from_secs(10));
            let handled: u64 = p
                .bidservers
                .iter()
                .map(|&id| p.sim.node_as::<BidServer>(id).unwrap().requests_handled)
                .sum();
            (handled, p.sim.events_processed())
        };
        assert_eq!(run(), run());
    }
}
