//! Scenario builders: one platform configuration per §8 case study, each
//! planting the anomaly the corresponding Scrub query is meant to surface.

#![allow(clippy::field_reassign_with_default)]

use crate::config::{BotSpec, PlatformConfig};
use crate::model::{Exchange, LineItem};

/// §8.1 Spam detection: a Zipf human population plus two bots issuing
/// large batches of page views at high frequency. Figure 10's query groups
/// bid requests by user over 10 s windows for 20 minutes.
pub fn spam() -> PlatformConfig {
    let mut cfg = PlatformConfig::default();
    cfg.seed = 81;
    cfg.n_users = 8_000;
    cfg.zipf_alpha = 0.7; // mild skew: most users see one page per window
    cfg.page_views_per_sec = 60.0;
    cfg.bots = vec![
        BotSpec {
            index: 0,
            exchange_id: 0,
            start_ms: 60_000,
            period_ms: 2_000,
            batch_pages: 120,
        },
        BotSpec {
            index: 1,
            exchange_id: 0,
            start_ms: 300_000,
            period_ms: 5_000,
            batch_pages: 250,
        },
    ];
    cfg
}

/// The user ids of the two spam bots in [`spam`].
pub fn spam_bot_user_ids(cfg: &PlatformConfig) -> Vec<u64> {
    cfg.bots
        .iter()
        .map(|b| cfg.n_users as u64 + b.index)
        .collect()
}

/// §8.2 Validating a new ad exchange: exchange D comes online at t = 550 s
/// while A–C have been live all along. Figure 12 counts impressions per
/// exchange over 10 s windows with 10% host × 10% event sampling.
pub fn new_exchange() -> PlatformConfig {
    let mut cfg = PlatformConfig::default();
    cfg.seed = 82;
    cfg.page_views_per_sec = 120.0;
    // enough hosts for 10% host sampling to be meaningful
    cfg.presservers_per_dc = 5;
    cfg.adservers_per_dc = 5;
    cfg.exchanges = ["A", "B", "C", "D"]
        .iter()
        .enumerate()
        .map(|(i, name)| Exchange {
            id: i as u32,
            name: (*name).into(),
            live_from_ms: if *name == "D" { 550_000 } else { 0 },
            traffic_weight: 1.0,
            floor_price: 0.25,
        })
        .collect();
    cfg
}

/// §8.3 A/B testing of ad targeting models: model B runs on half the pods
/// and realizes a ~35% better CTR at the same CPM. Figures 13–15 compute
/// daily CPM and CTR per model via server-list targeting.
pub fn ab_test() -> PlatformConfig {
    let mut cfg = PlatformConfig::default();
    cfg.seed = 83;
    cfg.page_views_per_sec = 250.0;
    cfg.adservers_per_dc = 2;
    cfg.presservers_per_dc = 2;
    cfg.model_b_pods = vec![1, 3];
    cfg.model_a_ctr_mult = 1.0;
    cfg.model_b_ctr_mult = 1.35;
    // a focal line item with permissive targeting so both models serve it
    let mut li = focal_line_item(5000, 1.2); // high advisory: wins often
    li.base_ctr = 0.05;
    cfg.line_items.push(li);
    cfg
}

/// The focal line item id used by [`ab_test`] queries.
pub const AB_LINE_ITEM: u64 = 5000;

/// §8.4 Line-item exclusions: the default campaign mix already produces a
/// spread of exclusion reasons; one line item is given narrow targeting so
/// its exclusion histogram is interesting.
pub fn exclusions() -> PlatformConfig {
    let mut cfg = PlatformConfig::default();
    cfg.seed = 84;
    cfg.page_views_per_sec = 80.0;
    let mut li = LineItem::new(EXCLUSION_LINE_ITEM, 900, 0.8);
    li.targeting.countries = vec!["us".into()];
    li.targeting.exchanges = vec![0, 1];
    li.targeting.segment = Some(3);
    li.daily_budget = 50.0; // small: budget exhaustion appears over time
    cfg.line_items.push(li);
    cfg
}

/// The line item whose exclusions §8.4's query inspects.
pub const EXCLUSION_LINE_ITEM: u64 = 6000;

/// §8.5 Line-item cannibalization: λ has relaxed targeting and budget but
/// an advisory price below every competitor's price band, so it always
/// loses the internal auction.
pub fn cannibalization() -> PlatformConfig {
    let mut cfg = PlatformConfig::default();
    cfg.seed = 85;
    cfg.page_views_per_sec = 80.0;
    // λ and four competitors with identical (permissive) targeting
    cfg.line_items.push(focal_line_item(LAMBDA_LINE_ITEM, 0.40));
    for (i, price) in [0.85, 0.95, 1.00, 1.10].iter().enumerate() {
        cfg.line_items
            .push(focal_line_item(LAMBDA_LINE_ITEM + 1 + i as u64, *price));
    }
    cfg
}

/// The cannibalized line item λ of §8.5.
pub const LAMBDA_LINE_ITEM: u64 = 7000;

/// §8.6 Incorrectly set field: a campaign capped at one ad per user per
/// day, but the ProfileStore silently drops frequency updates for one in
/// `CORRUPT_USER_MOD` users — exactly those users blow through the cap.
pub fn freq_cap() -> PlatformConfig {
    let mut cfg = PlatformConfig::default();
    cfg.seed = 86;
    cfg.n_users = 300; // small population so repeat impressions are common
    cfg.zipf_alpha = 0.9;
    cfg.page_views_per_sec = 120.0;
    let mut li = focal_line_item(CAPPED_LINE_ITEM, 1.4); // high price: wins often
    li.freq_cap = Some(1);
    cfg.line_items.push(li);
    cfg.corrupt_freq_user_mod = Some(CORRUPT_USER_MOD);
    cfg
}

/// §1-motivated rollout regression: at t = `ROLLOUT_AT_MS` half the
/// AdServers receive a new build whose (planted) bug inflates winning bid
/// prices 5x. Comparing AVG(bid.bid_price) between old-build and new-build
/// servers via the target clause exposes the regression within a window.
pub fn rollout_regression() -> PlatformConfig {
    let mut cfg = PlatformConfig::default();
    cfg.seed = 88;
    cfg.page_views_per_sec = 100.0;
    cfg.rollout_pods = vec![1, 3];
    cfg.rollout_at_ms = ROLLOUT_AT_MS;
    cfg.rollout_price_bug = 5.0;
    cfg
}

/// When the buggy build activates in [`rollout_regression`].
pub const ROLLOUT_AT_MS: i64 = 120_000;

/// Host crashed (and never restarted) by [`spam_under_chaos`].
pub const CHAOS_CRASHED_HOST: &str = "bid-DC2-1";
/// The [`spam_under_chaos`] DC1/DC2 partition window (seconds).
pub const CHAOS_PARTITION_SECS: (i64, i64) = (90, 105);
/// When [`CHAOS_CRASHED_HOST`] goes down (seconds).
pub const CHAOS_CRASH_AT_SECS: i64 = 120;

/// E16 chaos rerun of the §8.1 spam scenario: the same bot workload (the
/// second bot moved up to t = 100 s so short runs still see both) with the
/// network actively hostile —
///
/// * 5% message loss each way between the BidServers and ScrubCentral
///   (data batches *and* acks),
/// * a full DC1/DC2 partition from 90 s to 105 s, spanning several window
///   boundaries mid-query,
/// * one BidServer ([`CHAOS_CRASHED_HOST`]) crashed at 120 s and never
///   restarted.
///
/// Retry and grace knobs are tightened so retransmitted batches still land
/// inside the window grace; the crashed host leaves the estimator and the
/// summary reports coverage < 100% with widened Eq 1–3 bounds.
pub fn spam_under_chaos() -> PlatformConfig {
    use scrub_simnet::{FaultPlan, NodeSel, SimTime};

    let mut cfg = spam();
    cfg.seed = 89;
    cfg.bots[1].start_ms = 100_000;
    // faster retries + a wider window grace: one lost shipment can still be
    // retransmitted into its window
    cfg.scrub.agent_retry_base_ms = 500;
    cfg.scrub.window_grace_ms = 5_000;
    let central = NodeSel::Host("scrub-central".into());
    let bids = NodeSel::Service(crate::cluster::SVC_BID.into());
    let (p_from, p_until) = CHAOS_PARTITION_SECS;
    cfg.faults = Some(
        FaultPlan::new(1606)
            .drop(bids.clone(), central.clone(), 0.05)
            .drop(central, bids, 0.05)
            .partition(
                NodeSel::Dc("DC1".into()),
                NodeSel::Dc("DC2".into()),
                SimTime::from_secs(p_from),
                SimTime::from_secs(p_until),
            )
            .crash(
                CHAOS_CRASHED_HOST,
                SimTime::from_secs(CHAOS_CRASH_AT_SECS),
                None,
            ),
    );
    cfg
}

/// The frequency-capped line item of §8.6.
pub const CAPPED_LINE_ITEM: u64 = 8000;
/// Users with `id % CORRUPT_USER_MOD == 0` hit the §8.6 bug.
pub const CORRUPT_USER_MOD: u64 = 10;

fn focal_line_item(id: u64, advisory: f64) -> LineItem {
    let mut li = LineItem::new(id, id / 10, advisory);
    li.base_ctr = 0.02;
    li
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_build() {
        assert_eq!(spam().bots.len(), 2);
        assert_eq!(spam_bot_user_ids(&spam()), vec![8000, 8001]);
        let ne = new_exchange();
        assert_eq!(ne.exchanges[3].live_from_ms, 550_000);
        assert_eq!(ne.exchanges[0].live_from_ms, 0);
        let ab = ab_test();
        assert_eq!(ab.pod_model(1), "B");
        assert!(ab.line_items.iter().any(|l| l.id == AB_LINE_ITEM));
        assert!(cannibalization()
            .line_items
            .iter()
            .any(|l| l.id == LAMBDA_LINE_ITEM));
        let fc = freq_cap();
        assert_eq!(
            fc.line_items
                .iter()
                .find(|l| l.id == CAPPED_LINE_ITEM)
                .unwrap()
                .freq_cap,
            Some(1)
        );
        assert_eq!(fc.corrupt_freq_user_mod, Some(10));
    }

    #[test]
    fn lambda_priced_below_competitors() {
        let cfg = cannibalization();
        let lambda = cfg
            .line_items
            .iter()
            .find(|l| l.id == LAMBDA_LINE_ITEM)
            .unwrap();
        // λ's entire band (±15%) sits below each competitor's band
        for c in cfg
            .line_items
            .iter()
            .filter(|l| l.id > LAMBDA_LINE_ITEM && l.id <= LAMBDA_LINE_ITEM + 4)
        {
            assert!(lambda.advisory_price * 1.15 < c.advisory_price * 0.85);
        }
    }
}
