//! # adplatform
//!
//! A faithful discrete-event simulation of the Turn-like online ad bidding
//! platform Scrub was deployed on (§7): exchange frontends generating
//! Zipf-paced human page views and bot spam, BidServers under a 20 ms SLO,
//! AdServers running the filtering phase (with exclusion reasons) and the
//! internal auction (score-adjusted bids in a band around advisory
//! prices), PresentationServers recording impressions and clicks, and a
//! ProfileStore carrying per-user frequency counts — with injectable
//! anomalies for every case study of §8 and a full Scrub deployment wired
//! in.

pub mod cluster;
pub mod config;
pub mod events;
pub mod model;
pub mod msg;
pub mod nodes;
pub mod scenario;
pub mod zipf;

pub use cluster::{
    build_platform, EventProduction, Platform, SVC_AD, SVC_BID, SVC_EXCHANGE, SVC_PRES, SVC_PROFILE,
};
pub use config::{BotSpec, PlatformConfig};
pub use events::{platform_registry, PlatformEvents};
pub use model::{day_of, Exchange, ExclusionReason, LineItem, Targeting, DAY_MS};
pub use msg::{BidRequest, PlatformMsg, Win};
pub use zipf::Zipf;
