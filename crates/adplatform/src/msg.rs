//! Messages of the simulated bidding platform, with Scrub's protocol
//! riding inside via [`ScrubEnvelope`].

use scrub_server::{ScrubEnvelope, ScrubMsg};
use scrub_simnet::{Message, NodeId, SimTime};

/// A bid request as received from an ad exchange.
#[derive(Debug, Clone)]
pub struct BidRequest {
    /// Platform-wide unique request id (becomes the Scrub request id).
    pub request_id: u64,
    /// The requesting user.
    pub user_id: u64,
    /// User segments (for targeting).
    pub segments: Vec<u32>,
    /// Exchange the request came from.
    pub exchange_id: u32,
    /// Auction price floor.
    pub floor_price: f64,
    /// Requesting page's publisher (for exclusion analysis, §8.4).
    pub publisher: String,
    /// User country.
    pub country: String,
    /// User city.
    pub city: String,
    /// When the exchange sent the request (for SLO accounting).
    pub sent_at: SimTime,
}

impl BidRequest {
    fn approx_bytes(&self) -> usize {
        64 + self.publisher.len() + self.country.len() + self.city.len() + self.segments.len() * 4
    }
}

/// A winning line item and its bid price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Win {
    /// Winning line item.
    pub line_item_id: u64,
    /// Its campaign.
    pub campaign_id: u64,
    /// Score-adjusted bid price.
    pub bid_price: f64,
    /// The ad's realized click probability (already adjusted by the A/B
    /// targeting model of the pod that ran the auction, §8.3).
    pub base_ctr: f64,
}

/// Platform + Scrub message enum.
#[derive(Debug, Clone)]
pub enum PlatformMsg {
    /// Scrub control/data plane.
    Scrub(ScrubMsg),
    /// Exchange frontend → BidServer.
    BidRequest(BidRequest),
    /// BidServer → AdServer: run filtering + internal auction.
    AdRequest {
        /// The originating request.
        req: BidRequest,
        /// BidServer awaiting the response.
        reply_to: NodeId,
    },
    /// AdServer → BidServer: auction outcome.
    AdResponse {
        /// The originating request (echoed for correlation).
        req: BidRequest,
        /// Winner, if any line item survived filtering and the auction.
        winner: Option<Win>,
        /// Index of the AdServer pod (selects the paired
        /// PresentationServer, which determines the A/B model attribution).
        pod: usize,
    },
    /// BidServer → exchange frontend: the bid (or no-bid).
    BidResponse {
        /// Request id.
        request_id: u64,
        /// The user the ad targets.
        user_id: u64,
        /// The exchange that asked.
        exchange_id: u32,
        /// Winner, if bidding.
        winner: Option<Win>,
        /// AdServer pod that produced the bid.
        pod: usize,
        /// Echo of the exchange's send time (latency measurement).
        sent_at: SimTime,
    },
    /// Exchange frontend → PresentationServer: the DSP won the external
    /// auction; show the ad.
    ShowAd {
        /// Request id (joins impression back to bid/auction events).
        request_id: u64,
        /// Viewing user.
        user_id: u64,
        /// Line item whose ad is shown.
        line_item_id: u64,
        /// Its campaign.
        campaign_id: u64,
        /// Exchange it serves on.
        exchange_id: u32,
        /// Clearing price actually paid.
        cost: f64,
        /// Realized click probability of this ad.
        base_ctr: f64,
    },
    /// PresentationServer → ProfileStore: the user saw an ad.
    UpdateProfile {
        /// The user.
        user_id: u64,
        /// Line item shown.
        line_item_id: u64,
        /// When (determines the frequency-cap day bucket).
        ts_ms: i64,
    },
    /// ProfileStore → AdServers: replicated frequency-count update used by
    /// the filtering phase's cap check.
    FreqUpdate {
        /// The user.
        user_id: u64,
        /// Line item shown.
        line_item_id: u64,
        /// Day bucket the count belongs to.
        day: i64,
        /// New count.
        count: u32,
    },
}

impl Message for PlatformMsg {
    fn size_bytes(&self) -> usize {
        match self {
            PlatformMsg::Scrub(m) => m.approx_bytes(),
            PlatformMsg::BidRequest(r) => r.approx_bytes(),
            PlatformMsg::AdRequest { req, .. } => req.approx_bytes() + 8,
            PlatformMsg::AdResponse { req, .. } => req.approx_bytes() + 40,
            PlatformMsg::BidResponse { .. } => 72,
            PlatformMsg::ShowAd { .. } => 64,
            PlatformMsg::UpdateProfile { .. } => 32,
            PlatformMsg::FreqUpdate { .. } => 36,
        }
    }
}

impl ScrubEnvelope for PlatformMsg {
    fn wrap(msg: ScrubMsg) -> Self {
        PlatformMsg::Scrub(msg)
    }
    fn open(self) -> Result<ScrubMsg, Self> {
        match self {
            PlatformMsg::Scrub(m) => Ok(m),
            other => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trip() {
        let m = PlatformMsg::wrap(ScrubMsg::StopQuery {
            query_id: scrub_core::plan::QueryId(4),
        });
        assert!(m.clone().open().is_ok());
        let app = PlatformMsg::ShowAd {
            request_id: 1,
            user_id: 2,
            line_item_id: 3,
            campaign_id: 4,
            exchange_id: 5,
            cost: 0.5,
            base_ctr: 0.01,
        };
        assert!(app.open().is_err());
    }

    #[test]
    fn sizes_positive() {
        let r = BidRequest {
            request_id: 1,
            user_id: 2,
            segments: vec![1, 2],
            exchange_id: 0,
            floor_price: 0.1,
            publisher: "pub".into(),
            country: "us".into(),
            city: "sf".into(),
            sent_at: SimTime::ZERO,
        };
        assert!(PlatformMsg::BidRequest(r).size_bytes() > 64);
    }
}
