//! Exchange frontends: the workload generators.
//!
//! One frontend per ad exchange produces page views — humans drawn from a
//! Zipf-heavy population (each page spawning 1..=k bid requests, since
//! "many web pages show multiple ads", §8.1), plus configured spam bots
//! issuing large batches at high frequency. Frontends also play the
//! exchange's side of the protocol: they run the external auction on bid
//! responses and forward wins to PresentationServers, while recording the
//! end-to-end bid latency against the 20 ms SLO.

use rand::Rng;
use scrub_simnet::{Context, Node, NodeId, SimDuration};

use crate::config::BotSpec;
use crate::model::Exchange;
use crate::msg::{BidRequest, PlatformMsg};
use crate::zipf::Zipf;

const PAGE_TIMER: u64 = 1;
const BOT_TIMER_BASE: u64 = 100;

const COUNTRIES: [&str; 4] = ["us", "pt", "de", "jp"];
const CITIES: [&str; 4] = ["san jose", "porto", "berlin", "tokyo"];
const PUBLISHERS: [&str; 5] = ["news", "sports", "video", "social", "mail"];

/// An exchange frontend node.
pub struct ExchangeFrontend {
    /// The exchange this frontend simulates.
    pub exchange: Exchange,
    bidservers: Vec<NodeId>,
    presservers: Vec<NodeId>,
    zipf: Zipf,
    n_users: u64,
    n_segments: u32,
    pages_per_sec: f64,
    max_ads_per_page: u32,
    bots: Vec<BotSpec>,
    external_win_scale: f64,
    req_counter: u64,
    rr: usize,
    /// (timestamp ms, latency µs) per bid response — the SLO record.
    pub latencies: Vec<(i64, i64)>,
    /// Responses containing a bid.
    pub bids: u64,
    /// No-bid responses.
    pub no_bids: u64,
    /// Ads sent to PresentationServers (external-auction wins).
    pub impressions_sent: u64,
}

impl ExchangeFrontend {
    /// Create a frontend for `exchange`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        exchange: Exchange,
        bidservers: Vec<NodeId>,
        presservers: Vec<NodeId>,
        n_users: usize,
        zipf_alpha: f64,
        n_segments: u32,
        pages_per_sec: f64,
        max_ads_per_page: u32,
        bots: Vec<BotSpec>,
        external_win_scale: f64,
    ) -> Self {
        ExchangeFrontend {
            exchange,
            bidservers,
            presservers,
            zipf: Zipf::new(n_users.max(1), zipf_alpha),
            n_users: n_users as u64,
            n_segments,
            pages_per_sec,
            max_ads_per_page: max_ads_per_page.max(1),
            bots,
            external_win_scale,
            req_counter: 0,
            rr: 0,
            latencies: Vec::new(),
            bids: 0,
            no_bids: 0,
            impressions_sent: 0,
        }
    }

    /// p50/p99 bid latency in µs (None when no responses recorded).
    pub fn latency_percentiles(&self) -> Option<(i64, i64)> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut v: Vec<i64> = self.latencies.iter().map(|(_, l)| *l).collect();
        v.sort_unstable();
        let p = |q: f64| v[((v.len() - 1) as f64 * q).round() as usize];
        Some((p(0.50), p(0.99)))
    }

    fn schedule_next_page(&self, ctx: &mut Context<'_, PlatformMsg>) {
        if self.pages_per_sec <= 0.0 {
            return;
        }
        // exponential inter-arrivals
        let u: f64 = ctx.rng.gen_range(1e-12..1.0);
        let secs = -u.ln() / self.pages_per_sec;
        let delay = SimDuration::from_us((secs * 1e6).max(1.0) as i64);
        ctx.set_timer(delay, PAGE_TIMER);
    }

    fn user_attrs(user_id: u64) -> (&'static str, &'static str, Vec<u32>, &'static str) {
        let h = user_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let c = (h >> 32) as usize % COUNTRIES.len();
        let publisher = PUBLISHERS[(h >> 16) as usize % PUBLISHERS.len()];
        (COUNTRIES[c], CITIES[c], vec![], publisher)
    }

    fn emit_page(&mut self, ctx: &mut Context<'_, PlatformMsg>, user_id: u64) {
        let ads = ctx.rng.gen_range(1..=self.max_ads_per_page);
        let (country, city, _, publisher) = Self::user_attrs(user_id);
        let segments = vec![
            (user_id % self.n_segments as u64) as u32,
            ((user_id / 7) % self.n_segments as u64) as u32,
        ];
        for _ in 0..ads {
            self.req_counter += 1;
            let request_id = ((self.exchange.id as u64) << 48) | self.req_counter;
            let req = BidRequest {
                request_id,
                user_id,
                segments: segments.clone(),
                exchange_id: self.exchange.id,
                floor_price: self.exchange.floor_price,
                publisher: publisher.to_string(),
                country: country.to_string(),
                city: city.to_string(),
                sent_at: ctx.now,
            };
            let target = self.bidservers[self.rr % self.bidservers.len()];
            self.rr += 1;
            ctx.send(target, PlatformMsg::BidRequest(req));
        }
    }
}

impl Node<PlatformMsg> for ExchangeFrontend {
    fn on_start(&mut self, ctx: &mut Context<'_, PlatformMsg>) {
        // human traffic starts when the exchange goes live (§8.2)
        let live_in = (self.exchange.live_from_ms * 1_000 - ctx.now.as_us()).max(0);
        if self.pages_per_sec > 0.0 {
            ctx.set_timer(SimDuration::from_us(live_in + 1), PAGE_TIMER);
        }
        for (i, bot) in self.bots.iter().enumerate() {
            let at = (bot.start_ms * 1_000 - ctx.now.as_us()).max(0);
            ctx.set_timer(SimDuration::from_us(at + 1), BOT_TIMER_BASE + i as u64);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, PlatformMsg>, _from: NodeId, msg: PlatformMsg) {
        let PlatformMsg::BidResponse {
            request_id,
            user_id,
            exchange_id,
            winner,
            pod,
            sent_at,
        } = msg
        else {
            return;
        };
        self.latencies
            .push((ctx.now.as_ms(), (ctx.now - sent_at).as_us()));
        let Some(w) = winner else {
            self.no_bids += 1;
            return;
        };
        self.bids += 1;
        // external auction: higher bids win more often
        let floor = self.exchange.floor_price;
        let p_win = self.external_win_scale * (w.bid_price / (w.bid_price + floor)).min(1.0);
        if ctx.rng.gen::<f64>() < p_win {
            self.impressions_sent += 1;
            let cost = floor + 0.6 * (w.bid_price - floor).max(0.0);
            let pres = self.presservers[pod % self.presservers.len()];
            ctx.send(
                pres,
                PlatformMsg::ShowAd {
                    request_id,
                    user_id,
                    line_item_id: w.line_item_id,
                    campaign_id: w.campaign_id,
                    exchange_id,
                    cost,
                    base_ctr: w.base_ctr,
                },
            );
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, PlatformMsg>, timer: u64) {
        if timer == PAGE_TIMER {
            let user_id = self.zipf.sample(ctx.rng) as u64;
            self.emit_page(ctx, user_id);
            self.schedule_next_page(ctx);
            return;
        }
        if timer >= BOT_TIMER_BASE {
            let i = (timer - BOT_TIMER_BASE) as usize;
            if let Some(bot) = self.bots.get(i).cloned() {
                let bot_user = self.n_users + bot.index;
                for _ in 0..bot.batch_pages {
                    self.emit_page(ctx, bot_user);
                }
                ctx.set_timer(
                    SimDuration::from_ms(bot.period_ms.max(1)),
                    BOT_TIMER_BASE + i as u64,
                );
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
