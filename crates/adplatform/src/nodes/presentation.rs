//! PresentationServer: records ad deliveries and user interactions (§7) —
//! `impression` and `click` events — and updates the user's profile in the
//! ProfileStore (the frequency-count path of §8.6).

use rand::Rng;
use scrub_core::event::RequestId;
use scrub_server::AgentHarness;
use scrub_simnet::{Context, Node, NodeId};

use crate::events::{ClickEvent, ImpressionEvent, PlatformEvents};
use crate::msg::PlatformMsg;

/// A PresentationServer node.
pub struct PresentationServer {
    /// Embedded Scrub agent.
    pub harness: AgentHarness,
    events: PlatformEvents,
    /// The pod's A/B model label, stamped on impression/click events.
    pub model: &'static str,
    profile_store: NodeId,
    /// Impressions served.
    pub impressions: u64,
    /// Clicks observed.
    pub clicks: u64,
    /// Total spend (sum of impression costs).
    pub spend: f64,
}

impl PresentationServer {
    /// Create a PresentationServer reporting profile updates to
    /// `profile_store`.
    pub fn new(
        harness: AgentHarness,
        events: PlatformEvents,
        model: &'static str,
        profile_store: NodeId,
    ) -> Self {
        PresentationServer {
            harness,
            events,
            model,
            profile_store,
            impressions: 0,
            clicks: 0,
            spend: 0.0,
        }
    }
}

impl Node<PlatformMsg> for PresentationServer {
    fn on_start(&mut self, ctx: &mut Context<'_, PlatformMsg>) {
        self.harness.start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, PlatformMsg>, from: NodeId, msg: PlatformMsg) {
        let msg = match self.harness.on_message(ctx, from, msg) {
            Ok(()) => return,
            Err(m) => m,
        };
        let PlatformMsg::ShowAd {
            request_id,
            user_id,
            line_item_id,
            campaign_id,
            exchange_id,
            cost,
            base_ctr,
        } = msg
        else {
            return;
        };
        let now_ms = ctx.now.as_ms();
        let rid = RequestId(request_id);
        self.impressions += 1;
        self.spend += cost;

        let model = self.model;
        self.harness
            .agent()
            .log_typed(self.events.impression, rid, now_ms, || ImpressionEvent {
                user_id: user_id as i64,
                line_item_id: line_item_id as i64,
                campaign_id: campaign_id as i64,
                exchange_id: exchange_id as i64,
                cost,
                model: model.to_string(),
            });

        // profile update feeds the frequency-cap check (§8.6)
        ctx.send(
            self.profile_store,
            PlatformMsg::UpdateProfile {
                user_id,
                line_item_id,
                ts_ms: now_ms,
            },
        );

        // the user clicks with the (model-adjusted) CTR probability
        if ctx.rng.gen::<f64>() < base_ctr {
            self.clicks += 1;
            self.harness
                .agent()
                .log_typed(self.events.click, rid, now_ms, || ClickEvent {
                    user_id: user_id as i64,
                    line_item_id: line_item_id as i64,
                    campaign_id: campaign_id as i64,
                    exchange_id: exchange_id as i64,
                    model: model.to_string(),
                });
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, PlatformMsg>, timer: u64) {
        let _ = self.harness.on_timer(ctx, timer);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
