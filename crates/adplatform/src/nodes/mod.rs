//! Simulated nodes of the bidding platform: exchange frontends (traffic),
//! BidServers, AdServers (filtering + internal auction), Presentation-
//! Servers (impressions/clicks), and the ProfileStore.

pub mod adserver;
pub mod bidserver;
pub mod presentation;
pub mod profilestore;
pub mod traffic;

use std::collections::HashMap;

use scrub_simnet::{Context, NodeId, SimDuration};

use crate::msg::PlatformMsg;

/// Timer-id range used by the delayed-send helper (application timers stay
/// below; Scrub's harness timers live at `1 << 62`).
const DELAYED_SEND_BASE: u64 = 1_000_000;

/// Queues messages to be sent after a service-time delay — how nodes model
/// their own processing cost (base service time + Scrub agent overhead).
#[derive(Default)]
pub(crate) struct DelayedSends {
    next: u64,
    pending: HashMap<u64, (NodeId, PlatformMsg)>,
}

impl DelayedSends {
    /// Send `msg` to `to` after `delay`.
    pub fn send_after(
        &mut self,
        ctx: &mut Context<'_, PlatformMsg>,
        delay: SimDuration,
        to: NodeId,
        msg: PlatformMsg,
    ) {
        let id = DELAYED_SEND_BASE + self.next;
        self.next += 1;
        self.pending.insert(id, (to, msg));
        ctx.set_timer(delay, id);
    }

    /// Handle a timer; returns true when it was a pending send.
    pub fn on_timer(&mut self, ctx: &mut Context<'_, PlatformMsg>, timer: u64) -> bool {
        if let Some((to, msg)) = self.pending.remove(&timer) {
            ctx.send(to, msg);
            true
        } else {
            false
        }
    }
}
