//! ProfileStore: the user-profile service (§7). Tracks how many times each
//! ad was served to each user per day and replicates the counts to the
//! AdServers' filtering phase.
//!
//! The §8.6 case study — "Incorrectly Set Field" — is reproduced by an
//! injectable fault: updates for a configurable slice of users are silently
//! dropped, so their frequency counts never rise and the cap never binds.

use std::collections::HashMap;

use scrub_simnet::{Context, Node, NodeId};

use crate::model::day_of;
use crate::msg::PlatformMsg;

/// The ProfileStore node.
pub struct ProfileStore {
    /// (user, line item, day) -> times served.
    counts: HashMap<(u64, u64, i64), u32>,
    adservers: Vec<NodeId>,
    /// §8.6 fault: drop updates for users with `user_id % m == 0`.
    corrupt_user_mod: Option<u64>,
    /// Updates applied.
    pub updates_applied: u64,
    /// Updates dropped by the injected fault.
    pub updates_dropped: u64,
}

impl ProfileStore {
    /// Create a ProfileStore; `adservers` receive count replication.
    pub fn new(corrupt_user_mod: Option<u64>) -> Self {
        ProfileStore {
            counts: HashMap::new(),
            adservers: Vec::new(),
            corrupt_user_mod,
            updates_applied: 0,
            updates_dropped: 0,
        }
    }

    /// Wire the AdServer replication targets (set after cluster build).
    pub fn set_adservers(&mut self, adservers: Vec<NodeId>) {
        self.adservers = adservers;
    }

    /// Current count for (user, line item, day).
    pub fn count(&self, user_id: u64, line_item_id: u64, day: i64) -> u32 {
        self.counts
            .get(&(user_id, line_item_id, day))
            .copied()
            .unwrap_or(0)
    }
}

impl Node<PlatformMsg> for ProfileStore {
    fn on_message(&mut self, ctx: &mut Context<'_, PlatformMsg>, _from: NodeId, msg: PlatformMsg) {
        let PlatformMsg::UpdateProfile {
            user_id,
            line_item_id,
            ts_ms,
        } = msg
        else {
            return;
        };
        if let Some(m) = self.corrupt_user_mod {
            if user_id % m == 0 {
                // the injected §8.6 bug: the count silently never rises
                self.updates_dropped += 1;
                return;
            }
        }
        let day = day_of(ts_ms);
        let count = self.counts.entry((user_id, line_item_id, day)).or_insert(0);
        *count += 1;
        self.updates_applied += 1;
        let count = *count;
        for &ad in &self.adservers {
            ctx.send(
                ad,
                PlatformMsg::FreqUpdate {
                    user_id,
                    line_item_id,
                    day,
                    count,
                },
            );
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
