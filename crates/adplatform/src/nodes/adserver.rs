//! AdServer: the filtering phase and the internal auction (§7, §8.4, §8.5).
//!
//! For every bid request, each line item either passes filtering or is
//! excluded with a reason (`exclusion` events — "every bid request produces
//! tens of thousands of exclusions" at Turn's scale; tens here). Passers
//! enter the internal auction with a score-adjusted bid price in a narrow
//! band around the advisory price, from which cannibalization (§8.5)
//! emerges naturally.

use std::collections::HashMap;

use rand::Rng;
use scrub_agent::{CostModel, StatsSnapshot};
use scrub_core::event::RequestId;
use scrub_server::AgentHarness;
use scrub_simnet::{Context, Node, NodeId, SimDuration};

use crate::events::{AuctionEvent, ExclusionEvent, PlatformEvents};
use crate::model::{day_of, ExclusionReason, LineItem};
use crate::msg::{PlatformMsg, Win};
use crate::nodes::DelayedSends;

/// An AdServer node.
pub struct AdServer {
    /// Embedded Scrub agent.
    pub harness: AgentHarness,
    events: PlatformEvents,
    /// Global pod index (pairs this AdServer with a PresentationServer and
    /// selects the A/B targeting model).
    pub pod: usize,
    /// CTR multiplier of the model this pod runs.
    ctr_mult: f64,
    /// Rollout defect: from `rollout_at_ms` on, winning bid prices are
    /// multiplied by this factor (1.0 = no bug / old build).
    rollout_price_bug: (i64, f64),
    line_items: Vec<LineItem>,
    /// Replicated frequency counts: (user, line item, day) -> count.
    freq: HashMap<(u64, u64, i64), u32>,
    /// Optimistic budget spend: (line item, day) -> spent.
    budget_spent: HashMap<(u64, i64), f64>,
    service_us: i64,
    overhead_enabled: bool,
    cost_model: CostModel,
    last_stats: StatsSnapshot,
    delayed: DelayedSends,
    /// Auctions run (with at least one participant).
    pub auctions_run: u64,
    /// Requests that produced no bid.
    pub no_bid: u64,
    /// Exclusion events emitted by the filtering phase.
    pub exclusions_emitted: u64,
}

impl AdServer {
    /// Create an AdServer.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        harness: AgentHarness,
        events: PlatformEvents,
        pod: usize,
        ctr_mult: f64,
        line_items: Vec<LineItem>,
        service_us: i64,
        overhead_enabled: bool,
        cost_model: CostModel,
    ) -> Self {
        AdServer {
            harness,
            events,
            pod,
            ctr_mult,
            rollout_price_bug: (0, 1.0),
            line_items,
            freq: HashMap::new(),
            budget_spent: HashMap::new(),
            service_us,
            overhead_enabled,
            cost_model,
            last_stats: StatsSnapshot::default(),
            delayed: DelayedSends::default(),
            auctions_run: 0,
            no_bid: 0,
            exclusions_emitted: 0,
        }
    }

    /// Arm the rollout-regression defect: from `at_ms` on, this pod's
    /// winning prices are multiplied by `factor`.
    pub fn set_rollout_bug(&mut self, at_ms: i64, factor: f64) {
        self.rollout_price_bug = (at_ms, factor);
    }

    fn take_overhead(&mut self) -> SimDuration {
        let snap = self.harness.agent().stats().snapshot();
        let delta = snap.since(&self.last_stats);
        self.last_stats = snap;
        let ns = self.cost_model.cpu_ns(&delta);
        if self.overhead_enabled {
            SimDuration::from_us((ns / 1_000.0).round() as i64)
        } else {
            SimDuration::ZERO
        }
    }
}

impl Node<PlatformMsg> for AdServer {
    fn on_start(&mut self, ctx: &mut Context<'_, PlatformMsg>) {
        self.harness.start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, PlatformMsg>, from: NodeId, msg: PlatformMsg) {
        let msg = match self.harness.on_message(ctx, from, msg) {
            Ok(()) => return,
            Err(m) => m,
        };
        match msg {
            PlatformMsg::AdRequest { req, reply_to } => {
                let now_ms = ctx.now.as_ms();
                let day = day_of(now_ms);
                let rid = RequestId(req.request_id);

                // ---- filtering phase (§8.4) ----
                let mut passers: Vec<&LineItem> = Vec::new();
                for li in &self.line_items {
                    let reason = li
                        .targeting
                        .passes(&req.country, req.exchange_id, &req.segments)
                        .err()
                        .or({
                            if li.advisory_price < req.floor_price {
                                Some(ExclusionReason::PriceFloor)
                            } else {
                                None
                            }
                        })
                        .or_else(|| {
                            let spent =
                                self.budget_spent.get(&(li.id, day)).copied().unwrap_or(0.0);
                            if spent >= li.daily_budget {
                                Some(ExclusionReason::BudgetExhausted)
                            } else {
                                None
                            }
                        })
                        .or_else(|| {
                            li.freq_cap.and_then(|cap| {
                                let count = self
                                    .freq
                                    .get(&(req.user_id, li.id, day))
                                    .copied()
                                    .unwrap_or(0);
                                (count >= cap).then_some(ExclusionReason::FrequencyCap)
                            })
                        });
                    match reason {
                        Some(r) => {
                            self.exclusions_emitted += 1;
                            let (li_id, camp) = (li.id, li.campaign_id);
                            let (exch, publ) = (req.exchange_id, &req.publisher);
                            self.harness.agent().log_typed(
                                self.events.exclusion,
                                rid,
                                now_ms,
                                || ExclusionEvent {
                                    line_item_id: li_id as i64,
                                    campaign_id: camp as i64,
                                    reason: r.as_str().to_string(),
                                    exchange_id: exch as i64,
                                    publisher: publ.clone(),
                                },
                            );
                        }
                        None => passers.push(li),
                    }
                }

                // ---- internal auction (§8.5) ----
                let mut winner: Option<Win> = None;
                if !passers.is_empty() {
                    self.auctions_run += 1;
                    // ML score moves each bid in a narrow band around the
                    // advisory price (±15%)
                    let mut ids = Vec::with_capacity(passers.len());
                    let mut prices = Vec::with_capacity(passers.len());
                    let mut best: Option<(usize, f64)> = None;
                    for (i, li) in passers.iter().enumerate() {
                        let score = 0.85 + 0.30 * ctx.rng.gen::<f64>();
                        let price = li.advisory_price * score;
                        ids.push(li.id as i64);
                        prices.push(price);
                        if best.map(|(_, bp)| price > bp).unwrap_or(true) {
                            best = Some((i, price));
                        }
                    }
                    let (wi, mut wprice) = best.expect("non-empty passers");
                    let (bug_at, bug_factor) = self.rollout_price_bug;
                    if bug_factor != 1.0 && now_ms >= bug_at {
                        wprice *= bug_factor;
                    }
                    let wli = passers[wi];
                    winner = Some(Win {
                        line_item_id: wli.id,
                        campaign_id: wli.campaign_id,
                        bid_price: wprice,
                        base_ctr: wli.base_ctr * self.ctr_mult,
                    });
                    // optimistic budget spend at win time
                    *self.budget_spent.entry((wli.id, day)).or_insert(0.0) += wprice;

                    let (w_id, exch) = (wli.id, req.exchange_id);
                    self.harness
                        .agent()
                        .log_typed(self.events.auction, rid, now_ms, || AuctionEvent {
                            line_item_ids: ids,
                            bid_prices: prices,
                            winner_line_item_id: w_id as i64,
                            winner_price: wprice,
                            exchange_id: exch as i64,
                        });
                } else {
                    self.no_bid += 1;
                }

                let pod = self.pod;
                let delay = SimDuration::from_us(self.service_us) + self.take_overhead();
                self.delayed.send_after(
                    ctx,
                    delay,
                    reply_to,
                    PlatformMsg::AdResponse { req, winner, pod },
                );
            }
            PlatformMsg::FreqUpdate {
                user_id,
                line_item_id,
                day,
                count,
            } => {
                let e = self.freq.entry((user_id, line_item_id, day)).or_insert(0);
                *e = (*e).max(count);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, PlatformMsg>, timer: u64) {
        if self.harness.on_timer(ctx, timer) {
            return;
        }
        self.delayed.on_timer(ctx, timer);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
