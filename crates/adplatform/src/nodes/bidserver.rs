//! BidServer: the entry point of the DSP (§7). Receives bid requests from
//! exchanges, delegates filtering + internal auction to an AdServer, and
//! returns the bid response within the 20 ms SLO — emitting a Scrub `bid`
//! event per bid response sent.

use std::collections::HashMap;

use scrub_agent::{CostModel, StatsSnapshot};
use scrub_server::AgentHarness;
use scrub_simnet::{Context, Node, NodeId, SimDuration};

use crate::events::{BidEvent, PlatformEvents};
use crate::msg::PlatformMsg;
use crate::nodes::DelayedSends;

/// A BidServer node.
pub struct BidServer {
    /// Embedded Scrub agent.
    pub harness: AgentHarness,
    events: PlatformEvents,
    adservers: Vec<NodeId>,
    rr: usize,
    /// request id -> exchange frontend awaiting the response
    pending: HashMap<u64, NodeId>,
    service_us: i64,
    overhead_enabled: bool,
    cost_model: CostModel,
    last_stats: StatsSnapshot,
    delayed: DelayedSends,
    /// Requests handled (for experiment accounting).
    pub requests_handled: u64,
    /// Cumulative Scrub-induced extra service time (ns).
    pub scrub_overhead_ns: f64,
}

impl BidServer {
    /// Create a BidServer delegating auctions to `adservers`.
    pub fn new(
        harness: AgentHarness,
        events: PlatformEvents,
        adservers: Vec<NodeId>,
        service_us: i64,
        overhead_enabled: bool,
        cost_model: CostModel,
    ) -> Self {
        BidServer {
            harness,
            events,
            adservers,
            rr: 0,
            pending: HashMap::new(),
            service_us,
            overhead_enabled,
            cost_model,
            last_stats: StatsSnapshot::default(),
            delayed: DelayedSends::default(),
            requests_handled: 0,
            scrub_overhead_ns: 0.0,
        }
    }

    /// Scrub agent CPU accumulated since the last call, as a service-time
    /// addition (0 when the honest-overhead model is disabled).
    fn take_overhead(&mut self) -> SimDuration {
        let snap = self.harness.agent().stats().snapshot();
        let delta = snap.since(&self.last_stats);
        self.last_stats = snap;
        let ns = self.cost_model.cpu_ns(&delta);
        self.scrub_overhead_ns += ns;
        if self.overhead_enabled {
            SimDuration::from_us((ns / 1_000.0).round() as i64)
        } else {
            SimDuration::ZERO
        }
    }
}

impl Node<PlatformMsg> for BidServer {
    fn on_start(&mut self, ctx: &mut Context<'_, PlatformMsg>) {
        self.harness.start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, PlatformMsg>, from: NodeId, msg: PlatformMsg) {
        let msg = match self.harness.on_message(ctx, from, msg) {
            Ok(()) => return,
            Err(m) => m,
        };
        match msg {
            PlatformMsg::BidRequest(req) => {
                self.requests_handled += 1;
                self.pending.insert(req.request_id, from);
                let target = self.adservers[self.rr % self.adservers.len()];
                self.rr += 1;
                ctx.send(
                    target,
                    PlatformMsg::AdRequest {
                        req,
                        reply_to: ctx.self_id,
                    },
                );
            }
            PlatformMsg::AdResponse { req, winner, pod } => {
                let Some(frontend) = self.pending.remove(&req.request_id) else {
                    return;
                };
                let now_ms = ctx.now.as_ms();
                if let Some(w) = &winner {
                    // the Scrub tap at the bid-response site (Figure 1)
                    let w = *w;
                    let req_ref = &req;
                    self.harness.agent().log_typed(
                        self.events.bid,
                        scrub_core::event::RequestId(req.request_id),
                        now_ms,
                        || BidEvent {
                            user_id: req_ref.user_id as i64,
                            exchange_id: req_ref.exchange_id as i64,
                            line_item_id: w.line_item_id as i64,
                            campaign_id: w.campaign_id as i64,
                            bid_price: w.bid_price,
                            country: req_ref.country.clone(),
                            city: req_ref.city.clone(),
                        },
                    );
                }
                let delay = SimDuration::from_us(self.service_us) + self.take_overhead();
                self.delayed.send_after(
                    ctx,
                    delay,
                    frontend,
                    PlatformMsg::BidResponse {
                        request_id: req.request_id,
                        user_id: req.user_id,
                        exchange_id: req.exchange_id,
                        winner,
                        pod,
                        sent_at: req.sent_at,
                    },
                );
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, PlatformMsg>, timer: u64) {
        if self.harness.on_timer(ctx, timer) {
            return;
        }
        self.delayed.on_timer(ctx, timer);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
