//! Scalar expressions: the WHERE-clause / group-by / aggregate-argument
//! language of ScrubQL.
//!
//! Expressions exist in two forms:
//!
//! * [`Expr`] — the named AST the parser produces (`bid.bid_price * 1000`).
//! * [`ResolvedExpr`] — the compiled form in which every field reference has
//!   been bound to an *input slot index* by a [`Binder`]. Host plans bind
//!   slots against a single event's tuple; ScrubCentral binds them against a
//!   joined row. The hot evaluation path therefore never looks up strings.

use serde::{Deserialize, Serialize};

use crate::error::{ScrubError, ScrubResult};
use crate::schema::FieldType;
use crate::value::Value;

/// A (possibly qualified) reference to an event field, e.g. `bid.user_id`
/// or bare `user_id` when unambiguous.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FieldRef {
    /// Event type qualifier, if written (`bid` in `bid.user_id`).
    pub event_type: Option<String>,
    /// Field name (may be a system field `request_id` / `timestamp`).
    pub field: String,
}

impl FieldRef {
    /// Bare (unqualified) field reference.
    pub fn bare(field: impl Into<String>) -> Self {
        FieldRef {
            event_type: None,
            field: field.into(),
        }
    }

    /// Qualified field reference.
    pub fn qualified(event_type: impl Into<String>, field: impl Into<String>) -> Self {
        FieldRef {
            event_type: Some(event_type.into()),
            field: field.into(),
        }
    }
}

impl std::fmt::Display for FieldRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.event_type {
            Some(t) => write!(f, "{t}.{}", self.field),
            None => write!(f, "{}", self.field),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// True for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for arithmetic operators.
    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }

    /// Source-level spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Built-in scalar functions.
///
/// The set is intentionally small (§2: constructs that could impose
/// considerable overhead are excluded from the language); all of these are
/// O(field size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalarFn {
    Abs,
    Log,
    Log10,
    Sqrt,
    Floor,
    Ceil,
    Lower,
    Upper,
    /// String or list length.
    Length,
    /// `contains(haystack, needle)` on strings, or list membership.
    Contains,
    StartsWith,
    EndsWith,
}

impl ScalarFn {
    /// Resolve a function by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<ScalarFn> {
        Some(match name.to_ascii_lowercase().as_str() {
            "abs" => ScalarFn::Abs,
            "log" => ScalarFn::Log,
            "log10" => ScalarFn::Log10,
            "sqrt" => ScalarFn::Sqrt,
            "floor" => ScalarFn::Floor,
            "ceil" => ScalarFn::Ceil,
            "lower" => ScalarFn::Lower,
            "upper" => ScalarFn::Upper,
            "length" => ScalarFn::Length,
            "contains" => ScalarFn::Contains,
            "starts_with" => ScalarFn::StartsWith,
            "ends_with" => ScalarFn::EndsWith,
            _ => return None,
        })
    }

    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            ScalarFn::Contains | ScalarFn::StartsWith | ScalarFn::EndsWith => 2,
            _ => 1,
        }
    }
}

/// Named expression AST as produced by the parser.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Literal constant.
    Literal(Value),
    /// Field reference.
    Field(FieldRef),
    /// Unary operation.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Scalar function call.
    Call { func: ScalarFn, args: Vec<Expr> },
    /// `expr [not] in (v1, v2, ...)` — list of literal values.
    InList {
        expr: Box<Expr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// `expr is [not] null`.
    IsNull { expr: Box<Expr>, negated: bool },
}

impl Expr {
    /// All field references mentioned in the expression, in syntax order.
    pub fn field_refs(&self) -> Vec<&FieldRef> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a FieldRef>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Field(f) => out.push(f),
            Expr::Unary { expr, .. } => expr.collect_refs(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_refs(out);
                rhs.collect_refs(out);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_refs(out);
                }
            }
            Expr::InList { expr, .. } => expr.collect_refs(out),
            Expr::IsNull { expr, .. } => expr.collect_refs(out),
        }
    }

    /// Conjunction of two optional predicates.
    pub fn and(a: Option<Expr>, b: Option<Expr>) -> Option<Expr> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(a), Some(b)) => Some(Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(a),
                rhs: Box::new(b),
            }),
        }
    }

    /// Resolve every field reference through `binder`, producing an
    /// executable [`ResolvedExpr`].
    pub fn resolve(&self, binder: &dyn Binder) -> ScrubResult<ResolvedExpr> {
        Ok(match self {
            Expr::Literal(v) => ResolvedExpr::Literal(v.clone()),
            Expr::Field(f) => ResolvedExpr::Input(binder.bind(f)?),
            Expr::Unary { op, expr } => ResolvedExpr::Unary {
                op: *op,
                expr: Box::new(expr.resolve(binder)?),
            },
            Expr::Binary { op, lhs, rhs } => ResolvedExpr::Binary {
                op: *op,
                lhs: Box::new(lhs.resolve(binder)?),
                rhs: Box::new(rhs.resolve(binder)?),
            },
            Expr::Call { func, args } => ResolvedExpr::Call {
                func: *func,
                args: args
                    .iter()
                    .map(|a| a.resolve(binder))
                    .collect::<ScrubResult<_>>()?,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => ResolvedExpr::InList {
                expr: Box::new(expr.resolve(binder)?),
                list: list.clone(),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => ResolvedExpr::IsNull {
                expr: Box::new(expr.resolve(binder)?),
                negated: *negated,
            },
        })
    }

    /// Static type of the expression given a field-type oracle, or an error
    /// for ill-typed trees. `None` from the oracle means "unknown field".
    pub fn infer_type(
        &self,
        field_ty: &dyn Fn(&FieldRef) -> Option<FieldType>,
    ) -> ScrubResult<FieldType> {
        match self {
            Expr::Literal(v) => literal_type(v),
            Expr::Field(f) => {
                field_ty(f).ok_or_else(|| ScrubError::Validate(format!("unknown field {f}")))
            }
            Expr::Unary { op, expr } => {
                let t = expr.infer_type(field_ty)?;
                match op {
                    UnaryOp::Not => {
                        if t == FieldType::Bool {
                            Ok(FieldType::Bool)
                        } else {
                            Err(ScrubError::Validate(format!("NOT applied to {t}")))
                        }
                    }
                    UnaryOp::Neg => {
                        if t.is_numeric() {
                            Ok(widen(&t))
                        } else {
                            Err(ScrubError::Validate(format!("negation applied to {t}")))
                        }
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = lhs.infer_type(field_ty)?;
                let rt = rhs.infer_type(field_ty)?;
                if op.is_arith() {
                    if lt.is_numeric() && rt.is_numeric() {
                        Ok(FieldType::Double)
                    } else {
                        Err(ScrubError::Validate(format!(
                            "arithmetic {} on {lt} and {rt}",
                            op.symbol()
                        )))
                    }
                } else if op.is_comparison() {
                    if comparable(&lt, &rt) {
                        Ok(FieldType::Bool)
                    } else {
                        Err(ScrubError::Validate(format!(
                            "comparison {} on incompatible types {lt} and {rt}",
                            op.symbol()
                        )))
                    }
                } else {
                    // And / Or
                    if lt == FieldType::Bool && rt == FieldType::Bool {
                        Ok(FieldType::Bool)
                    } else {
                        Err(ScrubError::Validate(format!(
                            "boolean {} on {lt} and {rt}",
                            op.symbol()
                        )))
                    }
                }
            }
            Expr::Call { func, args } => {
                if args.len() != func.arity() {
                    return Err(ScrubError::Validate(format!(
                        "{func:?} expects {} argument(s), got {}",
                        func.arity(),
                        args.len()
                    )));
                }
                let ts: Vec<FieldType> = args
                    .iter()
                    .map(|a| a.infer_type(field_ty))
                    .collect::<ScrubResult<_>>()?;
                match func {
                    ScalarFn::Abs
                    | ScalarFn::Log
                    | ScalarFn::Log10
                    | ScalarFn::Sqrt
                    | ScalarFn::Floor
                    | ScalarFn::Ceil => {
                        if ts[0].is_numeric() {
                            Ok(FieldType::Double)
                        } else {
                            Err(ScrubError::Validate(format!(
                                "{func:?} applied to {}",
                                ts[0]
                            )))
                        }
                    }
                    ScalarFn::Lower | ScalarFn::Upper => {
                        if ts[0] == FieldType::Str {
                            Ok(FieldType::Str)
                        } else {
                            Err(ScrubError::Validate(format!(
                                "{func:?} applied to {}",
                                ts[0]
                            )))
                        }
                    }
                    ScalarFn::Length => match &ts[0] {
                        FieldType::Str | FieldType::List(_) => Ok(FieldType::Long),
                        t => Err(ScrubError::Validate(format!("LENGTH applied to {t}"))),
                    },
                    ScalarFn::Contains => match (&ts[0], &ts[1]) {
                        (FieldType::Str, FieldType::Str) => Ok(FieldType::Bool),
                        (FieldType::List(inner), t) if comparable(inner, t) => Ok(FieldType::Bool),
                        (a, b) => Err(ScrubError::Validate(format!(
                            "CONTAINS applied to {a} and {b}"
                        ))),
                    },
                    ScalarFn::StartsWith | ScalarFn::EndsWith => {
                        if ts[0] == FieldType::Str && ts[1] == FieldType::Str {
                            Ok(FieldType::Bool)
                        } else {
                            Err(ScrubError::Validate(format!(
                                "{func:?} applied to {} and {}",
                                ts[0], ts[1]
                            )))
                        }
                    }
                }
            }
            Expr::InList { expr, list, .. } => {
                let t = expr.infer_type(field_ty)?;
                for v in list {
                    let vt = literal_type(v)?;
                    if !comparable(&t, &vt) {
                        return Err(ScrubError::Validate(format!(
                            "IN list value {v} incompatible with {t}"
                        )));
                    }
                }
                Ok(FieldType::Bool)
            }
            Expr::IsNull { expr, .. } => {
                expr.infer_type(field_ty)?;
                Ok(FieldType::Bool)
            }
        }
    }
}

fn literal_type(v: &Value) -> ScrubResult<FieldType> {
    Ok(match v {
        Value::Bool(_) => FieldType::Bool,
        Value::Int(_) => FieldType::Int,
        Value::Long(_) => FieldType::Long,
        Value::Float(_) => FieldType::Float,
        Value::Double(_) => FieldType::Double,
        Value::DateTime(_) => FieldType::DateTime,
        Value::Str(_) => FieldType::Str,
        Value::Null => FieldType::Str, // null literal: treat as wildcard-ish string
        Value::List(vs) => FieldType::List(Box::new(match vs.first() {
            Some(v) => literal_type(v)?,
            None => FieldType::Str,
        })),
        Value::Nested(_) => FieldType::Nested,
    })
}

/// Can values of these two static types be compared with `=`/`<`?
fn comparable(a: &FieldType, b: &FieldType) -> bool {
    if a == b {
        return true;
    }
    let num = |t: &FieldType| t.is_numeric() || *t == FieldType::DateTime;
    num(a) && num(b)
}

fn widen(t: &FieldType) -> FieldType {
    match t {
        FieldType::Int | FieldType::Long => FieldType::Long,
        _ => FieldType::Double,
    }
}

/// Resolves a [`FieldRef`] to an input slot index in some row layout.
pub trait Binder {
    /// Map the reference to a slot, or fail if it does not exist in this
    /// context.
    fn bind(&self, field: &FieldRef) -> ScrubResult<usize>;
}

/// An executable expression: field references are input slot indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResolvedExpr {
    /// Literal constant.
    Literal(Value),
    /// Input row slot.
    Input(usize),
    /// Unary operation.
    Unary {
        op: UnaryOp,
        expr: Box<ResolvedExpr>,
    },
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<ResolvedExpr>,
        rhs: Box<ResolvedExpr>,
    },
    /// Scalar function call.
    Call {
        func: ScalarFn,
        args: Vec<ResolvedExpr>,
    },
    /// Membership in a literal list.
    InList {
        expr: Box<ResolvedExpr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// Null test.
    IsNull {
        expr: Box<ResolvedExpr>,
        negated: bool,
    },
}

impl ResolvedExpr {
    /// Evaluate against a row of input values.
    ///
    /// Nulls propagate through arithmetic and comparisons (SQL-ish
    /// three-valued logic collapsed to two values: a comparison involving
    /// NULL is false; `AND`/`OR` treat NULL operands as false).
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            ResolvedExpr::Literal(v) => v.clone(),
            ResolvedExpr::Input(i) => row.get(*i).cloned().unwrap_or(Value::Null),
            ResolvedExpr::Unary { op, expr } => {
                let v = expr.eval(row);
                match op {
                    UnaryOp::Not => match v.as_bool() {
                        Some(b) => Value::Bool(!b),
                        None => Value::Bool(false),
                    },
                    UnaryOp::Neg => match v {
                        Value::Int(x) => Value::Int(-x),
                        Value::Long(x) => Value::Long(-x),
                        Value::Float(x) => Value::Float(-x),
                        Value::Double(x) => Value::Double(-x),
                        _ => Value::Null,
                    },
                }
            }
            ResolvedExpr::Binary { op, lhs, rhs } => {
                let l = lhs.eval(row);
                match op {
                    BinOp::And => {
                        // short-circuit
                        if l.as_bool() != Some(true) {
                            return Value::Bool(false);
                        }
                        Value::Bool(rhs.eval(row).as_bool() == Some(true))
                    }
                    BinOp::Or => {
                        if l.as_bool() == Some(true) {
                            return Value::Bool(true);
                        }
                        Value::Bool(rhs.eval(row).as_bool() == Some(true))
                    }
                    _ => {
                        let r = rhs.eval(row);
                        eval_binop(*op, &l, &r)
                    }
                }
            }
            ResolvedExpr::Call { func, args } => {
                let vs: Vec<Value> = args.iter().map(|a| a.eval(row)).collect();
                eval_fn(*func, &vs)
            }
            ResolvedExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row);
                if v.is_null() {
                    return Value::Bool(false);
                }
                let found = list.iter().any(|x| x.loose_eq(&v));
                Value::Bool(found != *negated)
            }
            ResolvedExpr::IsNull { expr, negated } => {
                let v = expr.eval(row);
                Value::Bool(v.is_null() != *negated)
            }
        }
    }

    /// Evaluate as a predicate: true iff the expression evaluates to
    /// `Bool(true)`.
    pub fn eval_bool(&self, row: &[Value]) -> bool {
        self.eval(row).as_bool() == Some(true)
    }

    /// Evaluate with a slot accessor instead of a materialized row.
    ///
    /// The host-side hot path uses this to avoid cloning a full event tuple
    /// per predicate evaluation — only the slots the expression actually
    /// references are fetched.
    pub fn eval_by(&self, fetch: &dyn Fn(usize) -> Value) -> Value {
        match self {
            ResolvedExpr::Literal(v) => v.clone(),
            ResolvedExpr::Input(i) => fetch(*i),
            ResolvedExpr::Unary { op, expr } => {
                let v = expr.eval_by(fetch);
                match op {
                    UnaryOp::Not => match v.as_bool() {
                        Some(b) => Value::Bool(!b),
                        None => Value::Bool(false),
                    },
                    UnaryOp::Neg => match v {
                        Value::Int(x) => Value::Int(-x),
                        Value::Long(x) => Value::Long(-x),
                        Value::Float(x) => Value::Float(-x),
                        Value::Double(x) => Value::Double(-x),
                        _ => Value::Null,
                    },
                }
            }
            ResolvedExpr::Binary { op, lhs, rhs } => {
                let l = lhs.eval_by(fetch);
                match op {
                    BinOp::And => {
                        if l.as_bool() != Some(true) {
                            return Value::Bool(false);
                        }
                        Value::Bool(rhs.eval_by(fetch).as_bool() == Some(true))
                    }
                    BinOp::Or => {
                        if l.as_bool() == Some(true) {
                            return Value::Bool(true);
                        }
                        Value::Bool(rhs.eval_by(fetch).as_bool() == Some(true))
                    }
                    _ => {
                        let r = rhs.eval_by(fetch);
                        eval_binop(*op, &l, &r)
                    }
                }
            }
            ResolvedExpr::Call { func, args } => {
                let vs: Vec<Value> = args.iter().map(|a| a.eval_by(fetch)).collect();
                eval_fn(*func, &vs)
            }
            ResolvedExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval_by(fetch);
                if v.is_null() {
                    return Value::Bool(false);
                }
                let found = list.iter().any(|x| x.loose_eq(&v));
                Value::Bool(found != *negated)
            }
            ResolvedExpr::IsNull { expr, negated } => {
                let v = expr.eval_by(fetch);
                Value::Bool(v.is_null() != *negated)
            }
        }
    }

    /// Predicate form of [`ResolvedExpr::eval_by`].
    pub fn eval_bool_by(&self, fetch: &dyn Fn(usize) -> Value) -> bool {
        self.eval_by(fetch).as_bool() == Some(true)
    }

    /// Highest input slot referenced, if any (used for sanity checks).
    pub fn max_slot(&self) -> Option<usize> {
        match self {
            ResolvedExpr::Literal(_) => None,
            ResolvedExpr::Input(i) => Some(*i),
            ResolvedExpr::Unary { expr, .. } => expr.max_slot(),
            ResolvedExpr::Binary { lhs, rhs, .. } => max_opt(lhs.max_slot(), rhs.max_slot()),
            ResolvedExpr::Call { args, .. } => args.iter().filter_map(|a| a.max_slot()).max(),
            ResolvedExpr::InList { expr, .. } => expr.max_slot(),
            ResolvedExpr::IsNull { expr, .. } => expr.max_slot(),
        }
    }
}

fn max_opt(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) | (None, x) => x,
    }
}

fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Value {
    if op.is_comparison() {
        if l.is_null() || r.is_null() {
            return Value::Bool(false);
        }
        // String comparisons compare strings; everything else numeric where
        // possible, falling back to total order.
        let ord = l.total_cmp(r);
        let eq_comparable = match (l, r) {
            (Value::Str(_), Value::Str(_)) => true,
            _ => l.as_f64().is_some() && r.as_f64().is_some() || l.type_name() == r.type_name(),
        };
        if !eq_comparable {
            return Value::Bool(false);
        }
        let b = match op {
            BinOp::Eq => ord == std::cmp::Ordering::Equal,
            BinOp::Ne => ord != std::cmp::Ordering::Equal,
            BinOp::Lt => ord == std::cmp::Ordering::Less,
            BinOp::Le => ord != std::cmp::Ordering::Greater,
            BinOp::Gt => ord == std::cmp::Ordering::Greater,
            BinOp::Ge => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Value::Bool(b);
    }
    // arithmetic
    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
        return Value::Null;
    };
    // keep integer arithmetic exact when both sides are integral
    if let (Some(x), Some(y)) = (l.as_i64(), r.as_i64()) {
        match op {
            BinOp::Add => return Value::Long(x.wrapping_add(y)),
            BinOp::Sub => return Value::Long(x.wrapping_sub(y)),
            BinOp::Mul => return Value::Long(x.wrapping_mul(y)),
            BinOp::Div => {
                return if y == 0 {
                    Value::Null
                } else {
                    Value::Long(x / y)
                };
            }
            BinOp::Mod => {
                return if y == 0 {
                    Value::Null
                } else {
                    Value::Long(x % y)
                };
            }
            _ => {}
        }
    }
    Value::Double(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Value::Null;
            }
            a / b
        }
        BinOp::Mod => {
            if b == 0.0 {
                return Value::Null;
            }
            a % b
        }
        _ => unreachable!(),
    })
}

fn eval_fn(func: ScalarFn, args: &[Value]) -> Value {
    let num = |i: usize| args.get(i).and_then(Value::as_f64);
    match func {
        ScalarFn::Abs => num(0)
            .map(|x| Value::Double(x.abs()))
            .unwrap_or(Value::Null),
        ScalarFn::Log => num(0)
            .filter(|x| *x > 0.0)
            .map(|x| Value::Double(x.ln()))
            .unwrap_or(Value::Null),
        ScalarFn::Log10 => num(0)
            .filter(|x| *x > 0.0)
            .map(|x| Value::Double(x.log10()))
            .unwrap_or(Value::Null),
        ScalarFn::Sqrt => num(0)
            .filter(|x| *x >= 0.0)
            .map(|x| Value::Double(x.sqrt()))
            .unwrap_or(Value::Null),
        ScalarFn::Floor => num(0)
            .map(|x| Value::Double(x.floor()))
            .unwrap_or(Value::Null),
        ScalarFn::Ceil => num(0)
            .map(|x| Value::Double(x.ceil()))
            .unwrap_or(Value::Null),
        ScalarFn::Lower => match args.first() {
            Some(Value::Str(s)) => Value::Str(s.to_lowercase()),
            _ => Value::Null,
        },
        ScalarFn::Upper => match args.first() {
            Some(Value::Str(s)) => Value::Str(s.to_uppercase()),
            _ => Value::Null,
        },
        ScalarFn::Length => match args.first() {
            Some(Value::Str(s)) => Value::Long(s.chars().count() as i64),
            Some(Value::List(vs)) => Value::Long(vs.len() as i64),
            _ => Value::Null,
        },
        ScalarFn::Contains => match (args.first(), args.get(1)) {
            (Some(Value::Str(h)), Some(Value::Str(n))) => Value::Bool(h.contains(n.as_str())),
            (Some(Value::List(vs)), Some(v)) => Value::Bool(vs.iter().any(|x| x.loose_eq(v))),
            _ => Value::Bool(false),
        },
        ScalarFn::StartsWith => match (args.first(), args.get(1)) {
            (Some(Value::Str(h)), Some(Value::Str(n))) => Value::Bool(h.starts_with(n.as_str())),
            _ => Value::Bool(false),
        },
        ScalarFn::EndsWith => match (args.first(), args.get(1)) {
            (Some(Value::Str(h)), Some(Value::Str(n))) => Value::Bool(h.ends_with(n.as_str())),
            _ => Value::Bool(false),
        },
    }
}

/// A [`Binder`] over a flat list of named slots; the common case for tests
/// and for ScrubCentral's joined-row layout.
#[derive(Debug, Clone, Default)]
pub struct SlotBinder {
    slots: Vec<FieldRef>,
}

impl SlotBinder {
    /// Create an empty binder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a slot for `field`, returning its index.
    pub fn push(&mut self, field: FieldRef) -> usize {
        self.slots.push(field);
        self.slots.len() - 1
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no slots are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl Binder for SlotBinder {
    fn bind(&self, field: &FieldRef) -> ScrubResult<usize> {
        // Exact match first (qualifier and all).
        if let Some(i) = self.slots.iter().position(|s| s == field) {
            return Ok(i);
        }
        // Bare reference: match on field name if unambiguous.
        let matches: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.field == field.field
                    && (field.event_type.is_none() || s.event_type == field.event_type)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(ScrubError::Validate(format!("unknown field {field}"))),
            _ => Err(ScrubError::Validate(format!("ambiguous field {field}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
        }
    }

    fn resolve_simple(e: &Expr, fields: &[&str]) -> ResolvedExpr {
        let mut b = SlotBinder::new();
        for f in fields {
            b.push(FieldRef::bare(*f));
        }
        e.resolve(&b).unwrap()
    }

    #[test]
    fn arithmetic_integer_exactness() {
        let e = bin(BinOp::Mul, lit(1000i64), lit(3i64));
        let r = resolve_simple(&e, &[]);
        assert_eq!(r.eval(&[]), Value::Long(3000));
    }

    #[test]
    fn arithmetic_mixed_promotes_to_double() {
        let e = bin(BinOp::Add, lit(1i64), lit(0.5f64));
        let r = resolve_simple(&e, &[]);
        assert_eq!(r.eval(&[]), Value::Double(1.5));
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = bin(BinOp::Div, lit(1i64), lit(0i64));
        assert_eq!(resolve_simple(&e, &[]).eval(&[]), Value::Null);
        let e = bin(BinOp::Div, lit(1.0f64), lit(0.0f64));
        assert_eq!(resolve_simple(&e, &[]).eval(&[]), Value::Null);
        let e = bin(BinOp::Mod, lit(1i64), lit(0i64));
        assert_eq!(resolve_simple(&e, &[]).eval(&[]), Value::Null);
    }

    #[test]
    fn comparisons_across_numeric_widths() {
        let e = bin(BinOp::Eq, lit(5i32), lit(5i64));
        assert_eq!(resolve_simple(&e, &[]).eval(&[]), Value::Bool(true));
        let e = bin(BinOp::Lt, lit(5i32), lit(5.5f64));
        assert_eq!(resolve_simple(&e, &[]).eval(&[]), Value::Bool(true));
    }

    #[test]
    fn null_comparisons_are_false() {
        let e = Expr::Binary {
            op: BinOp::Eq,
            lhs: Box::new(Expr::Literal(Value::Null)),
            rhs: Box::new(lit(1i64)),
        };
        assert_eq!(resolve_simple(&e, &[]).eval(&[]), Value::Bool(false));
    }

    #[test]
    fn boolean_short_circuit() {
        // `false and (1/0 = 1)` must not be NULL — short-circuits to false
        let e = bin(
            BinOp::And,
            lit(false),
            bin(BinOp::Eq, bin(BinOp::Div, lit(1i64), lit(0i64)), lit(1i64)),
        );
        assert_eq!(resolve_simple(&e, &[]).eval(&[]), Value::Bool(false));
        let e = bin(BinOp::Or, lit(true), lit(false));
        assert_eq!(resolve_simple(&e, &[]).eval(&[]), Value::Bool(true));
    }

    #[test]
    fn field_slot_resolution() {
        let e = bin(
            BinOp::Gt,
            Expr::Field(FieldRef::bare("bid_price")),
            lit(1.0f64),
        );
        let r = resolve_simple(&e, &["exchange_id", "bid_price"]);
        assert!(r.eval_bool(&[Value::Long(1), Value::Double(2.0)]));
        assert!(!r.eval_bool(&[Value::Long(1), Value::Double(0.5)]));
    }

    #[test]
    fn qualified_resolution_and_ambiguity() {
        let mut b = SlotBinder::new();
        b.push(FieldRef::qualified("bid", "id"));
        b.push(FieldRef::qualified("click", "id"));
        assert_eq!(b.bind(&FieldRef::qualified("click", "id")).unwrap(), 1);
        assert!(b.bind(&FieldRef::bare("id")).is_err()); // ambiguous
        assert!(b.bind(&FieldRef::bare("nope")).is_err()); // unknown
    }

    #[test]
    fn in_list_and_negation() {
        let e = Expr::InList {
            expr: Box::new(lit(3i64)),
            list: vec![Value::Long(1), Value::Long(3)],
            negated: false,
        };
        assert_eq!(resolve_simple(&e, &[]).eval(&[]), Value::Bool(true));
        let e = Expr::InList {
            expr: Box::new(lit(3i64)),
            list: vec![Value::Long(1)],
            negated: true,
        };
        assert_eq!(resolve_simple(&e, &[]).eval(&[]), Value::Bool(true));
    }

    #[test]
    fn is_null_tests() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::Literal(Value::Null)),
            negated: false,
        };
        assert_eq!(resolve_simple(&e, &[]).eval(&[]), Value::Bool(true));
        let e = Expr::IsNull {
            expr: Box::new(lit(1i64)),
            negated: true,
        };
        assert_eq!(resolve_simple(&e, &[]).eval(&[]), Value::Bool(true));
    }

    #[test]
    fn string_functions() {
        let call = |f, args| Expr::Call { func: f, args };
        assert_eq!(
            resolve_simple(&call(ScalarFn::Lower, vec![lit("ABC")]), &[]).eval(&[]),
            Value::Str("abc".into())
        );
        assert_eq!(
            resolve_simple(&call(ScalarFn::Length, vec![lit("abc")]), &[]).eval(&[]),
            Value::Long(3)
        );
        assert_eq!(
            resolve_simple(
                &call(ScalarFn::Contains, vec![lit("hello"), lit("ell")]),
                &[]
            )
            .eval(&[]),
            Value::Bool(true)
        );
        assert_eq!(
            resolve_simple(
                &call(ScalarFn::StartsWith, vec![lit("hello"), lit("he")]),
                &[]
            )
            .eval(&[]),
            Value::Bool(true)
        );
    }

    #[test]
    fn math_functions_domain_errors_are_null() {
        let call = |f, args| Expr::Call { func: f, args };
        assert_eq!(
            resolve_simple(&call(ScalarFn::Log, vec![lit(-1.0f64)]), &[]).eval(&[]),
            Value::Null
        );
        assert_eq!(
            resolve_simple(&call(ScalarFn::Sqrt, vec![lit(-1.0f64)]), &[]).eval(&[]),
            Value::Null
        );
        assert_eq!(
            resolve_simple(&call(ScalarFn::Log10, vec![lit(100.0f64)]), &[]).eval(&[]),
            Value::Double(2.0)
        );
    }

    #[test]
    fn type_inference_accepts_well_typed() {
        let schema_ty = |f: &FieldRef| -> Option<FieldType> {
            match f.field.as_str() {
                "price" => Some(FieldType::Double),
                "city" => Some(FieldType::Str),
                "ok" => Some(FieldType::Bool),
                _ => None,
            }
        };
        let e = bin(
            BinOp::And,
            bin(BinOp::Gt, Expr::Field(FieldRef::bare("price")), lit(1i64)),
            Expr::Field(FieldRef::bare("ok")),
        );
        assert_eq!(e.infer_type(&schema_ty).unwrap(), FieldType::Bool);
    }

    #[test]
    fn type_inference_rejects_ill_typed() {
        let schema_ty = |f: &FieldRef| -> Option<FieldType> {
            match f.field.as_str() {
                "city" => Some(FieldType::Str),
                _ => None,
            }
        };
        // city + 1
        let e = bin(BinOp::Add, Expr::Field(FieldRef::bare("city")), lit(1i64));
        assert!(e.infer_type(&schema_ty).is_err());
        // unknown field
        let e = Expr::Field(FieldRef::bare("nope"));
        assert!(e.infer_type(&schema_ty).is_err());
        // city < 3
        let e = bin(BinOp::Lt, Expr::Field(FieldRef::bare("city")), lit(3i64));
        assert!(e.infer_type(&schema_ty).is_err());
    }

    #[test]
    fn field_refs_collection() {
        let e = bin(
            BinOp::And,
            bin(
                BinOp::Eq,
                Expr::Field(FieldRef::qualified("bid", "x")),
                lit(1i64),
            ),
            Expr::IsNull {
                expr: Box::new(Expr::Field(FieldRef::bare("y"))),
                negated: false,
            },
        );
        let refs = e.field_refs();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0], &FieldRef::qualified("bid", "x"));
        assert_eq!(refs[1], &FieldRef::bare("y"));
    }

    #[test]
    fn expr_and_combinator() {
        assert_eq!(Expr::and(None, None), None);
        let a = lit(true);
        assert_eq!(Expr::and(Some(a.clone()), None), Some(a.clone()));
        let combined = Expr::and(Some(a.clone()), Some(a.clone())).unwrap();
        assert!(matches!(combined, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn max_slot_tracks_inputs() {
        let e = bin(
            BinOp::Add,
            Expr::Field(FieldRef::bare("a")),
            Expr::Field(FieldRef::bare("c")),
        );
        let mut b = SlotBinder::new();
        b.push(FieldRef::bare("a"));
        b.push(FieldRef::bare("b"));
        b.push(FieldRef::bare("c"));
        let r = e.resolve(&b).unwrap();
        assert_eq!(r.max_slot(), Some(2));
        assert_eq!(ResolvedExpr::Literal(Value::Null).max_slot(), None);
    }

    #[test]
    fn missing_slot_evaluates_to_null() {
        let r = ResolvedExpr::Input(5);
        assert_eq!(r.eval(&[Value::Int(1)]), Value::Null);
    }
}
