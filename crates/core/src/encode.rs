//! Compact binary wire encoding for events and event batches.
//!
//! Hosts ship selected/projected events to ScrubCentral over (possibly
//! cross-continental) links, so the encoding is deliberately compact:
//! varint-encoded integers, length-prefixed strings, one tag byte per value.
//! The same encoding is reused by the logging baseline to account for
//! storage, which keeps the Scrub-vs-logging comparison apples-to-apples.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::columnar;
use crate::config::WireFormat;
use crate::error::{ScrubError, ScrubResult};
use crate::event::{Event, RequestId};
use crate::schema::EventTypeId;
use crate::value::Value;

/// Wire format byte for versioned frames: row (v1) layout after the header.
pub const FORMAT_ROW: u8 = 1;
/// Wire format byte for versioned frames: columnar (v2) layout.
pub const FORMAT_COLUMNAR: u8 = 2;

/// Decoder sanity cap on the claimed event count of a frame.
pub(crate) const MAX_BATCH_EVENTS: usize = 1 << 24;

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_LONG: u8 = 4;
const TAG_FLOAT: u8 = 5;
const TAG_DOUBLE: u8 = 6;
const TAG_DATETIME: u8 = 7;
const TAG_STR: u8 = 8;
const TAG_LIST: u8 = 9;
const TAG_NESTED: u8 = 10;

/// ZigZag-encode a signed integer so small magnitudes stay small.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a LEB128 varint.
pub(crate) fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read a LEB128 varint.
pub(crate) fn get_varint(buf: &mut Bytes) -> ScrubResult<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(ScrubError::Decode("truncated varint".into()));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(ScrubError::Decode("varint overflow".into()));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

pub(crate) fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
        Value::Int(x) => {
            buf.put_u8(TAG_INT);
            put_varint(buf, zigzag(*x as i64));
        }
        Value::Long(x) => {
            buf.put_u8(TAG_LONG);
            put_varint(buf, zigzag(*x));
        }
        Value::Float(x) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f32(*x);
        }
        Value::Double(x) => {
            buf.put_u8(TAG_DOUBLE);
            buf.put_f64(*x);
        }
        Value::DateTime(x) => {
            buf.put_u8(TAG_DATETIME);
            put_varint(buf, zigzag(*x));
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            put_varint(buf, s.len() as u64);
            buf.put_slice(s.as_bytes());
        }
        Value::List(vs) => {
            buf.put_u8(TAG_LIST);
            put_varint(buf, vs.len() as u64);
            for v in vs {
                put_value(buf, v);
            }
        }
        Value::Nested(kv) => {
            buf.put_u8(TAG_NESTED);
            put_varint(buf, kv.len() as u64);
            for (k, v) in kv {
                put_varint(buf, k.len() as u64);
                buf.put_slice(k.as_bytes());
                put_value(buf, v);
            }
        }
    }
}

pub(crate) fn get_string(buf: &mut Bytes) -> ScrubResult<String> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(ScrubError::Decode("truncated string".into()));
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| ScrubError::Decode("invalid utf-8".into()))
}

pub(crate) fn get_value(buf: &mut Bytes, depth: u32) -> ScrubResult<Value> {
    if depth > 16 {
        return Err(ScrubError::Decode("value nesting too deep".into()));
    }
    if !buf.has_remaining() {
        return Err(ScrubError::Decode("truncated value".into()));
    }
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_INT => Value::Int(unzigzag(get_varint(buf)?) as i32),
        TAG_LONG => Value::Long(unzigzag(get_varint(buf)?)),
        TAG_FLOAT => {
            if buf.remaining() < 4 {
                return Err(ScrubError::Decode("truncated float".into()));
            }
            Value::Float(buf.get_f32())
        }
        TAG_DOUBLE => {
            if buf.remaining() < 8 {
                return Err(ScrubError::Decode("truncated double".into()));
            }
            Value::Double(buf.get_f64())
        }
        TAG_DATETIME => Value::DateTime(unzigzag(get_varint(buf)?)),
        TAG_STR => Value::Str(get_string(buf)?),
        TAG_LIST => {
            let n = get_varint(buf)? as usize;
            if n > buf.remaining() {
                return Err(ScrubError::Decode("list length exceeds buffer".into()));
            }
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(get_value(buf, depth + 1)?);
            }
            Value::List(vs)
        }
        TAG_NESTED => {
            let n = get_varint(buf)? as usize;
            if n > buf.remaining() {
                return Err(ScrubError::Decode("nested length exceeds buffer".into()));
            }
            let mut kv = Vec::with_capacity(n);
            for _ in 0..n {
                let k = get_string(buf)?;
                kv.push((k, get_value(buf, depth + 1)?));
            }
            Value::Nested(kv)
        }
        other => {
            return Err(ScrubError::Decode(format!("unknown value tag {other}")));
        }
    })
}

/// Encode a single event.
pub fn encode_event(buf: &mut BytesMut, ev: &Event) {
    put_varint(buf, ev.type_id.0 as u64);
    put_varint(buf, ev.request_id.0);
    put_varint(buf, zigzag(ev.timestamp));
    put_varint(buf, ev.values.len() as u64);
    for v in &ev.values {
        put_value(buf, v);
    }
}

/// Decode a single event.
pub fn decode_event(buf: &mut Bytes) -> ScrubResult<Event> {
    let type_id = EventTypeId(get_varint(buf)? as u32);
    let request_id = RequestId(get_varint(buf)?);
    let timestamp = unzigzag(get_varint(buf)?);
    let arity = get_varint(buf)? as usize;
    if arity > 1 << 16 {
        return Err(ScrubError::Decode("implausible event arity".into()));
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(get_value(buf, 0)?);
    }
    Ok(Event {
        type_id,
        request_id,
        timestamp,
        values,
    })
}

/// Encode a batch of events into a single frame (count-prefixed).
///
/// This is the *legacy* (unversioned) row frame, kept byte-identical for
/// compatibility with already-stored data (the logging baseline) and old
/// agents. New frames should use [`encode_batch_format`], which prefixes
/// a `[0x00, format]` header.
pub fn encode_batch(events: &[Event]) -> Bytes {
    let mut buf = BytesMut::with_capacity(events.len() * 32 + 8);
    put_varint(&mut buf, events.len() as u64);
    for ev in events {
        encode_event(&mut buf, ev);
    }
    buf.freeze()
}

/// Encode a batch into a *versioned* frame: `[0x00, format, body]`.
///
/// The leading `0x00` cannot open a legacy non-empty frame (the count
/// varint of `n >= 1` never starts with a zero byte) and the legacy empty
/// frame is exactly one byte, so [`decode_batch`] can tell the three
/// apart without external context.
pub fn encode_batch_format(events: &[Event], format: WireFormat) -> Bytes {
    let mut buf = BytesMut::with_capacity(events.len() * 32 + 16);
    buf.put_u8(0x00);
    match format {
        WireFormat::Row => {
            buf.put_u8(FORMAT_ROW);
            put_varint(&mut buf, events.len() as u64);
            for ev in events {
                encode_event(&mut buf, ev);
            }
        }
        WireFormat::Columnar => {
            buf.put_u8(FORMAT_COLUMNAR);
            columnar::encode_columnar_body(&mut buf, events);
        }
    }
    buf.freeze()
}

/// Decode a batch frame produced by [`encode_batch`] or
/// [`encode_batch_format`] (any wire format).
pub fn decode_batch(buf: Bytes) -> ScrubResult<Vec<Event>> {
    let mut out = Vec::new();
    decode_batch_into(buf, &mut out)?;
    Ok(out)
}

/// Decode a batch frame into a caller-provided vector (cleared first).
///
/// Hot-path variant of [`decode_batch`]: central decodes one frame per
/// arriving batch, so reusing the output vector amortises its allocation
/// across frames. On error the vector contents are unspecified (but valid).
/// Dispatches on the wire format: frames opening with `0x00` and at least
/// two bytes carry a format byte; anything else is a legacy row frame.
pub fn decode_batch_into(mut buf: Bytes, out: &mut Vec<Event>) -> ScrubResult<()> {
    out.clear();
    if buf.len() >= 2 && buf[0] == 0x00 {
        let format = buf[1];
        buf.advance(2);
        return match format {
            FORMAT_ROW => decode_row_body(buf, out),
            FORMAT_COLUMNAR => {
                let batch = columnar::decode_columnar_body(buf)?;
                out.reserve(batch.event_count().min(4096));
                batch.push_events(out);
                Ok(())
            }
            other => Err(ScrubError::Decode(format!("unknown wire format {other}"))),
        };
    }
    decode_row_body(buf, out)
}

fn decode_row_body(mut buf: Bytes, out: &mut Vec<Event>) -> ScrubResult<()> {
    let n = get_varint(&mut buf)? as usize;
    if n > MAX_BATCH_EVENTS {
        return Err(ScrubError::Decode("implausible batch size".into()));
    }
    out.reserve(n.min(4096));
    for _ in 0..n {
        out.push(decode_event(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(ScrubError::Decode("trailing bytes after batch".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> Event {
        Event::new(
            EventTypeId(3),
            RequestId(123456789),
            -42,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(-5),
                Value::Long(1 << 40),
                Value::Float(1.5),
                Value::Double(-2.25),
                Value::DateTime(1_700_000_000_000),
                Value::Str("héllo".into()),
                Value::List(vec![Value::Int(1), Value::Int(2)]),
                Value::Nested(vec![("k".into(), Value::Str("v".into()))]),
            ],
        )
    }

    #[test]
    fn event_round_trip() {
        let ev = sample_event();
        let mut buf = BytesMut::new();
        encode_event(&mut buf, &ev);
        let mut bytes = buf.freeze();
        let back = decode_event(&mut bytes).unwrap();
        assert_eq!(back, ev);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn batch_round_trip() {
        let evs: Vec<Event> = (0..100)
            .map(|i| {
                Event::new(
                    EventTypeId(i % 4),
                    RequestId(i as u64 * 7),
                    i as i64,
                    vec![Value::Long(i as i64), Value::Str(format!("e{i}"))],
                )
            })
            .collect();
        let frame = encode_batch(&evs);
        let back = decode_batch(frame).unwrap();
        assert_eq!(back, evs);
    }

    #[test]
    fn empty_batch() {
        let frame = encode_batch(&[]);
        assert_eq!(decode_batch(frame).unwrap(), vec![]);
    }

    #[test]
    fn decode_into_reuses_and_clears_the_buffer() {
        let evs: Vec<Event> = (0..10)
            .map(|i| Event::new(EventTypeId(0), RequestId(i), i as i64, vec![Value::Int(1)]))
            .collect();
        let mut out = Vec::new();
        decode_batch_into(encode_batch(&evs), &mut out).unwrap();
        assert_eq!(out, evs);
        let cap = out.capacity();
        // a second, smaller frame reuses the allocation and replaces content
        decode_batch_into(encode_batch(&evs[..3]), &mut out).unwrap();
        assert_eq!(out, evs[..3]);
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let ev = sample_event();
        let mut buf = BytesMut::new();
        encode_event(&mut buf, &ev);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            // every prefix must fail cleanly
            assert!(decode_event(&mut partial).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn garbage_tag_rejected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 0); // type
        put_varint(&mut buf, 0); // req
        put_varint(&mut buf, 0); // ts
        put_varint(&mut buf, 1); // arity
        buf.put_u8(200); // bogus tag
        assert!(decode_event(&mut buf.freeze()).is_err());
    }

    #[test]
    fn trailing_bytes_in_batch_rejected() {
        let frame = encode_batch(&[sample_event()]);
        let mut extended = BytesMut::from(&frame[..]);
        extended.put_u8(0);
        assert!(decode_batch(extended.freeze()).is_err());
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn versioned_frames_decode_identically_to_legacy() {
        let evs: Vec<Event> = (0..40)
            .map(|i| {
                Event::new(
                    EventTypeId(1),
                    RequestId(i),
                    i as i64,
                    vec![
                        Value::Long(i as i64 % 5),
                        Value::Str(format!("v{}", i % 3)),
                        if i % 4 == 0 {
                            Value::Null
                        } else {
                            Value::Double(0.5)
                        },
                    ],
                )
            })
            .collect();
        let legacy = encode_batch(&evs);
        let row = encode_batch_format(&evs, WireFormat::Row);
        let col = encode_batch_format(&evs, WireFormat::Columnar);
        assert_eq!(&row[..2], &[0x00, FORMAT_ROW]);
        assert_eq!(&col[..2], &[0x00, FORMAT_COLUMNAR]);
        assert_eq!(decode_batch(legacy).unwrap(), evs);
        assert_eq!(decode_batch(row).unwrap(), evs);
        assert_eq!(
            decode_batch(col).unwrap(),
            evs,
            "row-vs-columnar differential"
        );
    }

    #[test]
    fn legacy_empty_frame_still_decodes() {
        // the legacy empty frame is the single byte 0x00 — it must not be
        // mistaken for a versioned header
        let frame = encode_batch(&[]);
        assert_eq!(&frame[..], &[0x00]);
        assert_eq!(decode_batch(frame).unwrap(), vec![]);
        for fmt in [WireFormat::Row, WireFormat::Columnar] {
            assert_eq!(decode_batch(encode_batch_format(&[], fmt)).unwrap(), vec![]);
        }
    }

    #[test]
    fn unknown_format_byte_rejected() {
        let frame = Bytes::copy_from_slice(&[0x00, 0x77, 0x01]);
        assert!(decode_batch(frame).is_err());
    }

    #[test]
    fn varints_are_compact_for_small_values() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 5);
        assert_eq!(buf.len(), 1);
        put_varint(&mut buf, 300);
        assert_eq!(buf.len(), 3);
    }
}
