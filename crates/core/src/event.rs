//! Concrete events: an n-tuple of user field values plus the two system
//! fields Scrub annotates every event with (§3.1) — a unique request
//! identifier and a timestamp. "The size of this metadata is bounded and is
//! kept to the minimum necessary to support equi-joins and windowing."

use serde::{Deserialize, Serialize};

use crate::schema::{EventSchema, EventTypeId, SYS_REQUEST_ID, SYS_TIMESTAMP};
use crate::value::Value;

/// The request identifier system field: correlates events produced while
/// serving the same application request, across machines and services. It is
/// the *only* join key Scrub supports.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// A concrete Scrub event.
///
/// Field values are stored densely in schema order; names resolve through the
/// [`EventSchema`]. Events are cheap to clone relative to their payload
/// (strings dominate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Registered event type.
    pub type_id: EventTypeId,
    /// System field: request correlation id.
    pub request_id: RequestId,
    /// System field: event creation time, milliseconds since epoch
    /// (virtual time under simulation).
    pub timestamp: i64,
    /// User field values, in schema order.
    pub values: Vec<Value>,
}

impl Event {
    /// Build an event. The caller is responsible for schema conformance
    /// (checked variants live on [`EventSchema::check_tuple`]; the hot tap
    /// path skips the check, mirroring the paper's "minimal impact" stance).
    pub fn new(
        type_id: EventTypeId,
        request_id: RequestId,
        timestamp: i64,
        values: Vec<Value>,
    ) -> Self {
        Event {
            type_id,
            request_id,
            timestamp,
            values,
        }
    }

    /// Read a field by name, resolving system pseudo-fields too.
    pub fn field(&self, schema: &EventSchema, name: &str) -> Option<Value> {
        match name {
            SYS_REQUEST_ID => Some(Value::Long(self.request_id.0 as i64)),
            SYS_TIMESTAMP => Some(Value::DateTime(self.timestamp)),
            _ => schema
                .field_index(name)
                .map(|i| self.values.get(i).cloned().unwrap_or(Value::Null)),
        }
    }

    /// Read a field by *resolved slot*, the representation compiled host
    /// plans use so the hot path never does string lookups.
    pub fn slot(&self, slot: FieldSlot) -> Value {
        match slot {
            FieldSlot::RequestId => Value::Long(self.request_id.0 as i64),
            FieldSlot::Timestamp => Value::DateTime(self.timestamp),
            FieldSlot::User(i) => self.values.get(i).cloned().unwrap_or(Value::Null),
        }
    }

    /// Approximate in-memory / wire footprint in bytes, used by the byte
    /// accounting in the transport and the logging-baseline comparison.
    pub fn approx_bytes(&self) -> usize {
        let mut n = 4 + 8 + 8; // type id + request id + timestamp
        for v in &self.values {
            n += value_bytes(v);
        }
        n
    }
}

fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 5,
        Value::Long(_) | Value::Double(_) | Value::DateTime(_) => 9,
        Value::Str(s) => 5 + s.len(),
        Value::List(vs) => 5 + vs.iter().map(value_bytes).sum::<usize>(),
        Value::Nested(kv) => {
            5 + kv
                .iter()
                .map(|(k, v)| 5 + k.len() + value_bytes(v))
                .sum::<usize>()
        }
    }
}

/// A resolved reference to an event field: either one of the two system
/// fields or a user field index. Produced by the planner, consumed by the
/// host-side projection/selection evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldSlot {
    /// The `request_id` system field.
    RequestId,
    /// The `timestamp` system field.
    Timestamp,
    /// User field at this index in schema order.
    User(usize),
}

/// Trait implemented by `scrub_event!`-generated structs: turns a typed
/// application-side record into the dynamic tuple the tap ships.
pub trait ToEvent {
    /// The event type label this record belongs to.
    fn event_type() -> &'static str;
    /// The event schema (field names + types) of this record.
    fn schema() -> EventSchema;
    /// Convert to the dense value tuple, consuming the record.
    fn into_values(self) -> Vec<Value>;
}

/// Declares a Scrub event type the way the paper's Java annotations do
/// (Figure 1), generating a plain struct plus a [`ToEvent`] impl.
///
/// ```
/// use scrub_core::scrub_event;
/// use scrub_core::event::ToEvent;
///
/// scrub_event! {
///     /// Bid response sent back to an ad exchange.
///     pub struct Bid("bid") {
///         exchange_id: long,
///         city: string,
///         bid_price: double,
///         campaign_id: long,
///     }
/// }
///
/// let schema = Bid::schema();
/// assert_eq!(Bid::event_type(), "bid");
/// assert_eq!(schema.arity(), 4);
/// let values = Bid { exchange_id: 7, city: "porto".into(), bid_price: 1.5, campaign_id: 9 }
///     .into_values();
/// assert_eq!(values.len(), 4);
/// ```
///
/// Supported field type keywords: `boolean`, `int`, `long`, `float`,
/// `double`, `datetime`, `string`, `list_long`, `list_string`,
/// `list_double`.
#[macro_export]
macro_rules! scrub_event {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident ($label:literal) {
            $($field:ident : $fty:ident),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, PartialEq)]
        $vis struct $name {
            $(pub $field: $crate::scrub_event!(@rust $fty),)+
        }

        impl $crate::event::ToEvent for $name {
            fn event_type() -> &'static str { $label }

            fn schema() -> $crate::schema::EventSchema {
                $crate::schema::EventSchema::new(
                    $label,
                    vec![$($crate::schema::FieldDef::new(
                        stringify!($field),
                        $crate::scrub_event!(@ty $fty),
                    ),)+],
                )
                .expect("scrub_event! generated an invalid schema")
            }

            fn into_values(self) -> Vec<$crate::value::Value> {
                vec![$($crate::value::Value::from(self.$field),)+]
            }
        }
    };

    (@ty boolean) => { $crate::schema::FieldType::Bool };
    (@ty int) => { $crate::schema::FieldType::Int };
    (@ty long) => { $crate::schema::FieldType::Long };
    (@ty float) => { $crate::schema::FieldType::Float };
    (@ty double) => { $crate::schema::FieldType::Double };
    (@ty datetime) => { $crate::schema::FieldType::DateTime };
    (@ty string) => { $crate::schema::FieldType::Str };
    (@ty list_long) => { $crate::schema::FieldType::List(Box::new($crate::schema::FieldType::Long)) };
    (@ty list_string) => { $crate::schema::FieldType::List(Box::new($crate::schema::FieldType::Str)) };
    (@ty list_double) => { $crate::schema::FieldType::List(Box::new($crate::schema::FieldType::Double)) };

    (@rust boolean) => { bool };
    (@rust int) => { i32 };
    (@rust long) => { i64 };
    (@rust float) => { f32 };
    (@rust double) => { f64 };
    (@rust datetime) => { i64 };
    (@rust string) => { String };
    (@rust list_long) => { Vec<i64> };
    (@rust list_string) => { Vec<String> };
    (@rust list_double) => { Vec<f64> };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FieldDef, FieldType};

    scrub_event! {
        /// Test bid event mirroring Figure 1 of the paper.
        pub struct Bid("bid") {
            exchange_id: long,
            city: string,
            country: string,
            bid_price: double,
            campaign_id: long,
        }
    }

    #[test]
    fn macro_generates_schema_matching_figure_1() {
        let s = Bid::schema();
        assert_eq!(s.name, "bid");
        assert_eq!(
            s.fields,
            vec![
                FieldDef::new("exchange_id", FieldType::Long),
                FieldDef::new("city", FieldType::Str),
                FieldDef::new("country", FieldType::Str),
                FieldDef::new("bid_price", FieldType::Double),
                FieldDef::new("campaign_id", FieldType::Long),
            ]
        );
    }

    #[test]
    fn macro_values_conform_to_schema() {
        let b = Bid {
            exchange_id: 3,
            city: "san jose".into(),
            country: "us".into(),
            bid_price: 1.25,
            campaign_id: 42,
        };
        let values = b.into_values();
        Bid::schema().check_tuple(&values).unwrap();
        assert_eq!(values[0], Value::Long(3));
        assert_eq!(values[3], Value::Double(1.25));
    }

    #[test]
    fn field_access_including_system_fields() {
        let schema = Bid::schema();
        let ev = Event::new(
            EventTypeId(0),
            RequestId(77),
            1_000,
            Bid {
                exchange_id: 3,
                city: "porto".into(),
                country: "pt".into(),
                bid_price: 0.5,
                campaign_id: 1,
            }
            .into_values(),
        );
        assert_eq!(ev.field(&schema, "request_id"), Some(Value::Long(77)));
        assert_eq!(ev.field(&schema, "timestamp"), Some(Value::DateTime(1_000)));
        assert_eq!(ev.field(&schema, "city"), Some(Value::Str("porto".into())));
        assert_eq!(ev.field(&schema, "missing"), None);
    }

    #[test]
    fn slot_access() {
        let ev = Event::new(EventTypeId(0), RequestId(5), 9, vec![Value::Int(1)]);
        assert_eq!(ev.slot(FieldSlot::RequestId), Value::Long(5));
        assert_eq!(ev.slot(FieldSlot::Timestamp), Value::DateTime(9));
        assert_eq!(ev.slot(FieldSlot::User(0)), Value::Int(1));
        assert_eq!(ev.slot(FieldSlot::User(3)), Value::Null);
    }

    #[test]
    fn byte_accounting_scales_with_payload() {
        let small = Event::new(EventTypeId(0), RequestId(1), 0, vec![Value::Int(1)]);
        let big = Event::new(
            EventTypeId(0),
            RequestId(1),
            0,
            vec![Value::Str("x".repeat(100))],
        );
        assert!(big.approx_bytes() > small.approx_bytes() + 90);
    }

    #[test]
    fn request_id_display() {
        assert_eq!(RequestId(9).to_string(), "req#9");
    }
}
