//! Event type definitions and the schema registry.
//!
//! §3.1: "The definition of an event takes two arguments: the event type (a
//! string label), and a list of fields and their data types." The paper uses
//! Java annotations (`@ScrubType`, `@ScrubField`); in Rust the
//! [`scrub_event!`](crate::scrub_event) macro plays that role, expanding to a
//! [`EventSchema`] plus a typed emitter struct.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::error::{ScrubError, ScrubResult};
use crate::value::Value;

/// Static type of an event field (§3.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldType {
    /// `boolean`
    Bool,
    /// `int`
    Int,
    /// `long`
    Long,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `date/time`
    DateTime,
    /// `string`
    Str,
    /// Homogeneous list of a primitive type.
    List(Box<FieldType>),
    /// Nested object (schema-less, e.g. XML-encoded sub-record).
    Nested,
}

impl FieldType {
    /// True if the type is one of the numeric primitives.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            FieldType::Int | FieldType::Long | FieldType::Float | FieldType::Double
        )
    }

    /// True if a runtime [`Value`] inhabits this static type.
    ///
    /// `Null` inhabits every type (fields may be absent).
    pub fn admits(&self, v: &Value) -> bool {
        match (self, v) {
            (_, Value::Null) => true,
            (FieldType::Bool, Value::Bool(_)) => true,
            (FieldType::Int, Value::Int(_)) => true,
            (FieldType::Long, Value::Long(_)) => true,
            // widening int -> long is fine
            (FieldType::Long, Value::Int(_)) => true,
            (FieldType::Float, Value::Float(_)) => true,
            (FieldType::Double, Value::Double(_)) => true,
            (FieldType::Double, Value::Float(_)) => true,
            (FieldType::DateTime, Value::DateTime(_)) => true,
            (FieldType::DateTime, Value::Long(_)) => true,
            (FieldType::Str, Value::Str(_)) => true,
            (FieldType::List(inner), Value::List(vs)) => vs.iter().all(|v| inner.admits(v)),
            (FieldType::Nested, Value::Nested(_)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldType::Bool => write!(f, "boolean"),
            FieldType::Int => write!(f, "int"),
            FieldType::Long => write!(f, "long"),
            FieldType::Float => write!(f, "float"),
            FieldType::Double => write!(f, "double"),
            FieldType::DateTime => write!(f, "datetime"),
            FieldType::Str => write!(f, "string"),
            FieldType::List(inner) => write!(f, "list<{inner}>"),
            FieldType::Nested => write!(f, "nested"),
        }
    }
}

/// A single field declaration: name + static type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldDef {
    /// Field name, unique within the event type.
    pub name: String,
    /// Static type of the field.
    pub ty: FieldType,
}

impl FieldDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: FieldType) -> Self {
        FieldDef {
            name: name.into(),
            ty,
        }
    }
}

/// Numeric identifier assigned to an event type on registration.
///
/// Hot paths (the host tap, wire encoding) use the id; the query language
/// uses the string label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventTypeId(pub u32);

impl fmt::Display for EventTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ety#{}", self.0)
    }
}

/// The schema of one event type: its label and ordered field declarations.
///
/// In addition to the user fields below, every concrete event carries the two
/// *system fields* of §3.1 — a unique request identifier and a timestamp —
/// which exist on [`Event`](crate::event::Event) itself rather than in the
/// tuple. They are addressable in queries as `request_id` and `timestamp`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventSchema {
    /// String label of the event type (e.g. `"bid"`).
    pub name: String,
    /// Ordered user-defined fields.
    pub fields: Vec<FieldDef>,
}

/// Name of the system-provided request identifier pseudo-field.
pub const SYS_REQUEST_ID: &str = "request_id";
/// Name of the system-provided timestamp pseudo-field.
pub const SYS_TIMESTAMP: &str = "timestamp";

impl EventSchema {
    /// Create a schema from a label and field list.
    ///
    /// Returns an error on duplicate field names or a field shadowing a
    /// system field name.
    pub fn new(name: impl Into<String>, fields: Vec<FieldDef>) -> ScrubResult<Self> {
        let name = name.into();
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            if f.name == SYS_REQUEST_ID || f.name == SYS_TIMESTAMP {
                return Err(ScrubError::Schema(format!(
                    "event type {name:?}: field {:?} shadows a system field",
                    f.name
                )));
            }
            if !seen.insert(f.name.as_str()) {
                return Err(ScrubError::Schema(format!(
                    "event type {name:?}: duplicate field {:?}",
                    f.name
                )));
            }
        }
        Ok(EventSchema { name, fields })
    }

    /// Index of a user field by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field definition by name.
    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Static type of a field, *including* the system pseudo-fields
    /// (`request_id` is a `long`, `timestamp` is a `datetime`).
    pub fn field_type(&self, name: &str) -> Option<FieldType> {
        match name {
            SYS_REQUEST_ID => Some(FieldType::Long),
            SYS_TIMESTAMP => Some(FieldType::DateTime),
            _ => self.field(name).map(|f| f.ty.clone()),
        }
    }

    /// Number of user fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Validate that a tuple of values inhabits this schema.
    pub fn check_tuple(&self, values: &[Value]) -> ScrubResult<()> {
        if values.len() != self.fields.len() {
            return Err(ScrubError::Schema(format!(
                "event type {:?}: expected {} fields, got {}",
                self.name,
                self.fields.len(),
                values.len()
            )));
        }
        for (f, v) in self.fields.iter().zip(values) {
            if !f.ty.admits(v) {
                return Err(ScrubError::Schema(format!(
                    "event type {:?}: field {:?} expects {}, got {} ({v})",
                    self.name,
                    f.name,
                    f.ty,
                    v.type_name()
                )));
            }
        }
        Ok(())
    }
}

/// Thread-safe registry mapping event type labels to schemas and ids.
///
/// One registry is shared by the application (which registers types at
/// startup — Scrub deliberately avoids dynamic instrumentation, §5/§6), the
/// query server (which validates queries against it) and ScrubCentral.
#[derive(Debug, Default)]
pub struct SchemaRegistry {
    inner: RwLock<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    schemas: Vec<Arc<EventSchema>>,
    by_name: HashMap<String, EventTypeId>,
}

impl SchemaRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an event type; returns its id.
    ///
    /// Re-registering an identical schema is idempotent; registering a
    /// *different* schema under an existing name is an error (the paper's
    /// deployments roll schemas forward with new type labels).
    pub fn register(&self, schema: EventSchema) -> ScrubResult<EventTypeId> {
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_name.get(&schema.name) {
            let existing = &inner.schemas[id.0 as usize];
            if **existing == schema {
                return Ok(id);
            }
            return Err(ScrubError::Schema(format!(
                "event type {:?} already registered with a different schema",
                schema.name
            )));
        }
        let id = EventTypeId(inner.schemas.len() as u32);
        inner.by_name.insert(schema.name.clone(), id);
        inner.schemas.push(Arc::new(schema));
        Ok(id)
    }

    /// Look up a schema by id.
    pub fn schema(&self, id: EventTypeId) -> Option<Arc<EventSchema>> {
        self.inner.read().schemas.get(id.0 as usize).cloned()
    }

    /// Look up an event type id by label.
    pub fn id_of(&self, name: &str) -> Option<EventTypeId> {
        self.inner.read().by_name.get(name).copied()
    }

    /// Look up a schema by label.
    pub fn schema_by_name(&self, name: &str) -> Option<(EventTypeId, Arc<EventSchema>)> {
        let inner = self.inner.read();
        let id = *inner.by_name.get(name)?;
        Some((id, inner.schemas[id.0 as usize].clone()))
    }

    /// Number of registered event types.
    pub fn len(&self) -> usize {
        self.inner.read().schemas.len()
    }

    /// True if no event types are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Labels of all registered event types, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.inner
            .read()
            .schemas
            .iter()
            .map(|s| s.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid_schema() -> EventSchema {
        EventSchema::new(
            "bid",
            vec![
                FieldDef::new("exchange_id", FieldType::Long),
                FieldDef::new("city", FieldType::Str),
                FieldDef::new("bid_price", FieldType::Double),
            ],
        )
        .unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let reg = SchemaRegistry::new();
        let id = reg.register(bid_schema()).unwrap();
        assert_eq!(reg.id_of("bid"), Some(id));
        let s = reg.schema(id).unwrap();
        assert_eq!(s.name, "bid");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.field_index("city"), Some(1));
        assert!(reg.schema_by_name("nope").is_none());
    }

    #[test]
    fn idempotent_reregistration() {
        let reg = SchemaRegistry::new();
        let a = reg.register(bid_schema()).unwrap();
        let b = reg.register(bid_schema()).unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn conflicting_reregistration_fails() {
        let reg = SchemaRegistry::new();
        reg.register(bid_schema()).unwrap();
        let other = EventSchema::new("bid", vec![FieldDef::new("x", FieldType::Int)]).unwrap();
        assert!(reg.register(other).is_err());
    }

    #[test]
    fn duplicate_fields_rejected() {
        let r = EventSchema::new(
            "e",
            vec![
                FieldDef::new("a", FieldType::Int),
                FieldDef::new("a", FieldType::Long),
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn system_field_shadowing_rejected() {
        assert!(EventSchema::new("e", vec![FieldDef::new("request_id", FieldType::Long)]).is_err());
        assert!(EventSchema::new("e", vec![FieldDef::new("timestamp", FieldType::Long)]).is_err());
    }

    #[test]
    fn system_pseudo_field_types() {
        let s = bid_schema();
        assert_eq!(s.field_type("request_id"), Some(FieldType::Long));
        assert_eq!(s.field_type("timestamp"), Some(FieldType::DateTime));
        assert_eq!(s.field_type("bid_price"), Some(FieldType::Double));
        assert_eq!(s.field_type("nope"), None);
    }

    #[test]
    fn type_admission() {
        assert!(FieldType::Long.admits(&Value::Int(3)));
        assert!(FieldType::Double.admits(&Value::Float(3.0)));
        assert!(!FieldType::Int.admits(&Value::Long(3)));
        assert!(FieldType::Str.admits(&Value::Null));
        assert!(FieldType::List(Box::new(FieldType::Int))
            .admits(&Value::List(vec![Value::Int(1), Value::Int(2)])));
        assert!(!FieldType::List(Box::new(FieldType::Int))
            .admits(&Value::List(vec![Value::Str("x".into())])));
        assert!(FieldType::DateTime.admits(&Value::Long(5)));
    }

    #[test]
    fn tuple_checking() {
        let s = bid_schema();
        assert!(s
            .check_tuple(&[Value::Long(1), Value::Str("sj".into()), Value::Double(0.5)])
            .is_ok());
        assert!(s.check_tuple(&[Value::Long(1)]).is_err());
        assert!(s
            .check_tuple(&[
                Value::Str("x".into()),
                Value::Str("sj".into()),
                Value::Double(0.5)
            ])
            .is_err());
    }

    #[test]
    fn numeric_types() {
        assert!(FieldType::Int.is_numeric());
        assert!(FieldType::Double.is_numeric());
        assert!(!FieldType::Str.is_numeric());
        assert!(!FieldType::DateTime.is_numeric());
    }
}
