//! Query validation and planning: splitting a ScrubQL query into *query
//! objects* (§4).
//!
//! Scrub's primary query-optimization goal is minimizing impact on the
//! hosts, so planning departs from the classical "push work to the data"
//! strategy: **only selection and projection run on the hosts** (they
//! shrink the data the host must ship); join, group-by and aggregation are
//! all placed in ScrubCentral. The planner therefore produces:
//!
//! * one [`HostPlan`] per FROM event type — predicate + projection +
//!   per-event sampling, compiled to slot-indexed form; and
//! * one [`CentralPlan`] — the request-id equi-join, residual (cross-type)
//!   selection, group-by, aggregation and window logic.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::config::ScrubConfig;
use crate::error::{ScrubError, ScrubResult};
use crate::event::FieldSlot;
use crate::expr::{BinOp, Binder, Expr, FieldRef, ResolvedExpr};
use crate::ql::ast::{AggFn, QuerySpec, SampleSpec, SelectItem};
use crate::schema::{
    EventSchema, EventTypeId, FieldType, SchemaRegistry, SYS_REQUEST_ID, SYS_TIMESTAMP,
};

/// Unique identifier the query server assigns each accepted query; all
/// query objects and result batches are tagged with it (§4).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q#{}", self.0)
    }
}

/// The selection + projection + sampling *query object* shipped to each
/// host participating in a query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostPlan {
    /// Owning query.
    pub query_id: QueryId,
    /// Event type label this plan taps.
    pub event_type: String,
    /// Resolved event type id.
    pub type_id: EventTypeId,
    /// Number of user fields in the event type (slot layout: user fields at
    /// `0..arity`, `request_id` at `arity`, `timestamp` at `arity + 1`).
    pub arity: usize,
    /// Host-side selection; `None` means all events of the type match.
    pub predicate: Option<ResolvedExpr>,
    /// Host-side projection: the (few) field slots shipped to central.
    pub projection: Vec<FieldSlot>,
    /// Per-event sampling fraction in (0, 1].
    pub event_fraction: f64,
    /// Planner's estimate of the predicate's selectivity (System-R style
    /// magic fractions; `1.0` when there is no predicate). `EXPLAIN
    /// ANALYZE` audits this against the observed match rate.
    #[serde(default)]
    pub est_selectivity: f64,
}

impl HostPlan {
    /// Slot index of the `request_id` pseudo-field under this plan's layout.
    pub fn request_id_slot(&self) -> usize {
        self.arity
    }

    /// Slot index of the `timestamp` pseudo-field under this plan's layout.
    pub fn timestamp_slot(&self) -> usize {
        self.arity + 1
    }
}

/// One input stream of the central plan and where its fields land in the
/// joined row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentralInput {
    /// Event type label.
    pub event_type: String,
    /// Resolved type id.
    pub type_id: EventTypeId,
    /// Projected user-field names, in shipped order.
    pub fields: Vec<String>,
    /// Offset of this input's block in the joined row. Block layout:
    /// `fields...` then `request_id` then `timestamp`.
    pub block_offset: usize,
    /// Whether the matching host plan carries a predicate (so central can
    /// enumerate the host-side operators without seeing the host plans).
    #[serde(default)]
    pub has_predicate: bool,
    /// Planner's selectivity estimate for that predicate (`1.0` without
    /// one); mirrored from [`HostPlan::est_selectivity`].
    #[serde(default)]
    pub pred_selectivity: f64,
}

impl CentralInput {
    /// Width of this input's block in the joined row.
    pub fn block_len(&self) -> usize {
        self.fields.len() + 2
    }
}

/// An aggregate application in the central plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggSpec {
    /// Aggregation function.
    pub func: AggFn,
    /// Argument over the joined row; `None` only for `COUNT(*)`.
    pub arg: Option<ResolvedExpr>,
}

/// How a result column is produced in aggregate mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputCol {
    /// The i-th group-by key.
    Group(usize),
    /// The i-th aggregate.
    Agg(usize),
}

/// What ScrubCentral computes per window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OutputMode {
    /// No aggregation: every (joined, selected) row is a result row; the
    /// expressions are evaluated per row.
    Stream(Vec<ResolvedExpr>),
    /// Grouped aggregation per tumbling window.
    Aggregate {
        /// Group-by key expressions over the joined row (empty = one
        /// global group).
        group_by: Vec<ResolvedExpr>,
        /// Aggregates, in select-list order of appearance.
        aggregates: Vec<AggSpec>,
        /// Mapping from select items to keys/aggregates.
        output: Vec<OutputCol>,
    },
}

/// Host-population metadata the query server fills in at dispatch time; the
/// two-stage sampling estimator (Eqs 1–3) needs `N` (hosts matching the
/// target clause) and `n` (hosts actually selected after host sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct HostSampleInfo {
    /// Hosts matching the target clause (`N`).
    pub matching: usize,
    /// Hosts selected to run the query (`n`).
    pub selected: usize,
}

/// The join/group-by/aggregation *query object* sent to ScrubCentral (§4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentralPlan {
    /// Owning query.
    pub query_id: QueryId,
    /// Window length (ms).
    pub window_ms: i64,
    /// Slide step (ms); equal to `window_ms` for tumbling windows. A
    /// smaller slide produces overlapping windows starting every
    /// `slide_ms` (the §3.2 sliding-window extension).
    pub slide_ms: i64,
    /// Input streams (one per FROM type), with joined-row layout.
    pub inputs: Vec<CentralInput>,
    /// Cross-type selection that could not be pushed to hosts; evaluated
    /// after the join.
    pub residual: Option<ResolvedExpr>,
    /// Stream or aggregate output.
    pub mode: OutputMode,
    /// Result column headers.
    pub headers: Vec<String>,
    /// Total joined-row width.
    pub row_width: usize,
    /// Sampling spec (used to scale estimates and compute error bounds).
    pub sample: SampleSpec,
    /// Host counts for the estimator; filled by the server at dispatch.
    pub host_info: HostSampleInfo,
    /// Planner's selectivity estimate for the residual cross-type
    /// selection (`1.0` when there is none).
    #[serde(default)]
    pub residual_selectivity: f64,
    /// Cap on distinct group-by keys held per window (from
    /// `ScrubConfig::max_groups`). Overflow keeps the `max_groups`
    /// smallest keys — deterministic and identical for every partition
    /// count — and counts dropped rows in `groups_overflow`.
    #[serde(default)]
    pub max_groups: usize,
}

impl CentralPlan {
    /// Input index for a type id, if it participates in the query.
    pub fn input_index(&self, type_id: EventTypeId) -> Option<usize> {
        self.inputs.iter().position(|i| i.type_id == type_id)
    }

    /// True if this plan joins multiple event types.
    pub fn is_join(&self) -> bool {
        self.inputs.len() > 1
    }

    /// Enumerate every operator of the full (host + central) plan, in
    /// pipeline order, with stable [`OperatorId`]s. The central plan
    /// carries enough metadata (`has_predicate`, `pred_selectivity`,
    /// projected field lists, the sample spec) for the enumeration to be
    /// self-contained — ScrubCentral derives the `EXPLAIN ANALYZE`
    /// skeleton from the plan it already holds.
    pub fn operators(&self) -> Vec<OperatorDesc> {
        let mut ops = Vec::new();
        for (i, input) in self.inputs.iter().enumerate() {
            let base = (i * OPS_PER_HOST_PLAN) as u32;
            ops.push(OperatorDesc {
                id: OperatorId(base),
                kind: OperatorKind::Selection,
                input: Some(i),
                host_side: true,
                est_selectivity: input.pred_selectivity,
                label: format!("selection({})", input.event_type),
            });
            ops.push(OperatorDesc {
                id: OperatorId(base + 1),
                kind: OperatorKind::Sampling,
                input: Some(i),
                host_side: true,
                est_selectivity: self.sample.event_fraction,
                label: format!("sampling({})", input.event_type),
            });
            ops.push(OperatorDesc {
                id: OperatorId(base + 2),
                kind: OperatorKind::Projection,
                input: Some(i),
                host_side: true,
                est_selectivity: 1.0,
                label: format!("projection({})", input.event_type),
            });
        }
        let base = (self.inputs.len() * OPS_PER_HOST_PLAN) as u32;
        ops.push(OperatorDesc {
            id: OperatorId(base),
            kind: OperatorKind::Decode,
            input: None,
            host_side: false,
            est_selectivity: 1.0,
            label: "decode/route".to_string(),
        });
        if self.is_join() {
            ops.push(OperatorDesc {
                id: OperatorId(base + 1),
                kind: OperatorKind::JoinBuild,
                input: None,
                host_side: false,
                est_selectivity: 1.0,
                label: "join-build(request_id)".to_string(),
            });
            ops.push(OperatorDesc {
                id: OperatorId(base + 2),
                kind: OperatorKind::JoinProbe,
                input: None,
                host_side: false,
                est_selectivity: 1.0,
                label: "join-probe(request_id)".to_string(),
            });
        }
        if self.residual.is_some() {
            ops.push(OperatorDesc {
                id: OperatorId(base + 3),
                kind: OperatorKind::Residual,
                input: None,
                host_side: false,
                est_selectivity: self.residual_selectivity,
                label: "residual-filter".to_string(),
            });
        }
        match &self.mode {
            OutputMode::Aggregate { .. } => {
                ops.push(OperatorDesc {
                    id: OperatorId(base + 4),
                    kind: OperatorKind::GroupAgg,
                    input: None,
                    host_side: false,
                    est_selectivity: 1.0,
                    label: "group/aggregate".to_string(),
                });
                ops.push(OperatorDesc {
                    id: OperatorId(base + 5),
                    kind: OperatorKind::WindowClose,
                    input: None,
                    host_side: false,
                    est_selectivity: 1.0,
                    label: "window-close".to_string(),
                });
            }
            OutputMode::Stream(_) => {
                ops.push(OperatorDesc {
                    id: OperatorId(base + 4),
                    kind: OperatorKind::Stream,
                    input: None,
                    host_side: false,
                    est_selectivity: 1.0,
                    label: "stream-project".to_string(),
                });
            }
        }
        ops
    }
}

/// Operators each host plan contributes (selection, sampling, projection
/// — the *only* operators Scrub places on hosts).
pub const OPS_PER_HOST_PLAN: usize = 3;

/// Stable identifier of one operator in a compiled plan. Host plans get
/// [`OPS_PER_HOST_PLAN`] consecutive ids each, in FROM order; central
/// operators follow at fixed slots after them, so the same query shape
/// always yields the same ids — profiles from different partitions (or
/// runs) merge by id.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct OperatorId(pub u32);

impl fmt::Display for OperatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// What a plan operator does (and therefore where it is allowed to run:
/// the first three are the host-side trio, everything else is central).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Host-side predicate evaluation at the tap.
    Selection,
    /// Host-side per-event sampling decision (plus batch enqueue/ship).
    Sampling,
    /// Host-side field projection of shipped events.
    Projection,
    /// Central batch decode + partition routing.
    Decode,
    /// Central equi-join build (buffering events per request id).
    JoinBuild,
    /// Central equi-join probe (producing joined rows at window close).
    JoinProbe,
    /// Central residual cross-type selection after the join.
    Residual,
    /// Central group-by + aggregate update.
    GroupAgg,
    /// Central window close + merged render.
    WindowClose,
    /// Central stream-mode row projection.
    Stream,
}

/// One operator of the compiled plan, as enumerated by
/// [`CentralPlan::operators`].
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorDesc {
    /// Stable operator id.
    pub id: OperatorId,
    /// Operator kind.
    pub kind: OperatorKind,
    /// FROM-input index for host-side operators.
    pub input: Option<usize>,
    /// True for the host-side trio (placement invariant: only selection,
    /// sampling and projection ever run on hosts).
    pub host_side: bool,
    /// Planner's selectivity estimate for this operator.
    pub est_selectivity: f64,
    /// Human-readable label, e.g. `selection(bid)`.
    pub label: String,
}

/// System-R-style selectivity estimate for a resolved predicate: equality
/// passes 1/10, ranges pass 1/3, `AND` multiplies, `OR` adds minus the
/// overlap, `NOT` complements, and anything opaque (calls, bare fields)
/// is assumed to pass everything. Deliberately crude — the point of
/// `EXPLAIN ANALYZE` is to show how these guesses compare to reality.
pub fn selectivity_estimate(e: &ResolvedExpr) -> f64 {
    use crate::expr::UnaryOp;
    match e {
        ResolvedExpr::Binary { op, lhs, rhs } => match op {
            BinOp::Eq => 0.1,
            BinOp::Ne => 0.9,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 1.0 / 3.0,
            BinOp::And => selectivity_estimate(lhs) * selectivity_estimate(rhs),
            BinOp::Or => {
                let (a, b) = (selectivity_estimate(lhs), selectivity_estimate(rhs));
                a + b - a * b
            }
            _ => 1.0,
        },
        ResolvedExpr::Unary {
            op: UnaryOp::Not,
            expr,
        } => 1.0 - selectivity_estimate(expr),
        ResolvedExpr::InList { list, negated, .. } => {
            let s = (0.1 * list.len() as f64).min(1.0);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        ResolvedExpr::IsNull { negated, .. } => {
            if *negated {
                0.9
            } else {
                0.1
            }
        }
        _ => 1.0,
    }
}

/// A fully validated and compiled query: the pair of query-object kinds plus
/// resolved span parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledQuery {
    /// Assigned query id.
    pub query_id: QueryId,
    /// The original (parsed) query.
    pub spec: QuerySpec,
    /// One host plan per FROM event type.
    pub host_plans: Vec<HostPlan>,
    /// The central plan.
    pub central: CentralPlan,
    /// Resolved window (ms).
    pub window_ms: i64,
    /// Resolved duration (ms).
    pub duration_ms: i64,
}

impl CompiledQuery {
    /// Human-readable plan rendering: which operators run where — the
    /// paper's placement decision, visible per query.
    pub fn explain(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        writeln!(
            s,
            "query {} — {}",
            self.query_id,
            crate::ql::printer::print_query(&self.spec)
        )
        .expect("string write");
        writeln!(
            s,
            "span: window {} ms (slide {} ms), duration {} ms",
            self.window_ms, self.central.slide_ms, self.duration_ms
        )
        .expect("string write");
        writeln!(s, "host plans (selection + projection + sampling ONLY):").expect("string write");
        for hp in &self.host_plans {
            writeln!(
                s,
                "  [{}] predicate: {}, ships {} field(s), event sampling {:.0}%",
                hp.event_type,
                if hp.predicate.is_some() {
                    "yes"
                } else {
                    "none"
                },
                hp.projection.len(),
                hp.event_fraction * 100.0
            )
            .expect("string write");
        }
        writeln!(s, "central plan (ScrubCentral):").expect("string write");
        if self.central.is_join() {
            writeln!(
                s,
                "  equi-join on request_id across {} inputs",
                self.central.inputs.len()
            )
            .expect("string write");
        }
        if self.central.residual.is_some() {
            writeln!(s, "  residual cross-type selection after join").expect("string write");
        }
        match &self.central.mode {
            OutputMode::Stream(exprs) => {
                writeln!(s, "  stream: {} column(s) per matching row", exprs.len())
                    .expect("string write");
            }
            OutputMode::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                writeln!(
                    s,
                    "  group by {} key(s), {} aggregate(s)",
                    group_by.len(),
                    aggregates.len()
                )
                .expect("string write");
            }
        }
        s
    }
}

/// Validate `spec` against `registry` and compile it into query objects.
pub fn compile(
    spec: &QuerySpec,
    registry: &SchemaRegistry,
    config: &ScrubConfig,
    query_id: QueryId,
) -> ScrubResult<CompiledQuery> {
    if spec.select.is_empty() {
        return Err(ScrubError::Validate("empty select list".into()));
    }
    if spec.from.is_empty() {
        return Err(ScrubError::Validate("empty FROM clause".into()));
    }
    if spec.from.len() > config.max_join_types {
        return Err(ScrubError::Unsupported(format!(
            "query joins {} event types; the limit is {} (joins are expensive at central)",
            spec.from.len(),
            config.max_join_types
        )));
    }
    {
        let mut seen = BTreeSet::new();
        for t in &spec.from {
            if !seen.insert(t.as_str()) {
                return Err(ScrubError::Unsupported(format!(
                    "self-join on event type {t:?} is not supported"
                )));
            }
        }
    }

    // Resolve schemas.
    let mut schemas: Vec<(EventTypeId, Arc<EventSchema>)> = Vec::new();
    for label in &spec.from {
        let (id, schema) = registry
            .schema_by_name(label)
            .ok_or_else(|| ScrubError::Validate(format!("unknown event type {label:?}")))?;
        schemas.push((id, schema));
    }

    let resolver = TypeResolver {
        spec,
        schemas: &schemas,
    };

    // Reject aggregates outside the select list.
    if let Some(w) = &spec.where_clause {
        reject_agg_markers(w, "WHERE")?;
    }
    for g in &spec.group_by {
        reject_agg_markers(g, "GROUP BY")?;
    }

    // Resolve every field reference first, so reference errors (unknown /
    // ambiguous fields) are reported precisely before type checking.
    {
        let check = |e: &Expr| -> ScrubResult<()> {
            for r in e.field_refs() {
                resolver.resolve_ref(r)?;
            }
            Ok(())
        };
        if let Some(w) = &spec.where_clause {
            check(w)?;
        }
        for g in &spec.group_by {
            check(g)?;
        }
        for item in &spec.select {
            match item {
                SelectItem::Expr { expr, .. } => check(expr)?,
                SelectItem::Agg { arg: Some(a), .. } => check(a)?,
                SelectItem::Agg { arg: None, .. } => {}
            }
        }
    }

    // Type-check WHERE.
    let oracle = |f: &FieldRef| resolver.field_type(f);
    if let Some(w) = &spec.where_clause {
        let t = w.infer_type(&oracle)?;
        if t != FieldType::Bool {
            return Err(ScrubError::Validate(format!(
                "WHERE clause has type {t}, expected boolean"
            )));
        }
    }
    for g in &spec.group_by {
        g.infer_type(&oracle)?;
    }

    // Classify WHERE conjuncts: single-type conjuncts run on hosts,
    // cross-type conjuncts run at central after the join.
    let mut host_preds: Vec<Option<Expr>> = vec![None; spec.from.len()];
    let mut residual: Option<Expr> = None;
    if let Some(w) = &spec.where_clause {
        for conj in conjuncts(w) {
            let touched = resolver.types_touched(&conj)?;
            match touched.len() {
                0 => {
                    // constant predicate — apply on every host stream
                    for slot in host_preds.iter_mut() {
                        *slot = Expr::and(slot.take(), Some(conj.clone()));
                    }
                }
                1 => {
                    let idx = *touched.iter().next().expect("len checked");
                    host_preds[idx] = Expr::and(host_preds[idx].take(), Some(conj.clone()));
                }
                _ => {
                    residual = Expr::and(residual.take(), Some(conj.clone()));
                }
            }
        }
    }

    // Aggregate / plain select analysis.
    let has_agg = spec.has_aggregates();
    let aggregate_mode = has_agg || !spec.group_by.is_empty();
    if aggregate_mode {
        for (i, item) in spec.select.iter().enumerate() {
            if let SelectItem::Expr { expr, .. } = item {
                if !spec.group_by.iter().any(|g| g == expr) {
                    return Err(ScrubError::Validate(format!(
                        "select item {} is neither an aggregate nor a GROUP BY key",
                        i + 1
                    )));
                }
            }
        }
    }

    // Type-check aggregate arguments.
    for item in &spec.select {
        if let SelectItem::Agg { func, arg, .. } = item {
            match (func, arg) {
                (AggFn::Count, None) => {}
                (_, None) => {
                    return Err(ScrubError::Validate(format!(
                        "{} requires an argument",
                        func.name()
                    )));
                }
                (f, Some(a)) => {
                    reject_agg_markers(a, "aggregate argument")?;
                    let t = a.infer_type(&oracle)?;
                    let ok = match f {
                        AggFn::Sum | AggFn::Avg => t.is_numeric(),
                        AggFn::Min | AggFn::Max => {
                            t.is_numeric() || t == FieldType::Str || t == FieldType::DateTime
                        }
                        AggFn::Count | AggFn::TopK(_) | AggFn::CountDistinct => true,
                    };
                    if !ok {
                        return Err(ScrubError::Validate(format!(
                            "{} cannot aggregate values of type {t}",
                            f.name()
                        )));
                    }
                }
            }
        }
    }

    // Per-type needed fields: everything referenced by group-by, aggregate
    // arguments, plain select expressions and the central residual.
    let mut needed: Vec<BTreeSet<String>> = vec![BTreeSet::new(); spec.from.len()];
    let mut note_refs = |e: &Expr| -> ScrubResult<()> {
        for r in e.field_refs() {
            let (idx, name) = resolver.resolve_ref(r)?;
            if name != SYS_REQUEST_ID && name != SYS_TIMESTAMP {
                needed[idx].insert(name);
            }
        }
        Ok(())
    };
    for g in &spec.group_by {
        note_refs(g)?;
    }
    for item in &spec.select {
        match item {
            SelectItem::Expr { expr, .. } => note_refs(expr)?,
            SelectItem::Agg { arg: Some(a), .. } => note_refs(a)?,
            SelectItem::Agg { arg: None, .. } => {}
        }
    }
    if let Some(r) = &residual {
        note_refs(r)?;
    }

    // Build host plans.
    let mut host_plans = Vec::with_capacity(spec.from.len());
    for (i, (type_id, schema)) in schemas.iter().enumerate() {
        let arity = schema.arity();
        let binder = HostBinder {
            schema,
            type_label: &spec.from[i],
        };
        let predicate = match &host_preds[i] {
            Some(p) => Some(p.resolve(&binder)?),
            None => None,
        };
        let est_selectivity = predicate.as_ref().map_or(1.0, selectivity_estimate);
        // deterministic projection order: schema field order
        let mut projection = Vec::new();
        for (fi, f) in schema.fields.iter().enumerate() {
            if needed[i].contains(&f.name) {
                projection.push(FieldSlot::User(fi));
            }
        }
        host_plans.push(HostPlan {
            query_id,
            event_type: spec.from[i].clone(),
            type_id: *type_id,
            arity,
            predicate,
            projection,
            event_fraction: spec.sample.event_fraction,
            est_selectivity,
        });
    }

    // Build the central joined-row layout.
    let mut inputs = Vec::with_capacity(spec.from.len());
    let mut offset = 0usize;
    for (i, (type_id, schema)) in schemas.iter().enumerate() {
        let fields: Vec<String> = schema
            .fields
            .iter()
            .filter(|f| needed[i].contains(&f.name))
            .map(|f| f.name.clone())
            .collect();
        let input = CentralInput {
            event_type: spec.from[i].clone(),
            type_id: *type_id,
            fields,
            block_offset: offset,
            has_predicate: host_plans[i].predicate.is_some(),
            pred_selectivity: host_plans[i].est_selectivity,
        };
        offset += input.block_len();
        inputs.push(input);
    }
    let row_width = offset;

    let central_binder = CentralBinder {
        inputs: &inputs,
        resolver: &resolver,
    };

    let residual_resolved = match &residual {
        Some(r) => Some(r.resolve(&central_binder)?),
        None => None,
    };

    let mode = if aggregate_mode {
        let group_by: Vec<ResolvedExpr> = spec
            .group_by
            .iter()
            .map(|g| g.resolve(&central_binder))
            .collect::<ScrubResult<_>>()?;
        let mut aggregates = Vec::new();
        let mut output = Vec::new();
        for item in &spec.select {
            match item {
                SelectItem::Expr { expr, .. } => {
                    let gi = spec
                        .group_by
                        .iter()
                        .position(|g| g == expr)
                        .expect("validated above");
                    output.push(OutputCol::Group(gi));
                }
                SelectItem::Agg { func, arg, .. } => {
                    let arg = match arg {
                        Some(a) => Some(a.resolve(&central_binder)?),
                        None => None,
                    };
                    aggregates.push(AggSpec {
                        func: func.clone(),
                        arg,
                    });
                    output.push(OutputCol::Agg(aggregates.len() - 1));
                }
            }
        }
        OutputMode::Aggregate {
            group_by,
            aggregates,
            output,
        }
    } else {
        let exprs: Vec<ResolvedExpr> = spec
            .select
            .iter()
            .map(|item| match item {
                SelectItem::Expr { expr, .. } => expr.resolve(&central_binder),
                SelectItem::Agg { .. } => unreachable!("aggregate_mode is false"),
            })
            .collect::<ScrubResult<_>>()?;
        OutputMode::Stream(exprs)
    };

    let window_ms = spec.window_ms.unwrap_or(config.default_window_ms);
    if window_ms <= 0 {
        return Err(ScrubError::Validate("window must be positive".into()));
    }
    let slide_ms = spec.slide_ms.unwrap_or(window_ms);
    if slide_ms <= 0 || slide_ms > window_ms {
        return Err(ScrubError::Validate(format!(
            "slide ({slide_ms} ms) must be positive and at most the window \
             ({window_ms} ms)"
        )));
    }
    let duration_ms = spec
        .duration_ms
        .unwrap_or(config.default_duration_ms)
        .min(config.max_duration_ms);
    if duration_ms <= 0 {
        return Err(ScrubError::Validate("duration must be positive".into()));
    }

    let residual_selectivity = residual_resolved.as_ref().map_or(1.0, selectivity_estimate);
    let central = CentralPlan {
        query_id,
        window_ms,
        slide_ms,
        inputs,
        residual: residual_resolved,
        mode,
        headers: spec.headers(),
        row_width,
        sample: spec.sample,
        host_info: HostSampleInfo::default(),
        residual_selectivity,
        max_groups: config.max_groups.max(1),
    };

    Ok(CompiledQuery {
        query_id,
        spec: spec.clone(),
        host_plans,
        central,
        window_ms,
        duration_ms,
    })
}

/// Split an expression into its top-level AND conjuncts.
fn conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            let mut out = conjuncts(lhs);
            out.extend(conjuncts(rhs));
            out
        }
        other => vec![other.clone()],
    }
}

/// Detect parser aggregate markers in positions where aggregates are
/// illegal (see `ql::parser` for the marker encoding).
fn reject_agg_markers(e: &Expr, ctx: &str) -> ScrubResult<()> {
    let found = match e {
        Expr::InList { list, .. } => list
            .iter()
            .any(|v| matches!(v, crate::value::Value::Str(s) if s.starts_with('\u{0}'))),
        _ => false,
    };
    if found {
        return Err(ScrubError::Validate(format!(
            "aggregates are not allowed in {ctx}"
        )));
    }
    match e {
        Expr::Literal(_) | Expr::Field(_) => Ok(()),
        Expr::Unary { expr, .. } => reject_agg_markers(expr, ctx),
        Expr::Binary { lhs, rhs, .. } => {
            reject_agg_markers(lhs, ctx)?;
            reject_agg_markers(rhs, ctx)
        }
        Expr::Call { args, .. } => {
            for a in args {
                reject_agg_markers(a, ctx)?;
            }
            Ok(())
        }
        Expr::InList { expr, .. } => reject_agg_markers(expr, ctx),
        Expr::IsNull { expr, .. } => reject_agg_markers(expr, ctx),
    }
}

/// Resolves field references to `(from-index, field-name)` pairs, handling
/// bare names by searching all FROM types.
struct TypeResolver<'a> {
    spec: &'a QuerySpec,
    schemas: &'a [(EventTypeId, Arc<EventSchema>)],
}

impl<'a> TypeResolver<'a> {
    fn resolve_ref(&self, r: &FieldRef) -> ScrubResult<(usize, String)> {
        match &r.event_type {
            Some(t) => {
                let idx = self.spec.from.iter().position(|x| x == t).ok_or_else(|| {
                    ScrubError::Validate(format!(
                        "field {r} references event type {t:?} which is not in FROM"
                    ))
                })?;
                let schema = &self.schemas[idx].1;
                if schema.field_type(&r.field).is_none() {
                    return Err(ScrubError::Validate(format!(
                        "event type {t:?} has no field {:?}",
                        r.field
                    )));
                }
                Ok((idx, r.field.clone()))
            }
            None => {
                // system fields resolve to the first FROM type
                if r.field == SYS_REQUEST_ID {
                    return Ok((0, r.field.clone()));
                }
                if r.field == SYS_TIMESTAMP && self.spec.from.len() == 1 {
                    return Ok((0, r.field.clone()));
                }
                let hits: Vec<usize> = self
                    .schemas
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, s))| s.field(&r.field).is_some())
                    .map(|(i, _)| i)
                    .collect();
                match hits.len() {
                    1 => Ok((hits[0], r.field.clone())),
                    0 => Err(ScrubError::Validate(format!(
                        "no event type in FROM has a field {:?}",
                        r.field
                    ))),
                    _ => Err(ScrubError::Validate(format!(
                        "field {:?} is ambiguous; qualify it with an event type",
                        r.field
                    ))),
                }
            }
        }
    }

    fn field_type(&self, r: &FieldRef) -> Option<FieldType> {
        let (idx, name) = self.resolve_ref(r).ok()?;
        self.schemas[idx].1.field_type(&name)
    }

    fn types_touched(&self, e: &Expr) -> ScrubResult<BTreeSet<usize>> {
        let mut set = BTreeSet::new();
        for r in e.field_refs() {
            // request_id is shared across all types post-join; a predicate
            // on it alone can run on any host stream — attribute it to the
            // qualifier if given, else treat as cross-type only when joined.
            let (idx, _) = self.resolve_ref(r)?;
            set.insert(idx);
        }
        Ok(set)
    }
}

/// Binds field references for one event type's host plan. Slot layout: user
/// fields `0..arity`, then `request_id`, then `timestamp`.
struct HostBinder<'a> {
    schema: &'a EventSchema,
    type_label: &'a str,
}

impl Binder for HostBinder<'_> {
    fn bind(&self, f: &FieldRef) -> ScrubResult<usize> {
        if let Some(t) = &f.event_type {
            if t != self.type_label {
                return Err(ScrubError::Validate(format!(
                    "field {f} does not belong to event type {:?}",
                    self.type_label
                )));
            }
        }
        match f.field.as_str() {
            SYS_REQUEST_ID => Ok(self.schema.arity()),
            SYS_TIMESTAMP => Ok(self.schema.arity() + 1),
            name => self
                .schema
                .field_index(name)
                .ok_or_else(|| ScrubError::Validate(format!("unknown field {f}"))),
        }
    }
}

/// Binds field references over the joined central row.
struct CentralBinder<'a> {
    inputs: &'a [CentralInput],
    resolver: &'a TypeResolver<'a>,
}

impl Binder for CentralBinder<'_> {
    fn bind(&self, f: &FieldRef) -> ScrubResult<usize> {
        let (idx, name) = self.resolver.resolve_ref(f)?;
        let input = &self.inputs[idx];
        match name.as_str() {
            SYS_REQUEST_ID => Ok(input.block_offset + input.fields.len()),
            SYS_TIMESTAMP => Ok(input.block_offset + input.fields.len() + 1),
            n => {
                let pos = input.fields.iter().position(|x| x == n).ok_or_else(|| {
                    ScrubError::Validate(format!(
                        "internal: field {f} missing from projection of {:?}",
                        input.event_type
                    ))
                })?;
                Ok(input.block_offset + pos)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ql::parser::parse_query;
    use crate::schema::FieldDef;

    fn registry() -> SchemaRegistry {
        let reg = SchemaRegistry::new();
        reg.register(
            EventSchema::new(
                "bid",
                vec![
                    FieldDef::new("user_id", FieldType::Long),
                    FieldDef::new("exchange_id", FieldType::Long),
                    FieldDef::new("bid_price", FieldType::Double),
                    FieldDef::new("city", FieldType::Str),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        reg.register(
            EventSchema::new(
                "exclusion",
                vec![
                    FieldDef::new("line_item_id", FieldType::Long),
                    FieldDef::new("reason", FieldType::Str),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        reg.register(
            EventSchema::new(
                "impression",
                vec![
                    FieldDef::new("line_item_id", FieldType::Long),
                    FieldDef::new("cost", FieldType::Double),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        reg
    }

    fn compile_src(src: &str) -> ScrubResult<CompiledQuery> {
        let spec = parse_query(src)?;
        compile(&spec, &registry(), &ScrubConfig::default(), QueryId(1))
    }

    #[test]
    fn spam_query_plan_shape() {
        let cq =
            compile_src("select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s")
                .unwrap();
        assert_eq!(cq.host_plans.len(), 1);
        let hp = &cq.host_plans[0];
        assert!(hp.predicate.is_none());
        // only user_id is shipped
        assert_eq!(hp.projection, vec![FieldSlot::User(0)]);
        assert_eq!(cq.window_ms, 10_000);
        match &cq.central.mode {
            OutputMode::Aggregate {
                group_by,
                aggregates,
                output,
            } => {
                assert_eq!(group_by.len(), 1);
                assert_eq!(aggregates.len(), 1);
                assert_eq!(output, &vec![OutputCol::Group(0), OutputCol::Agg(0)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn selection_pushed_to_host() {
        let cq = compile_src(
            "select AVG(impression.cost) from impression where impression.line_item_id = 7",
        )
        .unwrap();
        let hp = &cq.host_plans[0];
        assert!(hp.predicate.is_some());
        assert!(cq.central.residual.is_none());
        // cost needed for AVG; line_item_id only used in host predicate
        assert_eq!(hp.projection, vec![FieldSlot::User(1)]);
    }

    #[test]
    fn cross_type_predicate_stays_central() {
        let cq = compile_src(
            "select COUNT(*) from bid, exclusion \
             where bid.exchange_id = 3 and bid.user_id = exclusion.line_item_id",
        )
        .unwrap();
        // single-type conjunct pushed to bid host plan
        assert!(cq.host_plans[0].predicate.is_some());
        assert!(cq.host_plans[1].predicate.is_none());
        // cross-type conjunct stays central
        assert!(cq.central.residual.is_some());
        assert!(cq.central.is_join());
    }

    #[test]
    fn joined_row_layout_is_consistent() {
        let cq = compile_src(
            "select bid.city, COUNT(*) from bid, exclusion \
             where exclusion.reason = 'budget' group by bid.city",
        )
        .unwrap();
        let ins = &cq.central.inputs;
        assert_eq!(ins.len(), 2);
        assert_eq!(ins[0].fields, vec!["city"]);
        // reason was fully consumed by the host predicate
        assert_eq!(ins[1].fields, Vec::<String>::new());
        assert_eq!(ins[0].block_offset, 0);
        assert_eq!(ins[1].block_offset, ins[0].block_len());
        assert_eq!(
            cq.central.row_width,
            ins[0].block_len() + ins[1].block_len()
        );
    }

    #[test]
    fn stream_mode_for_plain_projection() {
        let cq =
            compile_src("select bid.user_id, bid.city from bid where bid.bid_price > 1.0").unwrap();
        assert!(matches!(&cq.central.mode, OutputMode::Stream(es) if es.len() == 2));
        assert_eq!(cq.central.headers, vec!["bid.user_id", "bid.city"]);
    }

    #[test]
    fn distinct_via_group_by_without_aggregates() {
        let cq = compile_src("select bid.city from bid group by bid.city").unwrap();
        match &cq.central.mode {
            OutputMode::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                assert_eq!(group_by.len(), 1);
                assert!(aggregates.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ungrouped_plain_column_with_aggregate_rejected() {
        let e = compile_src("select bid.city, COUNT(*) from bid").unwrap_err();
        assert!(matches!(e, ScrubError::Validate(_)));
    }

    #[test]
    fn select_item_not_in_group_by_rejected() {
        let e = compile_src("select bid.city, COUNT(*) from bid group by bid.user_id").unwrap_err();
        assert!(matches!(e, ScrubError::Validate(_)));
    }

    #[test]
    fn unknown_event_type_rejected() {
        assert!(compile_src("select COUNT(*) from nope").is_err());
    }

    #[test]
    fn unknown_field_rejected() {
        assert!(compile_src("select COUNT(*) from bid where bid.nope = 1").is_err());
    }

    #[test]
    fn ambiguous_bare_field_rejected() {
        let e = compile_src("select COUNT(*) from exclusion, impression where line_item_id = 1")
            .unwrap_err();
        assert!(e.to_string().contains("ambiguous"));
    }

    #[test]
    fn bare_field_resolves_when_unambiguous() {
        let cq = compile_src("select COUNT(*) from bid, exclusion where reason = 'x'").unwrap();
        // reason belongs to exclusion only — pushed to its host plan
        assert!(cq.host_plans[1].predicate.is_some());
        assert!(cq.host_plans[0].predicate.is_none());
    }

    #[test]
    fn self_join_rejected() {
        let e = compile_src("select COUNT(*) from bid, bid").unwrap_err();
        assert!(matches!(e, ScrubError::Unsupported(_)));
    }

    #[test]
    fn too_many_join_types_rejected() {
        let reg = registry();
        for i in 0..5 {
            reg.register(
                EventSchema::new(format!("t{i}"), vec![FieldDef::new("x", FieldType::Int)])
                    .unwrap(),
            )
            .unwrap();
        }
        let spec = parse_query("select COUNT(*) from t0, t1, t2, t3, t4").unwrap();
        let e = compile(&spec, &reg, &ScrubConfig::default(), QueryId(1)).unwrap_err();
        assert!(matches!(e, ScrubError::Unsupported(_)));
    }

    #[test]
    fn sum_of_string_rejected() {
        assert!(compile_src("select SUM(bid.city) from bid").is_err());
        // MIN over strings is fine
        assert!(compile_src("select MIN(bid.city) from bid").is_ok());
    }

    #[test]
    fn aggregates_in_where_rejected() {
        let e = compile_src("select COUNT(*) from bid where COUNT(*) > 1").unwrap_err();
        assert!(e.to_string().contains("aggregates are not allowed"));
    }

    #[test]
    fn where_must_be_boolean() {
        let e = compile_src("select COUNT(*) from bid where bid.user_id + 1").unwrap_err();
        assert!(e.to_string().contains("expected boolean"));
    }

    #[test]
    fn defaults_applied() {
        let cfg = ScrubConfig::default();
        let cq = compile_src("select COUNT(*) from bid").unwrap();
        assert_eq!(cq.window_ms, cfg.default_window_ms);
        assert_eq!(cq.duration_ms, cfg.default_duration_ms);
    }

    #[test]
    fn duration_clamped_to_max() {
        let cq = compile_src("select COUNT(*) from bid duration 100 d").unwrap();
        assert_eq!(cq.duration_ms, ScrubConfig::default().max_duration_ms);
    }

    #[test]
    fn request_id_groupable() {
        let cq = compile_src("select request_id, COUNT(*) from bid group by request_id").unwrap();
        match &cq.central.mode {
            OutputMode::Aggregate { group_by, .. } => assert_eq!(group_by.len(), 1),
            other => panic!("{other:?}"),
        }
        // request_id is metadata: no user field shipped
        assert!(cq.host_plans[0].projection.is_empty());
    }

    #[test]
    fn host_predicate_can_reference_system_fields() {
        let cq = compile_src("select COUNT(*) from bid where timestamp > 100").unwrap();
        let hp = &cq.host_plans[0];
        let pred = hp.predicate.as_ref().unwrap();
        // slot index arity+1 is timestamp
        assert_eq!(pred.max_slot(), Some(hp.timestamp_slot()));
    }

    #[test]
    fn event_sampling_flows_into_host_plan() {
        let cq = compile_src("select COUNT(*) from bid sample events 10%").unwrap();
        assert!((cq.host_plans[0].event_fraction - 0.1).abs() < 1e-12);
        assert!((cq.central.sample.event_fraction - 0.1).abs() < 1e-12);
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let cq =
            compile_src("select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s")
                .unwrap();
        let json = serde_json::to_string(&cq).unwrap();
        let back: CompiledQuery = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cq);
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use crate::ql::parser::parse_query;
    use crate::schema::FieldDef;

    #[test]
    fn explain_shows_the_placement_split() {
        let reg = SchemaRegistry::new();
        reg.register(
            EventSchema::new(
                "bid",
                vec![
                    FieldDef::new("user_id", FieldType::Long),
                    FieldDef::new("price", FieldType::Double),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        reg.register(
            EventSchema::new("impression", vec![FieldDef::new("cost", FieldType::Double)]).unwrap(),
        )
        .unwrap();
        let spec = parse_query(
            "select COUNT(*) from bid, impression where bid.price > 1.0 \
             sample events 25% window 30 s slide 10 s",
        )
        .unwrap();
        let cq = compile(&spec, &reg, &ScrubConfig::default(), QueryId(7)).unwrap();
        let text = cq.explain();
        assert!(text.contains("q#7"));
        assert!(text.contains("window 30000 ms (slide 10000 ms)"));
        assert!(text.contains("[bid] predicate: yes"));
        assert!(text.contains("[impression] predicate: none"));
        assert!(text.contains("event sampling 25%"));
        assert!(text.contains("equi-join on request_id across 2 inputs"));
        assert!(text.contains("1 aggregate(s)"));
    }

    #[test]
    fn explain_stream_mode() {
        let reg = SchemaRegistry::new();
        reg.register(
            EventSchema::new("bid", vec![FieldDef::new("user_id", FieldType::Long)]).unwrap(),
        )
        .unwrap();
        let spec = parse_query("select bid.user_id from bid").unwrap();
        let cq = compile(&spec, &reg, &ScrubConfig::default(), QueryId(1)).unwrap();
        assert!(cq.explain().contains("stream: 1 column(s)"));
    }
}
