//! Runtime values carried in Scrub event fields and produced by queries.
//!
//! The paper (§3.1) supports fields of types boolean, int, long, float,
//! double, date/time, string, and homogeneous lists of these primitive
//! types, plus nested objects. `Value` mirrors that type lattice at
//! runtime; [`FieldType`](crate::schema::FieldType) mirrors it statically.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A dynamically-typed Scrub value.
///
/// `Value` is what flows through the system: it is stored in event tuples on
/// the host, shipped to ScrubCentral, grouped on, and aggregated. The
/// variants correspond one-to-one to the field types in §3.1 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Absent / null value (e.g. a projection of an optional field).
    Null,
    /// `boolean`
    Bool(bool),
    /// `int` — 32-bit signed integer.
    Int(i32),
    /// `long` — 64-bit signed integer.
    Long(i64),
    /// `float` — 32-bit IEEE 754.
    Float(f32),
    /// `double` — 64-bit IEEE 754.
    Double(f64),
    /// `date/time` — milliseconds since the Unix epoch.
    DateTime(i64),
    /// `string`
    Str(String),
    /// Homogeneous list of primitive values.
    List(Vec<Value>),
    /// Nested object (e.g. an XML/JSON-encoded sub-record), represented as
    /// ordered key/value pairs.
    Nested(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable name of this value's runtime type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "int",
            Value::Long(_) => "long",
            Value::Float(_) => "float",
            Value::Double(_) => "double",
            Value::DateTime(_) => "datetime",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Nested(_) => "nested",
        }
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value as `f64`, if it is numeric.
    ///
    /// Used by arithmetic, comparisons across numeric widths, and the
    /// numeric aggregators (SUM/AVG/MIN/MAX).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Long(v) => Some(*v as f64),
            Value::Float(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            Value::DateTime(v) => Some(*v as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view of the value as `i64`, if it is integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v as i64),
            Value::Long(v) => Some(*v),
            Value::DateTime(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Boolean view, if the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Sort rank of the value's type family. The total order compares
    /// ranks first, then within the rank; mixing per-type name fallbacks
    /// with numeric comparison would break transitivity (a numeric can
    /// compare below a boolean numerically but above it by type name).
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_)
            | Value::Int(_)
            | Value::Long(_)
            | Value::Float(_)
            | Value::Double(_)
            | Value::DateTime(_) => 1,
            Value::Str(_) => 2,
            Value::List(_) => 3,
            Value::Nested(_) => 4,
        }
    }

    /// Total ordering used by MIN/MAX and ORDER-BY-like post-processing.
    ///
    /// Lexicographic on (type rank, within-rank key): `Null` first, then
    /// all numerics (compared by numeric value — booleans count as 0/1,
    /// datetimes as their epoch millis), then strings, lists, and nested
    /// objects. This is a genuine total order (verified by property test).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        let by_rank = self.rank().cmp(&other.rank());
        if by_rank != Ordering::Equal {
            return by_rank;
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Str(a), Str(b)) => a.cmp(b),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.total_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Nested(a), Nested(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let c = ka.cmp(kb).then_with(|| va.total_cmp(vb));
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => {
                let x = a.as_f64().expect("rank 1 values are numeric");
                let y = b.as_f64().expect("rank 1 values are numeric");
                x.total_cmp(&y)
            }
        }
    }

    /// Equality used by predicates and group-by keys: numeric values of
    /// different widths are equal when their numeric values are equal.
    pub fn loose_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// A canonical group-by key encoding for this value.
    ///
    /// Group-by and join keys need `Hash + Eq`; floats make that awkward, so
    /// keys are canonicalized into an order-preserving byte-comparable form.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Int(*b as i64),
            Value::Int(v) => GroupKey::Int(*v as i64),
            Value::Long(v) => GroupKey::Int(*v),
            Value::DateTime(v) => GroupKey::Int(*v),
            Value::Float(v) => GroupKey::Bits((*v as f64).to_bits()),
            Value::Double(v) => GroupKey::Bits(v.to_bits()),
            Value::Str(s) => GroupKey::Str(s.clone()),
            Value::List(vs) => GroupKey::List(vs.iter().map(Value::group_key).collect()),
            Value::Nested(kv) => {
                GroupKey::Map(kv.iter().map(|(k, v)| (k.clone(), v.group_key())).collect())
            }
        }
    }
}

/// Hashable, equatable canonical form of a [`Value`], used as a group-by or
/// join key inside ScrubCentral.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GroupKey {
    /// Null key.
    Null,
    /// Integral key (bool/int/long/datetime).
    Int(i64),
    /// Floating key, canonicalized to its IEEE bit pattern.
    Bits(u64),
    /// String key.
    Str(String),
    /// Composite key.
    List(Vec<GroupKey>),
    /// Nested-object key (field name, value key pairs in declared order).
    Map(Vec<(String, GroupKey)>),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::DateTime(v) => write!(f, "@{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Nested(kv) => {
                write!(f, "{{")?;
                for (i, (k, v)) in kv.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Long(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Long(v as i64)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Bool(true).type_name(), "boolean");
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(Value::Long(1).type_name(), "long");
        assert_eq!(Value::Float(1.0).type_name(), "float");
        assert_eq!(Value::Double(1.0).type_name(), "double");
        assert_eq!(Value::DateTime(0).type_name(), "datetime");
        assert_eq!(Value::Str("x".into()).type_name(), "string");
        assert_eq!(Value::List(vec![]).type_name(), "list");
        assert_eq!(Value::Nested(vec![]).type_name(), "nested");
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Long(-3).as_f64(), Some(-3.0));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Int(7).as_i64(), Some(7));
        assert_eq!(Value::Double(2.5).as_i64(), None);
    }

    #[test]
    fn cross_width_numeric_equality() {
        assert!(Value::Int(5).loose_eq(&Value::Long(5)));
        assert!(Value::Long(5).loose_eq(&Value::Double(5.0)));
        assert!(!Value::Int(5).loose_eq(&Value::Double(5.5)));
        assert!(!Value::Int(5).loose_eq(&Value::Str("5".into())));
    }

    #[test]
    fn ordering_is_total_and_null_first() {
        let mut vs = vec![
            Value::Double(1.5),
            Value::Null,
            Value::Int(2),
            Value::Long(-1),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Long(-1),
                Value::Double(1.5),
                Value::Int(2)
            ]
        );
    }

    #[test]
    fn list_ordering_is_lexicographic() {
        let a = Value::List(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::List(vec![Value::Int(1), Value::Int(3)]);
        let c = Value::List(vec![Value::Int(1)]);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(c.total_cmp(&a), Ordering::Less);
        assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn group_keys_unify_numeric_widths() {
        assert_eq!(Value::Int(5).group_key(), Value::Long(5).group_key());
        assert_ne!(Value::Int(5).group_key(), Value::Double(5.0).group_key());
        assert_eq!(
            Value::Str("a".into()).group_key(),
            GroupKey::Str("a".into())
        );
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Str("hi".into()).to_string(), "\"hi\"");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(
            Value::Nested(vec![("k".into(), Value::Int(1))]).to_string(),
            "{k: 1}"
        );
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::Long(3));
        assert_eq!(Value::from(3u32), Value::Long(3));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(Some(1i32)), Value::Int(1));
        assert_eq!(Value::from(None::<i32>), Value::Null);
        assert_eq!(
            Value::from(vec![1i32, 2]),
            Value::List(vec![Value::Int(1), Value::Int(2)])
        );
    }
}
