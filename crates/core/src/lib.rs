//! # scrub-core
//!
//! Core of the Scrub troubleshooting system (Satish et al., EuroSys '18):
//! the event model, the ScrubQL query language, and the query planner that
//! splits each query into *query objects* — host-side selection/projection
//! plans and a central join/group-by/aggregation plan.
//!
//! The design follows the paper's singular goal: minimal impact on the
//! hosts running the monitored application. Everything expensive runs in
//! ScrubCentral; hosts only select, project and sample.
//!
//! ```
//! use scrub_core::prelude::*;
//!
//! // 1. The application registers its event types (compare Figure 1).
//! let registry = SchemaRegistry::new();
//! registry
//!     .register(
//!         EventSchema::new(
//!             "bid",
//!             vec![
//!                 FieldDef::new("user_id", FieldType::Long),
//!                 FieldDef::new("bid_price", FieldType::Double),
//!             ],
//!         )
//!         .unwrap(),
//!     )
//!     .unwrap();
//!
//! // 2. A troubleshooter writes a ScrubQL query (compare Figure 9).
//! let spec = parse_query(
//!     "select bid.user_id, COUNT(*) from bid \
//!      @[Service in BidServers] group by bid.user_id window 10 s",
//! )
//! .unwrap();
//!
//! // 3. The query server validates and splits it into query objects.
//! let compiled = compile(&spec, &registry, &ScrubConfig::default(), QueryId(1)).unwrap();
//! assert_eq!(compiled.host_plans.len(), 1);
//! assert_eq!(compiled.window_ms, 10_000);
//! ```

pub mod columnar;
pub mod config;
pub mod encode;
pub mod error;
pub mod event;
pub mod expr;
pub mod plan;
pub mod ql;
pub mod schema;
pub mod target;
pub mod value;

/// Convenience re-exports of the items nearly every consumer needs.
pub mod prelude {
    pub use crate::config::ScrubConfig;
    pub use crate::error::{ScrubError, ScrubResult};
    pub use crate::event::{Event, FieldSlot, RequestId, ToEvent};
    pub use crate::expr::{Expr, FieldRef, ResolvedExpr};
    pub use crate::plan::{compile, CentralPlan, CompiledQuery, HostPlan, QueryId};
    pub use crate::ql::ast::{AggFn, QuerySpec, SampleSpec, SelectItem, StartSpec, TargetExpr};
    pub use crate::ql::parser::parse_query;
    pub use crate::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};
    pub use crate::target::HostInfo;
    pub use crate::value::Value;
}
