//! Error type shared across the Scrub stack.

use std::fmt;

/// Errors produced by the Scrub library.
#[derive(Debug, Clone, PartialEq)]
pub enum ScrubError {
    /// Event-type / schema definition problem.
    Schema(String),
    /// Lexical error in a ScrubQL query.
    Lex { pos: usize, msg: String },
    /// Syntax error in a ScrubQL query.
    Parse { pos: usize, msg: String },
    /// Semantic/type error found during query validation.
    Validate(String),
    /// The query uses a construct Scrub deliberately excludes (§2/§3), e.g.
    /// a non-equi-join or a join on something other than the request id.
    Unsupported(String),
    /// Wire-format decode failure.
    Decode(String),
    /// Query lifecycle error (unknown id, already stopped, ...).
    Lifecycle(String),
    /// Target clause resolved to no hosts, or referenced unknown services.
    Target(String),
    /// Transport/simulation failure.
    Transport(String),
    /// The query server rejected a submission; carries the server's
    /// rejection reason verbatim (which itself renders one of the
    /// lex/parse/validate/target errors above).
    Rejected(String),
}

impl fmt::Display for ScrubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScrubError::Schema(m) => write!(f, "schema error: {m}"),
            ScrubError::Lex { pos, msg } => write!(f, "lex error at byte {pos}: {msg}"),
            ScrubError::Parse { pos, msg } => write!(f, "parse error at byte {pos}: {msg}"),
            ScrubError::Validate(m) => write!(f, "validation error: {m}"),
            ScrubError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
            ScrubError::Decode(m) => write!(f, "decode error: {m}"),
            ScrubError::Lifecycle(m) => write!(f, "query lifecycle error: {m}"),
            ScrubError::Target(m) => write!(f, "target resolution error: {m}"),
            ScrubError::Transport(m) => write!(f, "transport error: {m}"),
            ScrubError::Rejected(m) => write!(f, "query rejected: {m}"),
        }
    }
}

impl std::error::Error for ScrubError {}

/// Convenience alias used throughout the workspace.
pub type ScrubResult<T> = Result<T, ScrubError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            ScrubError::Schema("bad".into()).to_string(),
            "schema error: bad"
        );
        assert_eq!(
            ScrubError::Parse {
                pos: 3,
                msg: "oops".into()
            }
            .to_string(),
            "parse error at byte 3: oops"
        );
        let e: Box<dyn std::error::Error> = Box::new(ScrubError::Validate("v".into()));
        assert!(e.to_string().contains("v"));
    }
}
