//! Columnar wire layout for event batches (wire format v2).
//!
//! A host ships a batch of projected events whose values are stored as
//! per-(event-type, field) *column segments* instead of interleaved tagged
//! rows: one tag byte per column, contiguous zigzag-varint runs for
//! ints/datetimes, a per-column string dictionary, and a null bitmap.
//! ScrubCentral decodes a frame into [`ColumnarBatch`] — full-length typed
//! vectors per column — so residual filters, group-key hashing and
//! aggregate folds run as tight per-column loops without materialising a
//! row `Event` per input event.
//!
//! Frame layout (after the 2-byte `[0x00, format]` header written by
//! [`crate::encode::encode_batch_format`]):
//!
//! ```text
//! body   := total:varint chunk*
//! chunk  := type_id:varint arity:varint n:varint
//!           request_id:varint{n} zigzag(ts):varint{n} column{arity}
//! column := tag:u8 body_len:varint body:byte{body_len}
//! ```
//!
//! A chunk covers a maximal run of consecutive events with equal
//! `(type_id, arity)`; since a subscription taps a single event type, a
//! batch is one chunk in practice. The column `tag` is a base type in the
//! low bits plus the `COL_NULLABLE` flag; when set, the body starts with
//! a validity bitmap (bit i set = value i present) and the typed values
//! that follow are dense over the *present* rows only. Columns that mix
//! value variants (including `Int` vs `Long`), or contain lists/nested
//! values, fall back to `COL_MIXED`: per-row tagged encoding identical
//! to the row format. Exact `Value` variants always round-trip — `Int` is
//! never widened to `Long` nor `Float` to `Double` — because decoded
//! values feed group keys and MIN/MAX aggregates whose rendered output
//! must be bit-identical to the row path.

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::encode::{get_string, get_value, get_varint, put_value, put_varint, unzigzag, zigzag};
use crate::encode::{FORMAT_COLUMNAR, MAX_BATCH_EVENTS};
use crate::error::{ScrubError, ScrubResult};
use crate::event::{Event, RequestId};
use crate::schema::EventTypeId;
use crate::value::Value;

/// All-null column: no body.
const COL_NULL: u8 = 0;
/// Booleans packed as a bitmap over the present rows.
const COL_BOOL: u8 = 1;
/// `Value::Int` as zigzag varints.
const COL_INT: u8 = 2;
/// `Value::Long` as zigzag varints.
const COL_LONG: u8 = 3;
/// `Value::Float` as fixed 4-byte IEEE bits.
const COL_FLOAT: u8 = 4;
/// `Value::Double` as fixed 8-byte IEEE bits.
const COL_DOUBLE: u8 = 5;
/// `Value::DateTime` as zigzag varints.
const COL_DATETIME: u8 = 6;
/// Strings as a per-column dictionary plus per-row dictionary indices.
const COL_STR: u8 = 7;
/// Fallback: per-row tagged values (lists, nested, mixed variants).
const COL_MIXED: u8 = 8;
/// Tag flag: a validity bitmap precedes the values.
const COL_NULLABLE: u8 = 0x80;

/// An encoded columnar frame plus the header metadata ScrubCentral needs
/// without decoding: event count and timestamp bounds. This is what rides
/// inside an `EventBatch` when the wire format is columnar — the frame
/// bytes *are* the payload, so byte accounting is exact by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnarFrame {
    /// Complete wire frame including the `[0x00, format]` header, as
    /// produced by [`crate::encode::encode_batch_format`].
    pub bytes: Vec<u8>,
    /// Number of events in the frame.
    pub count: u32,
    /// Minimum event timestamp (0 when the frame is empty).
    pub ts_min: i64,
    /// Maximum event timestamp (0 when the frame is empty).
    pub ts_max: i64,
}

impl ColumnarFrame {
    /// Encode a slice of events into a columnar frame.
    pub fn from_events(events: &[Event]) -> ColumnarFrame {
        let mut buf = BytesMut::with_capacity(events.len() * 16 + 16);
        buf.put_u8(0x00);
        buf.put_u8(FORMAT_COLUMNAR);
        encode_columnar_body(&mut buf, events);
        let (ts_min, ts_max) = events.iter().fold((i64::MAX, i64::MIN), |(lo, hi), ev| {
            (lo.min(ev.timestamp), hi.max(ev.timestamp))
        });
        let empty = events.is_empty();
        ColumnarFrame {
            bytes: buf.as_ref().to_vec(),
            count: events.len() as u32,
            ts_min: if empty { 0 } else { ts_min },
            ts_max: if empty { 0 } else { ts_max },
        }
    }

    /// Number of events in the frame, without decoding.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True when the frame holds no events.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// `(ts_min, ts_max)` over the frame's events, `None` when empty.
    pub fn ts_range(&self) -> Option<(i64, i64)> {
        if self.count == 0 {
            None
        } else {
            Some((self.ts_min, self.ts_max))
        }
    }

    /// Decode the frame into full-length typed columns.
    pub fn decode(&self) -> ScrubResult<ColumnarBatch> {
        let body = strip_header(&self.bytes)?;
        decode_columnar_body(body)
    }

    /// Materialise the frame back into row events (appended to `out`).
    pub fn decode_rows_into(&self, out: &mut Vec<Event>) -> ScrubResult<()> {
        let batch = self.decode()?;
        out.reserve(batch.event_count().min(4096));
        batch.push_events(out);
        Ok(())
    }

    /// Visit `(request_id, timestamp)` for every event, in order, by
    /// scanning only chunk headers — column bodies are skipped via their
    /// length prefixes. Used by header-level consumers (window-loss
    /// attribution, trace annotation) that must not pay full decode.
    pub fn for_each_meta(&self, mut f: impl FnMut(u64, i64)) {
        // Frames are self-produced in-process; a scan error indicates a
        // bug, not bad input. Surface it in debug builds, skip in release.
        let res = strip_header(&self.bytes).and_then(|body| scan_meta(body, &mut f));
        debug_assert!(res.is_ok(), "columnar meta scan failed: {res:?}");
    }
}

fn strip_header(frame: &[u8]) -> ScrubResult<Bytes> {
    if frame.len() < 2 || frame[0] != 0x00 || frame[1] != FORMAT_COLUMNAR {
        return Err(ScrubError::Decode("not a columnar frame".into()));
    }
    Ok(Bytes::copy_from_slice(&frame[2..]))
}

/// A decoded columnar batch: one [`ColumnChunk`] per maximal run of
/// consecutive events with equal `(type_id, arity)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarBatch {
    /// Chunks in original event order; concatenating them reproduces the
    /// batch's row order exactly.
    pub chunks: Vec<ColumnChunk>,
}

impl ColumnarBatch {
    /// Total events across all chunks.
    pub fn event_count(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// Materialise row events in original order, appending to `out`.
    pub fn push_events(&self, out: &mut Vec<Event>) {
        for chunk in &self.chunks {
            for i in 0..chunk.len() {
                out.push(Event::new(
                    chunk.type_id,
                    RequestId(chunk.request_ids[i]),
                    chunk.timestamps[i],
                    chunk.columns.iter().map(|c| c.value_at(i)).collect(),
                ));
            }
        }
    }
}

/// One run of events sharing `(type_id, arity)`, decoded column-wise.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnChunk {
    /// Event type of every event in the chunk.
    pub type_id: EventTypeId,
    /// Per-event request ids (system field).
    pub request_ids: Vec<u64>,
    /// Per-event timestamps (system field).
    pub timestamps: Vec<i64>,
    /// User field columns, in projection order; all full length.
    pub columns: Vec<Column>,
}

impl ColumnChunk {
    /// Events in this chunk.
    pub fn len(&self) -> usize {
        self.request_ids.len()
    }

    /// True when the chunk holds no events (never produced by the encoder).
    pub fn is_empty(&self) -> bool {
        self.request_ids.is_empty()
    }
}

/// A decoded column: full-length typed data plus an optional validity
/// bitmap. When `validity` is `Some`, positions with `false` are null and
/// the typed vector holds a default placeholder there.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// `None` = every row present; `Some(v)` = `v[i]` is false for nulls.
    pub validity: Option<Vec<bool>>,
    /// Typed values, full chunk length.
    pub data: ColumnData,
}

/// Typed storage for a decoded column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Every value is null.
    Null,
    /// `Value::Bool` column.
    Bool(Vec<bool>),
    /// `Value::Int` column.
    Int(Vec<i32>),
    /// `Value::Long` column.
    Long(Vec<i64>),
    /// `Value::Float` column.
    Float(Vec<f32>),
    /// `Value::Double` column.
    Double(Vec<f64>),
    /// `Value::DateTime` column.
    DateTime(Vec<i64>),
    /// String column: first-seen-order dictionary plus per-row indices.
    Str {
        /// Distinct strings in first-seen order.
        dict: Vec<String>,
        /// Per-row dictionary index (placeholder 0 at null rows).
        idx: Vec<u32>,
    },
    /// Fallback column: per-row materialised values.
    Mixed(Vec<Value>),
}

impl Column {
    /// The value at row `i`, reconstructing the exact original variant.
    pub fn value_at(&self, i: usize) -> Value {
        if let Some(v) = &self.validity {
            if !v[i] {
                return Value::Null;
            }
        }
        match &self.data {
            ColumnData::Null => Value::Null,
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Long(v) => Value::Long(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Double(v) => Value::Double(v[i]),
            ColumnData::DateTime(v) => Value::DateTime(v[i]),
            ColumnData::Str { dict, idx } => Value::Str(dict[idx[i] as usize].clone()),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// True when row `i` is null.
    pub fn is_null(&self, i: usize) -> bool {
        if let Some(v) = &self.validity {
            if !v[i] {
                return true;
            }
        }
        matches!(&self.data, ColumnData::Null)
            || matches!(&self.data, ColumnData::Mixed(v) if v[i] == Value::Null)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

pub(crate) fn encode_columnar_body(buf: &mut BytesMut, events: &[Event]) {
    put_varint(buf, events.len() as u64);
    let mut scratch = BytesMut::new();
    let mut i = 0;
    while i < events.len() {
        let type_id = events[i].type_id;
        let arity = events[i].values.len();
        let mut j = i + 1;
        while j < events.len() && events[j].type_id == type_id && events[j].values.len() == arity {
            j += 1;
        }
        let chunk = &events[i..j];
        put_varint(buf, type_id.0 as u64);
        put_varint(buf, arity as u64);
        put_varint(buf, chunk.len() as u64);
        for ev in chunk {
            put_varint(buf, ev.request_id.0);
        }
        for ev in chunk {
            put_varint(buf, zigzag(ev.timestamp));
        }
        for col in 0..arity {
            encode_column(buf, &mut scratch, chunk, col);
        }
        i = j;
    }
}

/// Pick the column representation: a single base tag, plus whether a
/// validity bitmap is needed. Any variant mixing (or list/nested value)
/// forces the tagged per-row fallback.
fn classify_column(chunk: &[Event], col: usize) -> (u8, bool) {
    let mut has_nulls = false;
    let mut tag: Option<u8> = None;
    for ev in chunk {
        let t = match &ev.values[col] {
            Value::Null => {
                has_nulls = true;
                continue;
            }
            Value::Bool(_) => COL_BOOL,
            Value::Int(_) => COL_INT,
            Value::Long(_) => COL_LONG,
            Value::Float(_) => COL_FLOAT,
            Value::Double(_) => COL_DOUBLE,
            Value::DateTime(_) => COL_DATETIME,
            Value::Str(_) => COL_STR,
            Value::List(_) | Value::Nested(_) => return (COL_MIXED, false),
        };
        match tag {
            None => tag = Some(t),
            Some(prev) if prev == t => {}
            Some(_) => return (COL_MIXED, false),
        }
    }
    match tag {
        None => (COL_NULL, false),
        Some(t) => (t, has_nulls),
    }
}

fn put_bitmap(buf: &mut BytesMut, bits: impl ExactSizeIterator<Item = bool>) {
    let n = bits.len();
    let mut bytes = vec![0u8; n.div_ceil(8)];
    for (i, b) in bits.enumerate() {
        if b {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    buf.put_slice(&bytes);
}

fn encode_column(buf: &mut BytesMut, scratch: &mut BytesMut, chunk: &[Event], col: usize) {
    let (base, has_nulls) = classify_column(chunk, col);
    scratch.clear();
    if has_nulls {
        put_bitmap(
            scratch,
            chunk.iter().map(|ev| ev.values[col] != Value::Null),
        );
    }
    let present = chunk.iter().map(|ev| &ev.values[col]);
    match base {
        COL_NULL => {}
        COL_MIXED => {
            for v in present {
                put_value(scratch, v);
            }
        }
        COL_BOOL => put_bitmap(
            scratch,
            chunk
                .iter()
                .filter_map(|ev| match &ev.values[col] {
                    Value::Bool(b) => Some(*b),
                    _ => None,
                })
                .collect::<Vec<_>>()
                .into_iter(),
        ),
        COL_INT => {
            for v in present {
                if let Value::Int(x) = v {
                    put_varint(scratch, zigzag(*x as i64));
                }
            }
        }
        COL_LONG => {
            for v in present {
                if let Value::Long(x) = v {
                    put_varint(scratch, zigzag(*x));
                }
            }
        }
        COL_DATETIME => {
            for v in present {
                if let Value::DateTime(x) = v {
                    put_varint(scratch, zigzag(*x));
                }
            }
        }
        COL_FLOAT => {
            for v in present {
                if let Value::Float(x) = v {
                    scratch.put_f32(*x);
                }
            }
        }
        COL_DOUBLE => {
            for v in present {
                if let Value::Double(x) = v {
                    scratch.put_f64(*x);
                }
            }
        }
        COL_STR => {
            let mut dict: Vec<&str> = Vec::new();
            let mut lookup: HashMap<&str, u32> = HashMap::new();
            let mut idx: Vec<u32> = Vec::new();
            for v in chunk.iter().map(|ev| &ev.values[col]) {
                if let Value::Str(s) = v {
                    let id = *lookup.entry(s.as_str()).or_insert_with(|| {
                        dict.push(s.as_str());
                        (dict.len() - 1) as u32
                    });
                    idx.push(id);
                }
            }
            put_varint(scratch, dict.len() as u64);
            for s in &dict {
                put_varint(scratch, s.len() as u64);
                scratch.put_slice(s.as_bytes());
            }
            for id in idx {
                put_varint(scratch, id as u64);
            }
        }
        _ => unreachable!("classify_column only returns known tags"),
    }
    buf.put_u8(base | if has_nulls { COL_NULLABLE } else { 0 });
    put_varint(buf, scratch.len() as u64);
    buf.put_slice(scratch.as_ref());
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Decode a columnar frame *body* (header already stripped). Total in the
/// face of arbitrary bytes: every length is validated against the buffer
/// before allocation, mirroring the row decoder's guarantees.
pub(crate) fn decode_columnar_body(mut buf: Bytes) -> ScrubResult<ColumnarBatch> {
    let total = get_varint(&mut buf)? as usize;
    if total > MAX_BATCH_EVENTS {
        return Err(ScrubError::Decode("implausible batch size".into()));
    }
    let mut chunks = Vec::new();
    let mut seen = 0usize;
    while buf.has_remaining() {
        let type_id = EventTypeId(get_varint(&mut buf)? as u32);
        let arity = get_varint(&mut buf)? as usize;
        if arity > 1 << 16 {
            return Err(ScrubError::Decode("implausible event arity".into()));
        }
        let n = get_varint(&mut buf)? as usize;
        if n == 0 || n > total - seen {
            return Err(ScrubError::Decode("bad chunk length".into()));
        }
        if n > buf.remaining() {
            return Err(ScrubError::Decode("chunk length exceeds buffer".into()));
        }
        let mut request_ids = Vec::with_capacity(n);
        for _ in 0..n {
            request_ids.push(get_varint(&mut buf)?);
        }
        let mut timestamps = Vec::with_capacity(n);
        for _ in 0..n {
            timestamps.push(unzigzag(get_varint(&mut buf)?));
        }
        let mut columns = Vec::with_capacity(arity.min(4096));
        for _ in 0..arity {
            columns.push(decode_column(&mut buf, n)?);
        }
        seen += n;
        chunks.push(ColumnChunk {
            type_id,
            request_ids,
            timestamps,
            columns,
        });
    }
    if seen != total {
        return Err(ScrubError::Decode(
            "chunk counts disagree with total".into(),
        ));
    }
    Ok(ColumnarBatch { chunks })
}

fn get_bitmap(buf: &mut Bytes, n: usize) -> ScrubResult<Vec<bool>> {
    let nbytes = n.div_ceil(8);
    if buf.remaining() < nbytes {
        return Err(ScrubError::Decode("truncated bitmap".into()));
    }
    let raw = buf.split_to(nbytes);
    Ok((0..n).map(|i| raw[i / 8] & (1 << (i % 8)) != 0).collect())
}

/// Expand `m` dense (present-row) values to a full-length vector of `n`,
/// leaving `fill` at null positions.
fn expand<T: Clone>(
    dense: Vec<T>,
    validity: Option<&Vec<bool>>,
    n: usize,
    fill: T,
) -> ScrubResult<Vec<T>> {
    match validity {
        None => {
            if dense.len() != n {
                return Err(ScrubError::Decode("column length mismatch".into()));
            }
            Ok(dense)
        }
        Some(valid) => {
            let mut out = vec![fill; n];
            let mut it = dense.into_iter();
            for (i, present) in valid.iter().enumerate() {
                if *present {
                    out[i] = it
                        .next()
                        .ok_or_else(|| ScrubError::Decode("column length mismatch".into()))?;
                }
            }
            if it.next().is_some() {
                return Err(ScrubError::Decode("column length mismatch".into()));
            }
            Ok(out)
        }
    }
}

fn decode_column(buf: &mut Bytes, n: usize) -> ScrubResult<Column> {
    if !buf.has_remaining() {
        return Err(ScrubError::Decode("truncated column tag".into()));
    }
    let tag = buf.get_u8();
    let body_len = get_varint(buf)? as usize;
    if buf.remaining() < body_len {
        return Err(ScrubError::Decode("truncated column body".into()));
    }
    let mut body = buf.split_to(body_len);
    let base = tag & !COL_NULLABLE;
    let validity = if tag & COL_NULLABLE != 0 {
        if base == COL_NULL || base == COL_MIXED {
            return Err(ScrubError::Decode(
                "nullable flag on null/mixed column".into(),
            ));
        }
        Some(get_bitmap(&mut body, n)?)
    } else {
        None
    };
    let m = validity
        .as_ref()
        .map(|v| v.iter().filter(|b| **b).count())
        .unwrap_or(n);
    let data = match base {
        COL_NULL => ColumnData::Null,
        COL_BOOL => ColumnData::Bool(expand(
            get_bitmap(&mut body, m)?,
            validity.as_ref(),
            n,
            false,
        )?),
        COL_INT => {
            let mut vs = Vec::with_capacity(m.min(body.remaining()));
            for _ in 0..m {
                vs.push(unzigzag(get_varint(&mut body)?) as i32);
            }
            ColumnData::Int(expand(vs, validity.as_ref(), n, 0)?)
        }
        COL_LONG | COL_DATETIME => {
            let mut vs = Vec::with_capacity(m.min(body.remaining()));
            for _ in 0..m {
                vs.push(unzigzag(get_varint(&mut body)?));
            }
            let full = expand(vs, validity.as_ref(), n, 0)?;
            if base == COL_LONG {
                ColumnData::Long(full)
            } else {
                ColumnData::DateTime(full)
            }
        }
        COL_FLOAT => {
            if body.remaining() < m * 4 {
                return Err(ScrubError::Decode("truncated float column".into()));
            }
            let vs = (0..m).map(|_| body.get_f32()).collect();
            ColumnData::Float(expand(vs, validity.as_ref(), n, 0.0)?)
        }
        COL_DOUBLE => {
            if body.remaining() < m * 8 {
                return Err(ScrubError::Decode("truncated double column".into()));
            }
            let vs = (0..m).map(|_| body.get_f64()).collect();
            ColumnData::Double(expand(vs, validity.as_ref(), n, 0.0)?)
        }
        COL_STR => {
            let dict_len = get_varint(&mut body)? as usize;
            if dict_len > body.remaining() + 1 {
                return Err(ScrubError::Decode("implausible dictionary size".into()));
            }
            if m > 0 && dict_len == 0 {
                return Err(ScrubError::Decode(
                    "empty dictionary for non-null rows".into(),
                ));
            }
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(get_string(&mut body)?);
            }
            let mut idx = Vec::with_capacity(m.min(body.remaining()));
            for _ in 0..m {
                let id = get_varint(&mut body)?;
                if id as usize >= dict_len {
                    return Err(ScrubError::Decode("dictionary index out of range".into()));
                }
                idx.push(id as u32);
            }
            ColumnData::Str {
                dict,
                idx: expand(idx, validity.as_ref(), n, 0)?,
            }
        }
        COL_MIXED => {
            let mut vs = Vec::with_capacity(n.min(body.remaining() + 1));
            for _ in 0..n {
                vs.push(get_value(&mut body, 0)?);
            }
            ColumnData::Mixed(vs)
        }
        other => {
            return Err(ScrubError::Decode(format!("unknown column tag {other}")));
        }
    };
    if body.has_remaining() {
        return Err(ScrubError::Decode("trailing bytes in column body".into()));
    }
    Ok(Column { validity, data })
}

/// Visit `(request_id, timestamp)` per event without decoding columns
/// (their length prefixes let us skip the bodies entirely).
pub(crate) fn scan_meta(mut buf: Bytes, f: &mut dyn FnMut(u64, i64)) -> ScrubResult<()> {
    let total = get_varint(&mut buf)? as usize;
    if total > MAX_BATCH_EVENTS {
        return Err(ScrubError::Decode("implausible batch size".into()));
    }
    let mut rids = Vec::new();
    let mut seen = 0usize;
    while buf.has_remaining() {
        let _type_id = get_varint(&mut buf)?;
        let arity = get_varint(&mut buf)? as usize;
        if arity > 1 << 16 {
            return Err(ScrubError::Decode("implausible event arity".into()));
        }
        let n = get_varint(&mut buf)? as usize;
        if n == 0 || n > total - seen || n > buf.remaining() {
            return Err(ScrubError::Decode("bad chunk length".into()));
        }
        rids.clear();
        rids.reserve(n);
        for _ in 0..n {
            rids.push(get_varint(&mut buf)?);
        }
        for rid in rids.iter().take(n) {
            f(*rid, unzigzag(get_varint(&mut buf)?));
        }
        for _ in 0..arity {
            if !buf.has_remaining() {
                return Err(ScrubError::Decode("truncated column tag".into()));
            }
            let _tag = buf.get_u8();
            let body_len = get_varint(&mut buf)? as usize;
            if buf.remaining() < body_len {
                return Err(ScrubError::Decode("truncated column body".into()));
            }
            buf.advance(body_len);
        }
        seen += n;
    }
    if seen != total {
        return Err(ScrubError::Decode(
            "chunk counts disagree with total".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WireFormat;
    use crate::encode::{decode_batch, encode_batch_format};

    fn ev(type_id: u32, rid: u64, ts: i64, values: Vec<Value>) -> Event {
        Event::new(EventTypeId(type_id), RequestId(rid), ts, values)
    }

    #[test]
    fn typed_columns_round_trip_exact_variants() {
        let events: Vec<Event> = (0..50)
            .map(|i| {
                ev(
                    2,
                    i,
                    i as i64 * 10 - 100,
                    vec![
                        Value::Int(i as i32 - 25),
                        Value::Long((i as i64) << 33),
                        Value::Float(i as f32 / 3.0),
                        Value::Double(-(i as f64) / 7.0),
                        Value::DateTime(1_700_000_000_000 + i as i64),
                        Value::Bool(i % 3 == 0),
                        Value::Str(format!("host-{}", i % 4)),
                    ],
                )
            })
            .collect();
        let frame = ColumnarFrame::from_events(&events);
        assert_eq!(frame.len(), 50);
        assert_eq!(frame.ts_range(), Some((-100, 390)));
        let mut out = Vec::new();
        frame.decode_rows_into(&mut out).unwrap();
        assert_eq!(out, events);
    }

    #[test]
    fn nulls_and_all_null_columns() {
        let events: Vec<Event> = (0..20)
            .map(|i| {
                ev(
                    0,
                    i,
                    i as i64,
                    vec![
                        if i % 3 == 0 {
                            Value::Null
                        } else {
                            Value::Long(i as i64)
                        },
                        Value::Null,
                        if i % 2 == 0 {
                            Value::Str(format!("s{}", i % 5))
                        } else {
                            Value::Null
                        },
                    ],
                )
            })
            .collect();
        let frame = ColumnarFrame::from_events(&events);
        let mut out = Vec::new();
        frame.decode_rows_into(&mut out).unwrap();
        assert_eq!(out, events);
        let batch = frame.decode().unwrap();
        assert!(matches!(batch.chunks[0].columns[1].data, ColumnData::Null));
        assert!(batch.chunks[0].columns[0].is_null(0));
        assert!(!batch.chunks[0].columns[0].is_null(1));
    }

    #[test]
    fn mixed_and_nested_values_fall_back_to_tagged() {
        let events = vec![
            ev(
                1,
                1,
                5,
                vec![Value::Int(1), Value::List(vec![Value::Int(2)])],
            ),
            ev(
                1,
                2,
                6,
                vec![
                    Value::Long(9),
                    Value::Nested(vec![("k".into(), Value::Str("v".into()))]),
                ],
            ),
        ];
        let frame = ColumnarFrame::from_events(&events);
        let batch = frame.decode().unwrap();
        // Int-vs-Long mixing and list/nested both force the tagged fallback.
        assert!(matches!(
            batch.chunks[0].columns[0].data,
            ColumnData::Mixed(_)
        ));
        assert!(matches!(
            batch.chunks[0].columns[1].data,
            ColumnData::Mixed(_)
        ));
        let mut out = Vec::new();
        frame.decode_rows_into(&mut out).unwrap();
        assert_eq!(out, events);
    }

    #[test]
    fn multi_type_batches_chunk_by_type_and_arity() {
        let events = vec![
            ev(0, 1, 1, vec![Value::Long(1)]),
            ev(0, 2, 2, vec![Value::Long(2)]),
            ev(1, 3, 3, vec![]),
            ev(0, 4, 4, vec![Value::Long(4)]),
        ];
        let frame = ColumnarFrame::from_events(&events);
        let batch = frame.decode().unwrap();
        assert_eq!(batch.chunks.len(), 3, "runs split on type change");
        let mut out = Vec::new();
        frame.decode_rows_into(&mut out).unwrap();
        assert_eq!(out, events, "order preserved across chunks");
    }

    #[test]
    fn empty_frame_round_trips() {
        let frame = ColumnarFrame::from_events(&[]);
        assert!(frame.is_empty());
        assert_eq!(frame.ts_range(), None);
        let mut out = vec![ev(0, 0, 0, vec![])];
        out.clear();
        frame.decode_rows_into(&mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn meta_scan_matches_rows_without_decoding_columns() {
        let events: Vec<Event> = (0..30)
            .map(|i| {
                ev(
                    0,
                    i * 3,
                    i as i64 - 7,
                    vec![Value::Str(format!("x{i}")), Value::Double(i as f64)],
                )
            })
            .collect();
        let frame = ColumnarFrame::from_events(&events);
        let mut seen = Vec::new();
        frame.for_each_meta(|rid, ts| seen.push((rid, ts)));
        let expect: Vec<(u64, i64)> = events
            .iter()
            .map(|e| (e.request_id.0, e.timestamp))
            .collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn columnar_is_smaller_than_rows_on_typical_payloads() {
        let events: Vec<Event> = (0..1000)
            .map(|i| {
                ev(
                    0,
                    i,
                    i as i64 % 60_000,
                    vec![
                        Value::Long((i % 100) as i64),
                        Value::Double(0.25),
                        Value::Str(format!("dc-{}", i % 3)),
                    ],
                )
            })
            .collect();
        let row = encode_batch_format(&events, WireFormat::Row);
        let col = encode_batch_format(&events, WireFormat::Columnar);
        assert!(
            col.len() < row.len(),
            "columnar ({}) must beat row ({})",
            col.len(),
            row.len()
        );
        assert_eq!(decode_batch(col).unwrap(), events);
    }

    #[test]
    fn corrupt_frames_error_cleanly() {
        let events = vec![ev(0, 1, 2, vec![Value::Long(3), Value::Str("abc".into())])];
        let frame = ColumnarFrame::from_events(&events);
        for cut in 2..frame.bytes.len() {
            let partial = Bytes::copy_from_slice(&frame.bytes[2..cut]);
            assert!(
                decode_columnar_body(partial).is_err(),
                "prefix {cut} decoded"
            );
        }
        // flipping the dictionary index out of range must be caught
        let mut mutated = frame.bytes.clone();
        let last = mutated.len() - 1;
        mutated[last] = 0x7f;
        let body = Bytes::copy_from_slice(&mutated[2..]);
        assert!(decode_columnar_body(body).is_err());
    }
}
