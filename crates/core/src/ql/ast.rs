//! Abstract syntax of a ScrubQL query (§3.2).
//!
//! Beyond the SQL core (select/from/where/group-by and aggregations), the
//! AST captures the Scrub-specific constructs: **query span** (`start` +
//! `duration`), **target hosts** (the `@[...]` clause), **sampling** (host-
//! and event-level) and the **tumbling/sliding window**.

use serde::{Deserialize, Serialize};

use crate::expr::Expr;

/// Aggregation functions supported by ScrubQL (§3.2): the exact
/// aggregations MIN/MAX/AVG/SUM/COUNT, plus the probabilistic TOP-K
/// (space-saving stream summary) and COUNT_DISTINCT (HyperLogLog).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFn {
    /// `COUNT(*)` or `COUNT(expr)` (non-null count).
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
    /// `TOP(k, expr)` — approximate top-k heavy hitters of `expr`.
    TopK(usize),
    /// `COUNT_DISTINCT(expr)` — approximate distinct cardinality.
    CountDistinct,
}

impl AggFn {
    /// Display name for result headers.
    pub fn name(&self) -> String {
        match self {
            AggFn::Count => "COUNT".into(),
            AggFn::Sum => "SUM".into(),
            AggFn::Avg => "AVG".into(),
            AggFn::Min => "MIN".into(),
            AggFn::Max => "MAX".into(),
            AggFn::TopK(k) => format!("TOP{k}"),
            AggFn::CountDistinct => "COUNT_DISTINCT".into(),
        }
    }

    /// True if the aggregate is probabilistic (sketch-backed) rather than
    /// exact.
    pub fn is_probabilistic(&self) -> bool {
        matches!(self, AggFn::TopK(_) | AggFn::CountDistinct)
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// A plain (non-aggregated) expression; must be derivable from the
    /// GROUP BY keys when grouping is present.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional `AS alias`.
        alias: Option<String>,
    },
    /// An aggregate application.
    Agg {
        /// The aggregation function.
        func: AggFn,
        /// Argument expression; `None` means `COUNT(*)`.
        arg: Option<Expr>,
        /// Optional `AS alias`.
        alias: Option<String>,
    },
}

impl SelectItem {
    /// Column header for this item in result rows.
    pub fn header(&self, index: usize) -> String {
        match self {
            SelectItem::Expr { alias: Some(a), .. } | SelectItem::Agg { alias: Some(a), .. } => {
                a.clone()
            }
            SelectItem::Expr { expr, .. } => match expr {
                Expr::Field(f) => f.to_string(),
                _ => format!("col{index}"),
            },
            SelectItem::Agg { func, arg, .. } => match arg {
                Some(Expr::Field(f)) => format!("{}({f})", func.name()),
                Some(_) => format!("{}(expr)", func.name()),
                None => format!("{}(*)", func.name()),
            },
        }
    }

    /// True if the item is an aggregate.
    pub fn is_agg(&self) -> bool {
        matches!(self, SelectItem::Agg { .. })
    }
}

/// The `@[...]` target-host clause (§3.2): which machines the query runs on.
///
/// "This set can include all machines, machines from a given list, or
/// machines performing a certain service. Filters can be applied to a set,
/// e.g., clients in the AdServers service that reside in the San Jose data
/// center."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TargetExpr {
    /// All machines running the monitored application.
    All,
    /// Machines running one of the named services
    /// (`Service in BidServers` / `Service in (A, B)`).
    Service(Vec<String>),
    /// Specific machines by host name (`Server = host1`, `Servers in (...)`).
    Host(Vec<String>),
    /// Machines in one of the named data centers (`DC = DC1`).
    Dc(Vec<String>),
    /// Conjunction of two target filters.
    And(Box<TargetExpr>, Box<TargetExpr>),
    /// Disjunction of two target filters.
    Or(Box<TargetExpr>, Box<TargetExpr>),
    /// Complement of a target filter.
    Not(Box<TargetExpr>),
}

impl TargetExpr {
    /// Conjunction helper.
    pub fn and(self, other: TargetExpr) -> TargetExpr {
        TargetExpr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: TargetExpr) -> TargetExpr {
        TargetExpr::Or(Box::new(self), Box::new(other))
    }
}

/// Sampling specification (§3.2): "sampling on the set of hosts, and
/// sampling on the events on a given host. Both types of sampling can be
/// used in combination with each other."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleSpec {
    /// Fraction of matching hosts to include, in (0, 1].
    pub host_fraction: f64,
    /// Fraction of events sampled on each included host, in (0, 1].
    pub event_fraction: f64,
}

impl Default for SampleSpec {
    fn default() -> Self {
        SampleSpec {
            host_fraction: 1.0,
            event_fraction: 1.0,
        }
    }
}

impl SampleSpec {
    /// True if any sampling (host or event) is active.
    pub fn is_sampled(&self) -> bool {
        self.host_fraction < 1.0 || self.event_fraction < 1.0
    }
}

/// When the query starts (§3.2 query span).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum StartSpec {
    /// Start immediately on submission (the default).
    #[default]
    Now,
    /// Start at an absolute time (ms since epoch / virtual ms).
    At(i64),
    /// Start after a delay relative to submission (ms).
    In(i64),
}

/// A parsed ScrubQL query, before validation/planning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// Event type labels in FROM. More than one label means an equi-join on
    /// the request id — the only join ScrubQL supports.
    pub from: Vec<String>,
    /// WHERE predicate, if any.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// Window length in ms; `None` selects the deployment default.
    pub window_ms: Option<i64>,
    /// Sliding step in ms; `None` means tumbling (slide = window). §3.2
    /// names sliding windows as the natural extension, implemented here.
    pub slide_ms: Option<i64>,
    /// Target-host clause; defaults to all hosts.
    pub target: TargetExpr,
    /// Host/event sampling.
    pub sample: SampleSpec,
    /// Query start.
    pub start: StartSpec,
    /// Query duration in ms; `None` selects the deployment default. "The
    /// timespan guards against users forgetting to end their queries."
    pub duration_ms: Option<i64>,
}

impl QuerySpec {
    /// True if the query joins multiple event types.
    pub fn is_join(&self) -> bool {
        self.from.len() > 1
    }

    /// True if any select item aggregates.
    pub fn has_aggregates(&self) -> bool {
        self.select.iter().any(SelectItem::is_agg)
    }

    /// Result column headers, in select order.
    pub fn headers(&self) -> Vec<String> {
        self.select
            .iter()
            .enumerate()
            .map(|(i, s)| s.header(i))
            .collect()
    }
}

/// Parse a duration literal body: `(count, unit)` → milliseconds.
pub fn duration_ms(count: i64, unit: &str) -> Option<i64> {
    let mult = match unit.to_ascii_lowercase().as_str() {
        "ms" | "millis" | "millisecond" | "milliseconds" => 1,
        "s" | "sec" | "secs" | "second" | "seconds" => 1_000,
        "m" | "min" | "mins" | "minute" | "minutes" => 60_000,
        "h" | "hr" | "hrs" | "hour" | "hours" => 3_600_000,
        "d" | "day" | "days" => 86_400_000,
        _ => return None,
    };
    count.checked_mul(mult)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::FieldRef;

    #[test]
    fn duration_units() {
        assert_eq!(duration_ms(10, "s"), Some(10_000));
        assert_eq!(duration_ms(20, "m"), Some(1_200_000));
        assert_eq!(duration_ms(1, "h"), Some(3_600_000));
        assert_eq!(duration_ms(2, "days"), Some(172_800_000));
        assert_eq!(duration_ms(500, "ms"), Some(500));
        assert_eq!(duration_ms(1, "parsec"), None);
        assert_eq!(duration_ms(i64::MAX, "h"), None); // overflow
    }

    #[test]
    fn sample_spec_default_is_unsampled() {
        let s = SampleSpec::default();
        assert!(!s.is_sampled());
        assert!(SampleSpec {
            host_fraction: 0.1,
            event_fraction: 1.0
        }
        .is_sampled());
    }

    #[test]
    fn select_item_headers() {
        let item = SelectItem::Agg {
            func: AggFn::Count,
            arg: None,
            alias: None,
        };
        assert_eq!(item.header(0), "COUNT(*)");
        let item = SelectItem::Expr {
            expr: Expr::Field(FieldRef::qualified("bid", "user_id")),
            alias: None,
        };
        assert_eq!(item.header(0), "bid.user_id");
        let item = SelectItem::Agg {
            func: AggFn::Avg,
            arg: Some(Expr::Field(FieldRef::bare("cost"))),
            alias: Some("cpm".into()),
        };
        assert_eq!(item.header(0), "cpm");
    }

    #[test]
    fn agg_fn_names_and_kinds() {
        assert_eq!(AggFn::TopK(5).name(), "TOP5");
        assert!(AggFn::TopK(5).is_probabilistic());
        assert!(AggFn::CountDistinct.is_probabilistic());
        assert!(!AggFn::Sum.is_probabilistic());
    }

    #[test]
    fn target_combinators() {
        let t =
            TargetExpr::Service(vec!["BidServers".into()]).and(TargetExpr::Dc(vec!["DC1".into()]));
        assert!(matches!(t, TargetExpr::And(_, _)));
    }
}
