//! Pretty-printer for ScrubQL: renders a [`QuerySpec`] (or expression)
//! back to canonical query text. `parse(print(q))` is the identity on the
//! AST — enforced by property tests — which makes the printer safe to use
//! for logging, `EXPLAIN` output, and query forwarding.

use std::fmt::Write as _;

use crate::expr::{BinOp, Expr, ScalarFn, UnaryOp};
use crate::ql::ast::{AggFn, QuerySpec, SelectItem, StartSpec, TargetExpr};
use crate::value::Value;

/// Render a query back to canonical ScrubQL.
pub fn print_query(q: &QuerySpec) -> String {
    let mut s = String::from("select ");
    for (i, item) in q.select.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&print_select_item(item));
    }
    write!(s, " from {}", q.from.join(", ")).expect("string write");
    if let Some(w) = &q.where_clause {
        write!(s, " where {}", print_expr(w)).expect("string write");
    }
    if !matches!(q.target, TargetExpr::All) {
        write!(s, " @[{}]", print_target(&q.target)).expect("string write");
    } else {
        s.push_str(" @[all]");
    }
    if !q.group_by.is_empty() {
        s.push_str(" group by ");
        for (i, g) in q.group_by.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&print_expr(g));
        }
    }
    if let Some(w) = q.window_ms {
        write!(s, " window {}", print_duration(w)).expect("string write");
        if let Some(sl) = q.slide_ms {
            write!(s, " slide {}", print_duration(sl)).expect("string write");
        }
    }
    if q.sample.host_fraction < 1.0 {
        write!(
            s,
            " sample hosts {}",
            print_fraction(q.sample.host_fraction)
        )
        .expect("string write");
        if q.sample.event_fraction < 1.0 {
            write!(s, " events {}", print_fraction(q.sample.event_fraction)).expect("string write");
        }
    } else if q.sample.event_fraction < 1.0 {
        write!(
            s,
            " sample events {}",
            print_fraction(q.sample.event_fraction)
        )
        .expect("string write");
    }
    match q.start {
        StartSpec::Now => {}
        StartSpec::At(t) => {
            write!(s, " start at {t}").expect("string write");
        }
        StartSpec::In(ms) => {
            write!(s, " start in {}", print_duration(ms)).expect("string write");
        }
    }
    if let Some(d) = q.duration_ms {
        write!(s, " duration {}", print_duration(d)).expect("string write");
    }
    s
}

fn print_select_item(item: &SelectItem) -> String {
    match item {
        SelectItem::Expr { expr, alias } => match alias {
            Some(a) => format!("{} as {a}", print_expr(expr)),
            None => print_expr(expr),
        },
        SelectItem::Agg { func, arg, alias } => {
            let call = match (func, arg) {
                (AggFn::Count, None) => "COUNT(*)".to_string(),
                (AggFn::TopK(k), Some(a)) => format!("TOP({k}, {})", print_expr(a)),
                (f, Some(a)) => format!("{}({})", f.name(), print_expr(a)),
                (f, None) => format!("{}(*)", f.name()),
            };
            match alias {
                Some(a) => format!("{call} as {a}"),
                None => call,
            }
        }
    }
}

/// Render a duration in the coarsest unit that divides it evenly.
pub fn print_duration(ms: i64) -> String {
    const UNITS: [(i64, &str); 5] = [
        (86_400_000, "d"),
        (3_600_000, "h"),
        (60_000, "m"),
        (1_000, "s"),
        (1, "ms"),
    ];
    for (mult, unit) in UNITS {
        if ms % mult == 0 && ms / mult > 0 {
            return format!("{} {unit}", ms / mult);
        }
    }
    format!("{ms} ms")
}

fn print_fraction(f: f64) -> String {
    let pct = f * 100.0;
    if (pct - pct.round()).abs() < 1e-9 {
        format!("{}%", pct.round() as i64)
    } else {
        format!("{f}")
    }
}

fn print_target(t: &TargetExpr) -> String {
    match t {
        TargetExpr::All => "all".into(),
        TargetExpr::Service(v) => print_attr("Service", v),
        TargetExpr::Host(v) => print_attr("Server", v),
        TargetExpr::Dc(v) => print_attr("DC", v),
        TargetExpr::And(a, b) => format!("({}) and ({})", print_target(a), print_target(b)),
        TargetExpr::Or(a, b) => format!("({}) or ({})", print_target(a), print_target(b)),
        TargetExpr::Not(x) => format!("not ({})", print_target(x)),
    }
}

fn print_attr(attr: &str, values: &[String]) -> String {
    if values.len() == 1 {
        format!("{attr} = '{}'", values[0])
    } else {
        let list: Vec<String> = values.iter().map(|v| format!("'{v}'")).collect();
        format!("{attr} in ({})", list.join(", "))
    }
}

/// Render an expression with explicit parentheses (canonical form).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Literal(v) => print_literal(v),
        Expr::Field(f) => f.to_string(),
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => format!("not ({})", print_expr(expr)),
            UnaryOp::Neg => format!("-({})", print_expr(expr)),
        },
        Expr::Binary { op, lhs, rhs } => {
            let sym = match op {
                BinOp::And => "and",
                BinOp::Or => "or",
                other => other.symbol(),
            };
            format!("({} {sym} {})", print_expr(lhs), print_expr(rhs))
        }
        Expr::Call { func, args } => {
            let name = match func {
                ScalarFn::Abs => "abs",
                ScalarFn::Log => "log",
                ScalarFn::Log10 => "log10",
                ScalarFn::Sqrt => "sqrt",
                ScalarFn::Floor => "floor",
                ScalarFn::Ceil => "ceil",
                ScalarFn::Lower => "lower",
                ScalarFn::Upper => "upper",
                ScalarFn::Length => "length",
                ScalarFn::Contains => "contains",
                ScalarFn::StartsWith => "starts_with",
                ScalarFn::EndsWith => "ends_with",
            };
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let items: Vec<String> = list.iter().map(print_literal).collect();
            // parenthesize the scrutinee: postfix predicates do not chain
            // in the grammar ("x is null in (1)" is not parseable)
            format!(
                "(({}) {}in ({}))",
                print_expr(expr),
                if *negated { "not " } else { "" },
                items.join(", ")
            )
        }
        Expr::IsNull { expr, negated } => format!(
            "(({}) is {}null)",
            print_expr(expr),
            if *negated { "not " } else { "" }
        ),
    }
}

fn print_literal(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        Value::Int(x) => x.to_string(),
        Value::Long(x) => x.to_string(),
        Value::Float(x) => format_float(*x as f64),
        Value::Double(x) => format_float(*x),
        Value::DateTime(x) => x.to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
        other => format!("{other}"), // lists/nested are not literal syntax
    }
}

fn format_float(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ql::parser::parse_query;

    fn round_trip(src: &str) {
        let q1 = parse_query(src).unwrap();
        let printed = print_query(&q1);
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("printed query failed to parse: {printed:?}: {e}"));
        assert_eq!(q1, q2, "round trip changed the AST:\n{printed}");
    }

    #[test]
    fn round_trips_paper_queries() {
        round_trip(
            "Select bid.user_id, COUNT(*) from bid \
             @[Service in BidServers and Server = host1] group by bid.user_id",
        );
        round_trip(
            "Select 1000*AVG(impression.cost) from impression \
             where impression.line_item_id = 42 @[Servers in (h1, h2)]",
        );
    }

    #[test]
    fn round_trips_full_feature_query() {
        round_trip(
            "select e.a, COUNT(*), SUM(e.b), TOP(5, e.c), COUNT_DISTINCT(e.d) as cd \
             from e where (e.a > 3 and e.b in (1, -2.5, 'x')) or not e.flag \
             @[not (DC = DC2) or Service in (A, B)] \
             group by e.a window 90 s slide 30 s \
             sample hosts 25% events 10% start in 5 m duration 1 h",
        );
    }

    #[test]
    fn round_trips_scalar_functions() {
        round_trip(
            "select e.x from e where contains(lower(e.name), 'bot') \
             and length(e.name) between 3 and 10 and e.y is not null",
        );
    }

    #[test]
    fn duration_rendering() {
        assert_eq!(print_duration(10_000), "10 s");
        assert_eq!(print_duration(90_000), "90 s");
        assert_eq!(print_duration(120_000), "2 m");
        assert_eq!(print_duration(3_600_000), "1 h");
        assert_eq!(print_duration(86_400_000), "1 d");
        assert_eq!(print_duration(1_500), "1500 ms");
    }

    #[test]
    fn string_escaping() {
        round_trip("select COUNT(*) from e where e.s = 'it\\'s'");
    }
}
