//! Lexer for ScrubQL.
//!
//! ScrubQL is the SQL-like troubleshooting language of §3.2: `select` /
//! `from` / `where` / `group by` plus the Scrub-specific constructs — the
//! `@[...]` target-host clause, `sample`, `window`, `start` and `duration`.
//! Keywords are case-insensitive (the paper's figures mix `Select` and
//! `from`).

use crate::error::{ScrubError, ScrubResult};

/// A lexical token with its byte offset in the source (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset of the first character of this token.
    pub pos: usize,
    /// Token payload.
    pub kind: TokenKind,
}

/// The kinds of ScrubQL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single- or double-quoted string literal (quotes stripped, escapes
    /// processed).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `@`
    At,
    /// `*`
    Star,
    /// `%`
    Percent,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=` (also accepts `==`)
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer {v}"),
            TokenKind::Float(v) => format!("number {v}"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::Eof => "end of input".into(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Dot => ".",
            TokenKind::At => "@",
            TokenKind::Star => "*",
            TokenKind::Percent => "%",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Slash => "/",
            TokenKind::Eq => "=",
            TokenKind::Ne => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            _ => "?",
        }
    }
}

/// Tokenize a ScrubQL source string.
///
/// `--` line comments are skipped. The returned vector always ends with an
/// [`TokenKind::Eof`] token.
pub fn lex(src: &str) -> ScrubResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push(&mut out, i, TokenKind::LParen, &mut i),
            ')' => push(&mut out, i, TokenKind::RParen, &mut i),
            '[' => push(&mut out, i, TokenKind::LBracket, &mut i),
            ']' => push(&mut out, i, TokenKind::RBracket, &mut i),
            ',' => push(&mut out, i, TokenKind::Comma, &mut i),
            ';' => push(&mut out, i, TokenKind::Semi, &mut i),
            '.' => push(&mut out, i, TokenKind::Dot, &mut i),
            '@' => push(&mut out, i, TokenKind::At, &mut i),
            '*' => push(&mut out, i, TokenKind::Star, &mut i),
            '%' => push(&mut out, i, TokenKind::Percent, &mut i),
            '+' => push(&mut out, i, TokenKind::Plus, &mut i),
            '-' => push(&mut out, i, TokenKind::Minus, &mut i),
            '/' => push(&mut out, i, TokenKind::Slash, &mut i),
            '=' => {
                let start = i;
                i += 1;
                if bytes.get(i) == Some(&b'=') {
                    i += 1;
                }
                out.push(Token {
                    pos: start,
                    kind: TokenKind::Eq,
                });
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        pos: i,
                        kind: TokenKind::Ne,
                    });
                    i += 2;
                } else {
                    return Err(ScrubError::Lex {
                        pos: i,
                        msg: "unexpected `!` (did you mean `!=`?)".into(),
                    });
                }
            }
            '<' => {
                let start = i;
                i += 1;
                let kind = match bytes.get(i) {
                    Some(b'=') => {
                        i += 1;
                        TokenKind::Le
                    }
                    Some(b'>') => {
                        i += 1;
                        TokenKind::Ne
                    }
                    _ => TokenKind::Lt,
                };
                out.push(Token { pos: start, kind });
            }
            '>' => {
                let start = i;
                i += 1;
                let kind = if bytes.get(i) == Some(&b'=') {
                    i += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                };
                out.push(Token { pos: start, kind });
            }
            '\'' | '"' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(ScrubError::Lex {
                                pos: start,
                                msg: "unterminated string literal".into(),
                            });
                        }
                        Some(&b) if b as char == quote => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            i += 1;
                            match bytes.get(i) {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'\\') => s.push('\\'),
                                Some(&b) if b as char == quote => s.push(quote),
                                other => {
                                    return Err(ScrubError::Lex {
                                        pos: i,
                                        msg: format!("invalid escape {other:?}"),
                                    });
                                }
                            }
                            i += 1;
                        }
                        Some(&b) => {
                            // copy raw byte; multi-byte UTF-8 sequences pass
                            // through unchanged because we copy every byte
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                // Re-decode multi-byte sequences properly.
                let fixed = if s.is_ascii() {
                    s
                } else {
                    let raw: Vec<u8> = s.chars().map(|c| c as u32 as u8).collect();
                    String::from_utf8(raw).map_err(|_| ScrubError::Lex {
                        pos: start,
                        msg: "invalid utf-8 in string literal".into(),
                    })?
                };
                out.push(Token {
                    pos: start,
                    kind: TokenKind::Str(fixed),
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| ScrubError::Lex {
                        pos: start,
                        msg: format!("invalid number {text:?}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| ScrubError::Lex {
                        pos: start,
                        msg: format!("integer {text:?} out of range"),
                    })?)
                };
                out.push(Token { pos: start, kind });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    pos: start,
                    kind: TokenKind::Ident(src[start..i].to_owned()),
                });
            }
            other => {
                return Err(ScrubError::Lex {
                    pos: i,
                    msg: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    out.push(Token {
        pos: src.len(),
        kind: TokenKind::Eof,
    });
    Ok(out)
}

fn push(out: &mut Vec<Token>, pos: usize, kind: TokenKind, i: &mut usize) {
    out.push(Token { pos, kind });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn figure_9_query_lexes() {
        let toks = kinds(
            "Select bid.user_id, COUNT(*) from bid \
             @[Service in BidServers and Server = host1] group by bid.user_id;",
        );
        assert!(toks.contains(&TokenKind::At));
        assert!(toks.contains(&TokenKind::LBracket));
        assert!(toks.contains(&TokenKind::Star));
        assert_eq!(*toks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 1e3 10"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(1000.0),
                TokenKind::Int(10),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds(r#"'abc' "d\"e" 'a\nb'"#),
            vec![
                TokenKind::Str("abc".into()),
                TokenKind::Str("d\"e".into()),
                TokenKind::Str("a\nb".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= == != <> < <= > >= + - * / %"),
            vec![
                TokenKind::Eq,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("select -- this is a comment\nx"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'abc").is_err());
    }

    #[test]
    fn stray_bang_is_error() {
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn unexpected_char_is_error() {
        assert!(lex("a # b").is_err());
        assert!(lex("a ~ b").is_err());
    }

    #[test]
    fn positions_reported() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 3);
    }

    #[test]
    fn unicode_string_literal() {
        assert_eq!(
            kinds("'héllo'"),
            vec![TokenKind::Str("héllo".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn describe_is_helpful() {
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
        assert_eq!(TokenKind::Le.describe(), "`<=`");
    }
}
