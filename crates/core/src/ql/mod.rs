//! The ScrubQL query language: lexer, AST, and parser (§3.2).

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
