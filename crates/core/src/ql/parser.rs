//! Recursive-descent parser for ScrubQL.
//!
//! The grammar (clauses after FROM may appear in any order, matching the
//! paper's figures which place the `@[...]` target clause before *or* after
//! `group by`):
//!
//! ```text
//! query    := SELECT select_list FROM from_list clause* [';']
//! clause   := WHERE expr
//!           | '@' '[' target ']'
//!           | GROUP BY expr (',' expr)*
//!           | WINDOW duration [SLIDE duration]
//!           | SAMPLE (HOSTS pct)? (EVENTS pct)?
//!           | START (NOW | AT int | IN duration)
//!           | DURATION duration
//! from     := ident (',' ident)* | ident (JOIN ident ON equijoin)*
//! target   := ALL | attr (= v | IN list) | target AND/OR target | NOT target
//! duration := int unit          -- e.g. 10 s, 20 m, 1 h
//! pct      := number '%' | float-in-(0,1]
//! ```

use crate::error::{ScrubError, ScrubResult};
use crate::expr::{BinOp, Expr, FieldRef, ScalarFn, UnaryOp};
use crate::value::Value;

use super::ast::{duration_ms, AggFn, QuerySpec, SampleSpec, SelectItem, StartSpec, TargetExpr};
use super::lexer::{lex, Token, TokenKind};

/// Parse a ScrubQL query string into a [`QuerySpec`].
pub fn parse_query(src: &str) -> ScrubResult<QuerySpec> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    Ok(q)
}

/// Parse just an expression (used in tests and by tooling).
pub fn parse_expr(src: &str) -> ScrubResult<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn here(&self) -> usize {
        self.tokens[self.pos].pos
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn err<T>(&self, msg: impl Into<String>) -> ScrubResult<T> {
        Err(ScrubError::Parse {
            pos: self.here(),
            msg: msg.into(),
        })
    }

    /// Is the current token the given (case-insensitive) keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> ScrubResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {}", self.peek().describe()))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> ScrubResult<()> {
        if self.eat(&kind) {
            Ok(())
        } else {
            self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            ))
        }
    }

    fn expect_eof(&mut self) -> ScrubResult<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            self.err(format!("unexpected {}", self.peek().describe()))
        }
    }

    fn ident(&mut self) -> ScrubResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {}", other.describe())),
        }
    }

    // ----- query ---------------------------------------------------------

    fn query(&mut self) -> ScrubResult<QuerySpec> {
        self.expect_kw("select")?;
        let select = self.select_list()?;
        self.expect_kw("from")?;
        let from = self.parse_from_list()?;

        let mut q = QuerySpec {
            select,
            from,
            where_clause: None,
            group_by: Vec::new(),
            window_ms: None,
            slide_ms: None,
            target: TargetExpr::All,
            sample: SampleSpec::default(),
            start: StartSpec::Now,
            duration_ms: None,
        };

        let mut saw_target = false;
        loop {
            if self.eat(&TokenKind::At) {
                if saw_target {
                    return self.err("duplicate target clause");
                }
                saw_target = true;
                self.expect(TokenKind::LBracket)?;
                q.target = self.target()?;
                self.expect(TokenKind::RBracket)?;
            } else if self.at_kw("where") {
                self.bump();
                if q.where_clause.is_some() {
                    return self.err("duplicate WHERE clause");
                }
                q.where_clause = Some(self.expr()?);
            } else if self.at_kw("group") {
                self.bump();
                self.expect_kw("by")?;
                if !q.group_by.is_empty() {
                    return self.err("duplicate GROUP BY clause");
                }
                loop {
                    q.group_by.push(self.expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            } else if self.at_kw("window") {
                self.bump();
                if q.window_ms.is_some() {
                    return self.err("duplicate WINDOW clause");
                }
                q.window_ms = Some(self.duration()?);
                if self.eat_kw("slide") {
                    q.slide_ms = Some(self.duration()?);
                }
            } else if self.at_kw("sample") {
                self.bump();
                let mut any = false;
                if self.eat_kw("hosts") {
                    q.sample.host_fraction = self.fraction()?;
                    any = true;
                }
                if self.eat_kw("events") {
                    q.sample.event_fraction = self.fraction()?;
                    any = true;
                }
                if !any {
                    return self.err("SAMPLE needs `hosts <pct>` and/or `events <pct>`");
                }
            } else if self.at_kw("start") {
                self.bump();
                if self.eat_kw("now") {
                    q.start = StartSpec::Now;
                } else if self.eat_kw("at") {
                    match self.bump() {
                        TokenKind::Int(v) => q.start = StartSpec::At(v),
                        other => {
                            return self.err(format!(
                                "expected absolute start time (ms), found {}",
                                other.describe()
                            ));
                        }
                    }
                } else if self.eat_kw("in") {
                    q.start = StartSpec::In(self.duration()?);
                } else {
                    return self.err("expected `now`, `at <ms>` or `in <duration>` after START");
                }
            } else if self.at_kw("duration") {
                self.bump();
                if q.duration_ms.is_some() {
                    return self.err("duplicate DURATION clause");
                }
                q.duration_ms = Some(self.duration()?);
            } else if self.at_kw("having") {
                return Err(ScrubError::Unsupported(
                    "HAVING is not part of ScrubQL; filter in the client or tighten WHERE".into(),
                ));
            } else if self.at_kw("order") {
                return Err(ScrubError::Unsupported(
                    "ORDER BY is not part of ScrubQL; sort results in the client".into(),
                ));
            } else {
                break;
            }
        }

        self.eat(&TokenKind::Semi);
        self.expect_eof()?;
        Ok(q)
    }

    fn select_list(&mut self) -> ScrubResult<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> ScrubResult<SelectItem> {
        // Aggregates are recognized at the top of a select item (possibly
        // nested in arithmetic like `1000*AVG(impression.cost)` — see
        // Figure 13). We parse a full expression and then extract a single
        // aggregate if present.
        let expr = self.expr()?;
        let alias = self.alias()?;
        match extract_aggregate(&expr)? {
            Some((func, arg, wrapper)) => {
                if wrapper {
                    // aggregate wrapped in scalar arithmetic, e.g.
                    // 1000*AVG(x): represent as Agg with a post-scale by
                    // rewriting: keep full expr as PostExpr form.
                    Ok(SelectItem::Agg {
                        func,
                        arg,
                        alias: alias.or_else(|| Some(render_alias(&expr))),
                    })
                } else {
                    Ok(SelectItem::Agg { func, arg, alias })
                }
            }
            None => Ok(SelectItem::Expr { expr, alias }),
        }
    }

    fn alias(&mut self) -> ScrubResult<Option<String>> {
        if self.eat_kw("as") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn parse_from_list(&mut self) -> ScrubResult<Vec<String>> {
        let mut types = vec![self.ident()?];
        loop {
            if self.eat(&TokenKind::Comma) {
                types.push(self.ident()?);
            } else if self.at_kw("join") || self.at_kw("inner") || self.at_kw("left") {
                if self.eat_kw("left") || self.eat_kw("outer") || self.eat_kw("full") {
                    return Err(ScrubError::Unsupported(
                        "only inner equi-joins on the request id are supported".into(),
                    ));
                }
                self.eat_kw("inner");
                self.expect_kw("join")?;
                let rhs = self.ident()?;
                self.expect_kw("on")?;
                let cond = self.expr()?;
                let lhs_types = types.clone();
                check_equijoin_on_request_id(&cond, &lhs_types, &rhs)?;
                types.push(rhs);
            } else {
                break;
            }
        }
        Ok(types)
    }

    // ----- target clause --------------------------------------------------

    fn target(&mut self) -> ScrubResult<TargetExpr> {
        self.target_or()
    }

    fn target_or(&mut self) -> ScrubResult<TargetExpr> {
        let mut lhs = self.target_and()?;
        while self.eat_kw("or") {
            let rhs = self.target_and()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn target_and(&mut self) -> ScrubResult<TargetExpr> {
        let mut lhs = self.target_not()?;
        while self.eat_kw("and") {
            let rhs = self.target_not()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn target_not(&mut self) -> ScrubResult<TargetExpr> {
        if self.eat_kw("not") {
            Ok(TargetExpr::Not(Box::new(self.target_not()?)))
        } else {
            self.target_prim()
        }
    }

    fn target_prim(&mut self) -> ScrubResult<TargetExpr> {
        if self.eat(&TokenKind::LParen) {
            let t = self.target()?;
            self.expect(TokenKind::RParen)?;
            return Ok(t);
        }
        if self.eat_kw("all") {
            return Ok(TargetExpr::All);
        }
        let attr = self.ident()?;
        let attr_lc = attr.to_ascii_lowercase();
        let values = self.target_values()?;
        match attr_lc.as_str() {
            "service" | "services" => Ok(TargetExpr::Service(values)),
            "server" | "servers" | "host" | "hosts" => Ok(TargetExpr::Host(values)),
            "dc" | "datacenter" | "datacenters" => Ok(TargetExpr::Dc(values)),
            _ => Err(ScrubError::Parse {
                pos: self.here(),
                msg: format!("unknown target attribute `{attr}` (expected Service/Server/DC)"),
            }),
        }
    }

    fn target_values(&mut self) -> ScrubResult<Vec<String>> {
        if self.eat(&TokenKind::Eq) {
            Ok(vec![self.target_value()?])
        } else if self.eat_kw("in") {
            if self.eat(&TokenKind::LParen) {
                let mut vs = vec![self.target_value()?];
                while self.eat(&TokenKind::Comma) {
                    vs.push(self.target_value()?);
                }
                self.expect(TokenKind::RParen)?;
                Ok(vs)
            } else {
                // `Service in BidServers` — single unparenthesized set name
                Ok(vec![self.target_value()?])
            }
        } else {
            self.err("expected `=` or `in` in target clause")
        }
    }

    fn target_value(&mut self) -> ScrubResult<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            TokenKind::Str(s) => Ok(s),
            other => Err(ScrubError::Parse {
                pos: self.here(),
                msg: format!("expected host/service name, found {}", other.describe()),
            }),
        }
    }

    // ----- misc literals ---------------------------------------------------

    /// `10 s`, `20 m`, `500 ms`, ...
    fn duration(&mut self) -> ScrubResult<i64> {
        let count = match self.bump() {
            TokenKind::Int(v) if v > 0 => v,
            other => {
                return self.err(format!(
                    "expected positive duration count, found {}",
                    other.describe()
                ));
            }
        };
        let unit = self.ident()?;
        duration_ms(count, &unit).ok_or(ScrubError::Parse {
            pos: self.here(),
            msg: format!("unknown duration unit `{unit}`"),
        })
    }

    /// `10%` or a float in (0, 1].
    fn fraction(&mut self) -> ScrubResult<f64> {
        let v = match self.bump() {
            TokenKind::Int(v) => v as f64,
            TokenKind::Float(v) => v,
            other => {
                return self.err(format!(
                    "expected sampling fraction, found {}",
                    other.describe()
                ));
            }
        };
        let frac = if self.eat(&TokenKind::Percent) {
            v / 100.0
        } else {
            v
        };
        if frac <= 0.0 || frac > 1.0 {
            return self.err(format!("sampling fraction {frac} outside (0, 1]"));
        }
        Ok(frac)
    }

    // ----- expressions -----------------------------------------------------

    fn expr(&mut self) -> ScrubResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> ScrubResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.at_kw("or") {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> ScrubResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.at_kw("and") {
            self.bump();
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> ScrubResult<Expr> {
        if self.at_kw("not") {
            self.bump();
            let e = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            })
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> ScrubResult<Expr> {
        let lhs = self.add_expr()?;

        // postfix predicates: IS [NOT] NULL, [NOT] IN (...), [NOT] BETWEEN
        if self.at_kw("is") {
            self.bump();
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let negated = if self.at_kw("not")
            && (matches!(self.peek2(), TokenKind::Ident(s) if s.eq_ignore_ascii_case("in") || s.eq_ignore_ascii_case("between")))
        {
            self.bump();
            true
        } else {
            false
        };
        if self.at_kw("in") {
            self.bump();
            self.expect(TokenKind::LParen)?;
            let mut list = vec![self.literal()?];
            while self.eat(&TokenKind::Comma) {
                list.push(self.literal()?);
            }
            self.expect(TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.at_kw("between") {
            self.bump();
            let lo = self.add_expr()?;
            self.expect_kw("and")?;
            let hi = self.add_expr()?;
            let range = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(Expr::Binary {
                    op: BinOp::Ge,
                    lhs: Box::new(lhs.clone()),
                    rhs: Box::new(lo),
                }),
                rhs: Box::new(Expr::Binary {
                    op: BinOp::Le,
                    lhs: Box::new(lhs),
                    rhs: Box::new(hi),
                }),
            };
            return Ok(if negated {
                Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(range),
                }
            } else {
                range
            });
        }
        if negated {
            return self.err("expected IN or BETWEEN after NOT");
        }

        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> ScrubResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> ScrubResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> ScrubResult<Expr> {
        if self.eat(&TokenKind::Minus) {
            let e = self.unary_expr()?;
            // fold literal negation
            return Ok(match e {
                Expr::Literal(Value::Int(v)) => Expr::Literal(Value::Int(-v)),
                Expr::Literal(Value::Long(v)) => Expr::Literal(Value::Long(-v)),
                Expr::Literal(Value::Double(v)) => Expr::Literal(Value::Double(-v)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> ScrubResult<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Literal(Value::Long(v)))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Literal(Value::Double(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                // keywords-as-literals
                if name.eq_ignore_ascii_case("true") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("false") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if name.eq_ignore_ascii_case("null") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Null));
                }
                self.bump();
                // aggregate or scalar function call?
                if matches!(self.peek(), TokenKind::LParen) {
                    return self.call(name);
                }
                // qualified field?
                if self.eat(&TokenKind::Dot) {
                    let field = self.ident()?;
                    return Ok(Expr::Field(FieldRef::qualified(name, field)));
                }
                Ok(Expr::Field(FieldRef::bare(name)))
            }
            other => self.err(format!("expected expression, found {}", other.describe())),
        }
    }

    /// Parse a call after having consumed `name`, at `(`.
    fn call(&mut self, name: String) -> ScrubResult<Expr> {
        self.expect(TokenKind::LParen)?;
        let lc = name.to_ascii_lowercase();

        // Aggregates become AggMarker expressions extracted by select_item.
        let agg = match lc.as_str() {
            // `COUNT(DISTINCT x)` is sugar for COUNT_DISTINCT(x)
            "count" if matches!(self.peek(), TokenKind::Ident(k) if k.eq_ignore_ascii_case("distinct")) =>
            {
                self.bump();
                Some(AggFn::CountDistinct)
            }
            "count" => Some(AggFn::Count),
            "sum" => Some(AggFn::Sum),
            "avg" | "mean" => Some(AggFn::Avg),
            "min" => Some(AggFn::Min),
            "max" => Some(AggFn::Max),
            "count_distinct" | "countdistinct" => Some(AggFn::CountDistinct),
            "top" | "topk" | "top_k" => {
                let k = match self.bump() {
                    TokenKind::Int(k) if k > 0 => k as usize,
                    other => {
                        return self.err(format!(
                            "TOP expects a positive integer k, found {}",
                            other.describe()
                        ));
                    }
                };
                self.expect(TokenKind::Comma)?;
                Some(AggFn::TopK(k))
            }
            _ => None,
        };

        if let Some(func) = agg {
            let arg = if matches!(func, AggFn::Count) && self.eat(&TokenKind::Star) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(TokenKind::RParen)?;
            return Ok(Expr::Call {
                func: ScalarFn::Abs, // placeholder, see AggMarker below
                args: vec![agg_marker(func, arg)],
            });
        }

        let func = ScalarFn::by_name(&name).ok_or(ScrubError::Parse {
            pos: self.here(),
            msg: format!("unknown function `{name}`"),
        })?;
        let mut args = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            args.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                args.push(self.expr()?);
            }
        }
        self.expect(TokenKind::RParen)?;
        if args.len() != func.arity() {
            return self.err(format!(
                "{name} expects {} argument(s), got {}",
                func.arity(),
                args.len()
            ));
        }
        Ok(Expr::Call { func, args })
    }

    fn literal(&mut self) -> ScrubResult<Value> {
        let neg = self.eat(&TokenKind::Minus);
        let v = match self.bump() {
            TokenKind::Int(v) => Value::Long(if neg { -v } else { v }),
            TokenKind::Float(v) => Value::Double(if neg { -v } else { v }),
            TokenKind::Str(s) if !neg => Value::Str(s),
            TokenKind::Ident(s) if !neg && s.eq_ignore_ascii_case("true") => Value::Bool(true),
            TokenKind::Ident(s) if !neg && s.eq_ignore_ascii_case("false") => Value::Bool(false),
            TokenKind::Ident(s) if !neg && s.eq_ignore_ascii_case("null") => Value::Null,
            other => {
                return self.err(format!("expected literal, found {}", other.describe()));
            }
        };
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// Aggregate markers
//
// Aggregates can be embedded in scalar arithmetic in the select list
// (Figure 13: `1000*AVG(impression.cost)`). The parser wraps each aggregate
// application in a recognizable marker expression; `select_item` then
// extracts it. A marker is `Call { func: Abs, args: [InList { list: [Str
// "\u{0}agg:<name>"], .. }] }`-shaped — never constructible from user
// syntax because the sentinel string contains a NUL byte.
// ---------------------------------------------------------------------------

const AGG_SENTINEL: &str = "\u{0}agg";

fn agg_marker(func: AggFn, arg: Option<Expr>) -> Expr {
    let tag = match func {
        AggFn::Count => "count".to_string(),
        AggFn::Sum => "sum".to_string(),
        AggFn::Avg => "avg".to_string(),
        AggFn::Min => "min".to_string(),
        AggFn::Max => "max".to_string(),
        AggFn::TopK(k) => format!("topk:{k}"),
        AggFn::CountDistinct => "count_distinct".to_string(),
    };
    Expr::InList {
        expr: Box::new(arg.unwrap_or(Expr::Literal(Value::Null))),
        list: vec![Value::Str(format!("{AGG_SENTINEL}:{tag}"))],
        negated: false,
    }
}

fn marker_parts(e: &Expr) -> Option<(AggFn, Option<Expr>)> {
    if let Expr::Call {
        func: ScalarFn::Abs,
        args,
    } = e
    {
        if args.len() == 1 {
            if let Expr::InList {
                expr,
                list,
                negated: false,
            } = &args[0]
            {
                if list.len() == 1 {
                    if let Value::Str(s) = &list[0] {
                        if let Some(tag) = s.strip_prefix(&format!("{AGG_SENTINEL}:")) {
                            let func = match tag {
                                "count" => AggFn::Count,
                                "sum" => AggFn::Sum,
                                "avg" => AggFn::Avg,
                                "min" => AggFn::Min,
                                "max" => AggFn::Max,
                                "count_distinct" => AggFn::CountDistinct,
                                t => {
                                    let k = t.strip_prefix("topk:")?.parse().ok()?;
                                    AggFn::TopK(k)
                                }
                            };
                            let arg = match expr.as_ref() {
                                Expr::Literal(Value::Null) if func == AggFn::Count => None,
                                other => Some(other.clone()),
                            };
                            return Some((func, arg));
                        }
                    }
                }
            }
        }
    }
    None
}

/// Walk an expression extracting at most one aggregate marker. Returns
/// `(func, arg, wrapped_in_arithmetic)`; errors on nested or multiple
/// aggregates (which ScrubQL does not support).
///
/// When the aggregate is wrapped in scalar arithmetic (e.g.
/// `1000*AVG(cost)`) the wrapper is folded into the aggregate argument:
/// `AVG(cost)*1000 == AVG(cost*1000)` holds for AVG/SUM/MIN/MAX scaling by
/// a positive constant; we implement the general case by rewriting the
/// argument. Non-linear wrappers are rejected.
fn extract_aggregate(e: &Expr) -> ScrubResult<Option<(AggFn, Option<Expr>, bool)>> {
    if let Some((func, arg)) = marker_parts(e) {
        if let Some(a) = &arg {
            if count_aggs(a) > 0 {
                return Err(ScrubError::Unsupported(
                    "nested aggregates are not supported".into(),
                ));
            }
        }
        return Ok(Some((func, arg, false)));
    }
    // Try linear wrapper: c * AGG, AGG * c, AGG / c, c + AGG, AGG - c, ...
    if let Expr::Binary { op, lhs, rhs } = e {
        let l = marker_parts(lhs);
        let r = marker_parts(rhs);
        let lc = matches!(lhs.as_ref(), Expr::Literal(_));
        let rc = matches!(rhs.as_ref(), Expr::Literal(_));
        if count_aggs(e) > 1 {
            return Err(ScrubError::Unsupported(
                "select items may contain at most one aggregate".into(),
            ));
        }
        match (l, r, lc, rc, op) {
            // literal OP agg
            (None, Some((func, arg)), true, false, BinOp::Add | BinOp::Mul) if is_linear(&func) => {
                let arg = rewrap(arg, |inner| Expr::Binary {
                    op: *op,
                    lhs: lhs.clone(),
                    rhs: Box::new(inner),
                });
                return Ok(Some((func, arg, true)));
            }
            // agg OP literal
            (Some((func, arg)), None, false, true, _) if op.is_arith() && is_linear(&func) => {
                let arg = rewrap(arg, |inner| Expr::Binary {
                    op: *op,
                    lhs: Box::new(inner),
                    rhs: rhs.clone(),
                });
                return Ok(Some((func, arg, true)));
            }
            _ => {}
        }
        if count_aggs(e) == 1 {
            return Err(ScrubError::Unsupported(
                "aggregates may only be combined with constants linearly (e.g. 1000*AVG(x))".into(),
            ));
        }
    }
    if count_aggs(e) > 0 {
        return Err(ScrubError::Unsupported(
            "aggregate in unsupported position; use AGG(expr) at the top of a select item".into(),
        ));
    }
    Ok(None)
}

fn is_linear(f: &AggFn) -> bool {
    matches!(f, AggFn::Sum | AggFn::Avg | AggFn::Min | AggFn::Max)
}

fn rewrap(arg: Option<Expr>, f: impl Fn(Expr) -> Expr) -> Option<Expr> {
    arg.map(f)
}

fn count_aggs(e: &Expr) -> usize {
    if marker_parts(e).is_some() {
        return 1;
    }
    match e {
        Expr::Literal(_) | Expr::Field(_) => 0,
        Expr::Unary { expr, .. } => count_aggs(expr),
        Expr::Binary { lhs, rhs, .. } => count_aggs(lhs) + count_aggs(rhs),
        Expr::Call { args, .. } => args.iter().map(count_aggs).sum(),
        Expr::InList { expr, .. } => count_aggs(expr),
        Expr::IsNull { expr, .. } => count_aggs(expr),
    }
}

fn render_alias(_e: &Expr) -> String {
    "expr".to_string()
}

/// Validate that an explicit `JOIN ... ON` condition is exactly the
/// request-id equi-join — the only join ScrubQL admits (§3.2/§11).
fn check_equijoin_on_request_id(
    cond: &Expr,
    lhs_types: &[String],
    rhs_type: &str,
) -> ScrubResult<()> {
    if let Expr::Binary {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = cond
    {
        if let (Expr::Field(a), Expr::Field(b)) = (lhs.as_ref(), rhs.as_ref()) {
            let ok_side = |f: &FieldRef, allowed: &dyn Fn(&str) -> bool| {
                f.field == "request_id" && f.event_type.as_deref().map(allowed).unwrap_or(true)
            };
            let in_lhs = |t: &str| lhs_types.iter().any(|x| x == t);
            let is_rhs = |t: &str| t == rhs_type;
            let fwd = ok_side(a, &in_lhs) && ok_side(b, &is_rhs);
            let rev = ok_side(a, &is_rhs) && ok_side(b, &in_lhs);
            if fwd || rev {
                return Ok(());
            }
        }
    }
    Err(ScrubError::Unsupported(
        "joins are restricted to equi-joins on the request identifier \
         (ON a.request_id = b.request_id)"
            .into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_9_spam_query() {
        let q = parse_query(
            "Select bid.user_id, COUNT(*)\n\
             from bid\n\
             @[Service in BidServers and Server = host1]\n\
             group by bid.user_id;",
        )
        .unwrap();
        assert_eq!(q.from, vec!["bid"]);
        assert_eq!(q.select.len(), 2);
        assert!(matches!(
            q.select[1],
            SelectItem::Agg {
                func: AggFn::Count,
                arg: None,
                ..
            }
        ));
        assert_eq!(q.group_by.len(), 1);
        assert!(matches!(q.target, TargetExpr::And(_, _)));
    }

    #[test]
    fn figure_13_cpm_query_with_scaled_avg() {
        let q = parse_query(
            "Select 1000*AVG(impression.cost)\n\
             from impression\n\
             where impression.line_item_id = 42\n\
             @[Servers in (h1, h2, h3)];",
        )
        .unwrap();
        assert_eq!(q.from, vec!["impression"]);
        match &q.select[0] {
            SelectItem::Agg {
                func: AggFn::Avg,
                arg: Some(arg),
                ..
            } => {
                // wrapper folded into the argument: 1000 * cost
                let refs = arg.field_refs();
                assert_eq!(refs.len(), 1);
                assert_eq!(refs[0].field, "cost");
            }
            other => panic!("unexpected select item {other:?}"),
        }
        assert!(q.where_clause.is_some());
        assert!(matches!(&q.target, TargetExpr::Host(hs) if hs.len() == 3));
    }

    #[test]
    fn sampling_clause_figure_11_style() {
        let q = parse_query(
            "select COUNT(*) from impression \
             @[Service in PresentationServers and DC = DC1] \
             sample hosts 10% events 10% window 10 s group by impression.exchange_id",
        )
        .unwrap();
        assert!((q.sample.host_fraction - 0.1).abs() < 1e-12);
        assert!((q.sample.event_fraction - 0.1).abs() < 1e-12);
        assert_eq!(q.window_ms, Some(10_000));
    }

    #[test]
    fn sliding_window_clause() {
        let q = parse_query("select COUNT(*) from bid window 10 s slide 2 s").unwrap();
        assert_eq!(q.window_ms, Some(10_000));
        assert_eq!(q.slide_ms, Some(2_000));
        let q = parse_query("select COUNT(*) from bid window 10 s").unwrap();
        assert_eq!(q.slide_ms, None);
    }

    #[test]
    fn span_clauses() {
        let q =
            parse_query("select COUNT(*) from bid start in 5 m duration 20 m window 10 s").unwrap();
        assert_eq!(q.start, StartSpec::In(300_000));
        assert_eq!(q.duration_ms, Some(1_200_000));
        let q = parse_query("select COUNT(*) from bid start at 1234").unwrap();
        assert_eq!(q.start, StartSpec::At(1234));
        let q = parse_query("select COUNT(*) from bid start now").unwrap();
        assert_eq!(q.start, StartSpec::Now);
    }

    #[test]
    fn implicit_join_by_comma() {
        let q = parse_query("select COUNT(*) from bid, exclusion").unwrap();
        assert_eq!(q.from, vec!["bid", "exclusion"]);
        assert!(q.is_join());
    }

    #[test]
    fn explicit_equijoin_on_request_id_allowed() {
        let q = parse_query(
            "select COUNT(*) from auction join impression \
             on auction.request_id = impression.request_id",
        )
        .unwrap();
        assert_eq!(q.from, vec!["auction", "impression"]);
    }

    #[test]
    fn non_request_id_join_rejected() {
        let e = parse_query(
            "select COUNT(*) from auction join impression \
             on auction.line_item_id = impression.line_item_id",
        )
        .unwrap_err();
        assert!(matches!(e, ScrubError::Unsupported(_)));
    }

    #[test]
    fn outer_join_rejected() {
        let e = parse_query("select COUNT(*) from a left join b on a.request_id = b.request_id")
            .unwrap_err();
        assert!(matches!(e, ScrubError::Unsupported(_)));
    }

    #[test]
    fn non_equi_join_condition_rejected() {
        let e = parse_query("select COUNT(*) from a join b on a.request_id < b.request_id")
            .unwrap_err();
        assert!(matches!(e, ScrubError::Unsupported(_)));
    }

    #[test]
    fn having_and_order_by_unsupported() {
        assert!(matches!(
            parse_query("select COUNT(*) from bid group by bid.x having COUNT(*) > 1"),
            Err(ScrubError::Unsupported(_))
        ));
        assert!(matches!(
            parse_query("select bid.x from bid order by bid.x"),
            Err(ScrubError::Unsupported(_))
        ));
    }

    #[test]
    fn aggregates_all_forms() {
        let q = parse_query(
            "select COUNT(*), COUNT(bid.x), SUM(bid.x), AVG(bid.x), MIN(bid.x), \
             MAX(bid.x), TOP(5, bid.x), COUNT_DISTINCT(bid.x) from bid",
        )
        .unwrap();
        let funcs: Vec<AggFn> = q
            .select
            .iter()
            .map(|s| match s {
                SelectItem::Agg { func, .. } => func.clone(),
                _ => panic!("expected aggregate"),
            })
            .collect();
        assert_eq!(
            funcs,
            vec![
                AggFn::Count,
                AggFn::Count,
                AggFn::Sum,
                AggFn::Avg,
                AggFn::Min,
                AggFn::Max,
                AggFn::TopK(5),
                AggFn::CountDistinct
            ]
        );
    }

    #[test]
    fn nested_aggregates_rejected() {
        assert!(parse_query("select SUM(AVG(bid.x)) from bid").is_err());
        assert!(matches!(
            parse_query("select AVG(bid.x) + AVG(bid.y) from bid"),
            Err(ScrubError::Unsupported(_))
        ));
    }

    #[test]
    fn nonlinear_agg_wrapper_rejected() {
        assert!(matches!(
            parse_query("select AVG(bid.x) * bid.y from bid"),
            Err(ScrubError::Unsupported(_))
        ));
    }

    #[test]
    fn where_expression_forms() {
        let q = parse_query(
            "select bid.x from bid where bid.x in (1, 2, 3) and bid.y not in ('a') \
             and bid.z is not null and bid.w between 1 and 10 and not bid.flag",
        )
        .unwrap();
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn expression_precedence() {
        // 1 + 2 * 3 = 7, not 9
        let e = parse_expr("1 + 2 * 3").unwrap();
        let r = e
            .resolve(&crate::expr::SlotBinder::new())
            .unwrap()
            .eval(&[]);
        assert_eq!(r, Value::Long(7));
        let e = parse_expr("(1 + 2) * 3").unwrap();
        let r = e
            .resolve(&crate::expr::SlotBinder::new())
            .unwrap()
            .eval(&[]);
        assert_eq!(r, Value::Long(9));
    }

    #[test]
    fn negative_literals() {
        let e = parse_expr("-5").unwrap();
        assert_eq!(e, Expr::Literal(Value::Long(-5)));
        let q = parse_query("select bid.x from bid where bid.x in (-1, -2.5)").unwrap();
        match q.where_clause.unwrap() {
            Expr::InList { list, .. } => {
                assert_eq!(list, vec![Value::Long(-1), Value::Double(-2.5)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aliases() {
        let q = parse_query("select AVG(bid.cost) as cpm, bid.x as ex from bid group by bid.x")
            .unwrap();
        assert_eq!(q.headers(), vec!["cpm", "ex"]);
    }

    #[test]
    fn target_clause_forms() {
        let q = parse_query("select COUNT(*) from bid @[all]").unwrap();
        assert_eq!(q.target, TargetExpr::All);
        let q = parse_query("select COUNT(*) from bid @[Service in (A, B) or DC = 'DC2']").unwrap();
        assert!(matches!(q.target, TargetExpr::Or(_, _)));
        let q = parse_query("select COUNT(*) from bid @[not Server = host9]").unwrap();
        assert!(matches!(q.target, TargetExpr::Not(_)));
        assert!(parse_query("select COUNT(*) from bid @[Planet = mars]").is_err());
    }

    #[test]
    fn duplicate_clauses_rejected() {
        assert!(parse_query("select COUNT(*) from bid where 1=1 where 2=2").is_err());
        assert!(parse_query("select COUNT(*) from bid @[all] @[all]").is_err());
        assert!(parse_query("select COUNT(*) from bid window 1 s window 2 s").is_err());
        assert!(parse_query("select COUNT(*) from bid duration 1 m duration 2 m").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("select COUNT(*) from bid garbage garbage").is_err());
    }

    #[test]
    fn unknown_function_rejected() {
        assert!(parse_query("select FROB(bid.x) from bid").is_err());
    }

    #[test]
    fn scalar_functions_in_where() {
        let q = parse_query(
            "select bid.x from bid where starts_with(bid.city, 'san') and length(bid.city) > 3",
        )
        .unwrap();
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn bad_sampling_fractions_rejected() {
        assert!(parse_query("select COUNT(*) from bid sample hosts 0%").is_err());
        assert!(parse_query("select COUNT(*) from bid sample events 150%").is_err());
        assert!(parse_query("select COUNT(*) from bid sample").is_err());
    }

    #[test]
    fn fraction_without_percent_sign() {
        let q = parse_query("select COUNT(*) from bid sample events 0.25").unwrap();
        assert!((q.sample.event_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn count_distinct_sugar() {
        let q = parse_query("select COUNT(distinct bid.user_id) from bid").unwrap();
        assert!(matches!(
            q.select[0],
            SelectItem::Agg {
                func: AggFn::CountDistinct,
                ..
            }
        ));
    }

    #[test]
    fn count_distinct_and_top() {
        let q = parse_query("select COUNT_DISTINCT(bid.user_id), TOP(10, bid.user_id) from bid")
            .unwrap();
        assert!(matches!(
            q.select[0],
            SelectItem::Agg {
                func: AggFn::CountDistinct,
                ..
            }
        ));
        assert!(matches!(
            q.select[1],
            SelectItem::Agg {
                func: AggFn::TopK(10),
                ..
            }
        ));
    }
}
