//! Deployment-wide configuration and defaults.

use serde::{Deserialize, Serialize};

/// Configuration knobs shared by the query server, agents and ScrubCentral.
///
/// Defaults follow the paper's deployment at Turn: 10-second tumbling
/// windows in the case studies, query spans defaulting to minutes so a
/// forgotten query cannot load the system forever (§3.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScrubConfig {
    /// Default tumbling-window length when a query has no WINDOW clause.
    pub default_window_ms: i64,
    /// Default query duration when no DURATION clause is given.
    pub default_duration_ms: i64,
    /// Hard cap on query duration; longer requests are clamped.
    pub max_duration_ms: i64,
    /// Maximum number of event types a single query may join.
    pub max_join_types: usize,
    /// Agent: flush a query's output batch when it reaches this many events.
    pub agent_batch_events: usize,
    /// Agent: flush at least this often (ms) even if the batch is small.
    pub agent_flush_interval_ms: i64,
    /// Agent: per-query budget of matched events per second before load
    /// shedding kicks in (accuracy traded for host impact, §2).
    pub agent_events_per_sec_budget: u64,
    /// Central: number of parallel partitions for executing a query.
    /// Defaults to `1`, the deterministic inline reference path — the
    /// same binary and seed then reproduce every figure on any machine.
    /// Parallel ingest is an explicit opt-in (set this to
    /// [`ScrubConfig::auto_partitions`] or a fixed count); with
    /// `partitions >= 2` summary estimates match the reference only up to
    /// floating-point rounding and scheduling-dependent counters (ingest
    /// backpressure) become machine-dependent.
    #[serde(default = "default_central_partitions")]
    pub central_partitions: usize,
    /// Central: extra time after a window closes before it is finalized,
    /// to absorb host->central delivery skew (ms).
    pub window_grace_ms: i64,
    /// Agent: first retransmit of an unacked batch fires this long after
    /// shipment (ms); backoff doubles from here.
    #[serde(default = "default_agent_retry_base_ms")]
    pub agent_retry_base_ms: i64,
    /// Agent: retransmit backoff ceiling (ms).
    #[serde(default = "default_agent_retry_max_ms")]
    pub agent_retry_max_ms: i64,
    /// Agent: retransmit buffer capacity in batches; beyond it the oldest
    /// pending batch is dropped so a long partition cannot exhaust host
    /// memory.
    #[serde(default = "default_agent_retransmit_buffer")]
    pub agent_retransmit_buffer: usize,
    /// Agent: heartbeat period toward the query server (ms).
    #[serde(default = "default_agent_heartbeat_interval_ms")]
    pub agent_heartbeat_interval_ms: i64,
    /// Server/central: a host that has not been heard from for this long
    /// (ms) is suspected dead — its windows stop being waited for and its
    /// samples leave the estimator.
    #[serde(default = "default_host_grace_ms")]
    pub host_grace_ms: i64,
    /// Agent: fraction of tapped events whose lifecycle is traced
    /// hop-by-hop (deterministic seeded hash of the request id, so every
    /// host and partition count agrees). `0.0` (the default) disables
    /// tracing: the tap's only cost is one integer compare against a
    /// precomputed threshold of zero.
    #[serde(default = "default_trace_sample_rate")]
    pub trace_sample_rate: f64,
    /// Agent: hard cap on trace spans buffered per host across all
    /// queries; once reached, further spans are dropped (and counted in
    /// `agent.trace_spans_shed`) so tracing can never violate the
    /// host-impact contract.
    #[serde(default = "default_trace_span_budget")]
    pub trace_span_budget: usize,
    /// Central: capacity of the metrics-history ring (periodic snapshots
    /// on the sim clock, one per watermark advance). 240 entries at the
    /// default 2.5 s advance interval cover the last ~10 minutes.
    #[serde(default = "default_obs_history_len")]
    pub obs_history_len: usize,
    /// Telemetry store: raw intervals folded into one mid-tier rolled
    /// point (10× the snapshot interval by default — ~25 s buckets).
    #[serde(default = "default_tsdb_mid_factor")]
    pub tsdb_mid_factor: usize,
    /// Telemetry store: raw intervals folded into one coarse-tier
    /// rolled point (100× the snapshot interval by default — ~250 s
    /// buckets, so a bounded store covers runs two orders of magnitude
    /// longer than the raw ring).
    #[serde(default = "default_tsdb_coarse_factor")]
    pub tsdb_coarse_factor: usize,
    /// Telemetry store: rolled points retained per metric per
    /// downsampled tier (memory stays bounded by
    /// `metrics × tiers × cap`, independent of run length).
    #[serde(default = "default_tsdb_tier_cap")]
    pub tsdb_tier_cap: usize,
    /// Per-host CPU envelope for Scrub tap work, as a fraction of one
    /// core (the paper's ≤2.5 % guarantee, §2). Both the agent's budget
    /// tracker and central admission control price against this figure
    /// via the deterministic cost model.
    #[serde(default = "default_host_cpu_budget")]
    pub host_cpu_budget: f64,
    /// Agent: enforce `host_cpu_budget` at the tap — once the modeled ns
    /// spent this second exceed the budget, further per-event ship work
    /// is shed and counted as `budget_shed` in the loss ledger. Off by
    /// default: enforcement changes results, so it is an explicit opt-in
    /// (like parallel ingest).
    #[serde(default = "default_enforce_host_budget")]
    pub enforce_host_budget: bool,
    /// Central: cap on distinct group-by keys held per window. Overflow
    /// follows a deterministic keep-smallest-keys policy (the same key
    /// set survives for any partition count); dropped rows are counted
    /// in `groups_overflow` and surviving rows of the window are marked
    /// degraded. The default is far above every reproduced workload's
    /// cardinality, so results are unchanged unless a run opts into a
    /// tighter cap.
    #[serde(default = "default_max_groups")]
    pub max_groups: usize,
    /// Server: admission-control policy applied when a new query's
    /// estimated per-host cost would push the running total past
    /// `host_cpu_budget`. `Off` (default) admits everything.
    #[serde(default)]
    pub admission: AdmissionPolicy,
    /// Server: assumed per-host event rate (events/s) used to price a
    /// query at admission time. Deterministic by construction — the same
    /// config always prices a query the same way.
    #[serde(default = "default_admission_events_per_host_per_sec")]
    pub admission_events_per_host_per_sec: f64,
    /// Agents: wire format for shipped event batches. `Columnar` (the
    /// default) encodes per-(type, field) column segments — smaller on
    /// the wire and decoded into typed column vectors that ScrubCentral's
    /// vectorized operators consume directly. `Row` keeps the v1
    /// interleaved tagged-row payload; results are identical either way
    /// (only byte-valued counters differ), so the knob exists for
    /// mixed-version fleets and for differential testing.
    #[serde(default)]
    pub wire_format: WireFormat,
    /// Central: evaluate the health plane's alert rules at every
    /// metrics-history tick. On by default — evaluation is a handful of
    /// integer comparisons per rule per advance and only watches
    /// partition-invariant metrics, so it cannot perturb results.
    #[serde(default = "default_alerts_enabled")]
    pub alerts_enabled: bool,
    /// Central: capacity of the bounded alert log (oldest evicted and
    /// counted beyond it).
    #[serde(default = "default_alert_log_cap")]
    pub alert_log_cap: usize,
    /// Alert hysteresis: consecutive true evaluations required before a
    /// default rule fires.
    #[serde(default = "default_alert_for_ticks")]
    pub alert_for_ticks: u32,
    /// Alert hysteresis: consecutive false evaluations required before
    /// a firing default rule clears.
    #[serde(default = "default_alert_clear_ticks")]
    pub alert_clear_ticks: u32,
    /// Anomaly detection: z-score bound on per-interval deltas (the
    /// Welford baseline flags excursions beyond this many σ).
    #[serde(default = "default_anomaly_z")]
    pub anomaly_z: f64,
    /// Anomaly detection: warmup — baselines with fewer than this many
    /// observed intervals never flag.
    #[serde(default = "default_anomaly_min_intervals")]
    pub anomaly_min_intervals: usize,
    /// Anomaly detection: watched metric names. The default watches
    /// central ingest volume; entries must be per-tick
    /// partition-invariant metrics (never `_ns` wall-clock values or
    /// `central.ingest_backpressure`) or the determinism contract of
    /// the alert log breaks.
    #[serde(default = "default_anomaly_metrics")]
    pub anomaly_metrics: Vec<String>,
    /// Server/central: per-query flight-recorder capacity (lifecycle
    /// journal entries; oldest evicted and counted beyond it).
    #[serde(default = "default_flight_recorder_cap")]
    pub flight_recorder_cap: usize,
}

/// Wire format agents use for shipped event batches (see
/// [`ScrubConfig::wire_format`]). Central decodes both, plus headerless
/// legacy v1 frames, regardless of this setting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireFormat {
    /// Interleaved tagged rows (wire format v1).
    Row,
    /// Per-column segments with dictionary strings and null bitmaps
    /// (wire format v2, the default).
    #[default]
    Columnar,
}

/// What the query server does when admitting a query would break the
/// per-host CPU envelope (`ScrubConfig::host_cpu_budget`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// No admission control (the default): every valid query runs.
    #[default]
    Off,
    /// Reject the new query outright (`ScrubError::Rejected`).
    Reject,
    /// Admit the new query with its event-sampling fraction scaled down
    /// until its estimate fits the remaining headroom; reject only when
    /// even the irreducible selection cost does not fit.
    Degrade,
    /// Evict running queries — most expensive first, newest first on
    /// ties (the cheapest value per unit of CPU) — until the new query
    /// fits; reject it if eviction cannot free enough headroom.
    Evict,
}

fn default_agent_retry_base_ms() -> i64 {
    2_000
}
fn default_agent_retry_max_ms() -> i64 {
    30_000
}
fn default_agent_retransmit_buffer() -> usize {
    1_024
}
fn default_agent_heartbeat_interval_ms() -> i64 {
    1_000
}
fn default_host_grace_ms() -> i64 {
    5_000
}
fn default_central_partitions() -> usize {
    1
}
fn default_trace_sample_rate() -> f64 {
    0.0
}
fn default_trace_span_budget() -> usize {
    256
}
fn default_obs_history_len() -> usize {
    240
}
fn default_tsdb_mid_factor() -> usize {
    10
}
fn default_tsdb_coarse_factor() -> usize {
    100
}
fn default_tsdb_tier_cap() -> usize {
    240
}
fn default_host_cpu_budget() -> f64 {
    0.025
}
fn default_enforce_host_budget() -> bool {
    false
}
fn default_max_groups() -> usize {
    65_536
}
fn default_admission_events_per_host_per_sec() -> f64 {
    10_000.0
}
fn default_alerts_enabled() -> bool {
    true
}
fn default_alert_log_cap() -> usize {
    256
}
fn default_alert_for_ticks() -> u32 {
    1
}
fn default_alert_clear_ticks() -> u32 {
    2
}
fn default_anomaly_z() -> f64 {
    6.0
}
fn default_anomaly_min_intervals() -> usize {
    12
}
fn default_anomaly_metrics() -> Vec<String> {
    vec!["central.events_ingested".to_string()]
}
fn default_flight_recorder_cap() -> usize {
    256
}

impl ScrubConfig {
    /// Opt-in parallelism for `central_partitions`: the machine's
    /// available parallelism, clamped to `1..=8`. Deliberately **not**
    /// the default — partition count affects floating-point rounding of
    /// the merged estimates and per-machine counters, so deterministic
    /// simulation/experiment entry points stay at `1` unless a run asks
    /// for parallel ingest explicitly. Note each installed query costs
    /// one worker thread (plus one bounded channel) per partition.
    pub fn auto_partitions() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8)
    }
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            default_window_ms: 10_000,
            default_duration_ms: 10 * 60_000,
            max_duration_ms: 24 * 3_600_000,
            max_join_types: 4,
            agent_batch_events: 256,
            agent_flush_interval_ms: 1_000,
            agent_events_per_sec_budget: 50_000,
            central_partitions: default_central_partitions(),
            window_grace_ms: 2_000,
            agent_retry_base_ms: default_agent_retry_base_ms(),
            agent_retry_max_ms: default_agent_retry_max_ms(),
            agent_retransmit_buffer: default_agent_retransmit_buffer(),
            agent_heartbeat_interval_ms: default_agent_heartbeat_interval_ms(),
            host_grace_ms: default_host_grace_ms(),
            trace_sample_rate: default_trace_sample_rate(),
            trace_span_budget: default_trace_span_budget(),
            obs_history_len: default_obs_history_len(),
            tsdb_mid_factor: default_tsdb_mid_factor(),
            tsdb_coarse_factor: default_tsdb_coarse_factor(),
            tsdb_tier_cap: default_tsdb_tier_cap(),
            host_cpu_budget: default_host_cpu_budget(),
            enforce_host_budget: default_enforce_host_budget(),
            max_groups: default_max_groups(),
            admission: AdmissionPolicy::default(),
            admission_events_per_host_per_sec: default_admission_events_per_host_per_sec(),
            wire_format: WireFormat::default(),
            alerts_enabled: default_alerts_enabled(),
            alert_log_cap: default_alert_log_cap(),
            alert_for_ticks: default_alert_for_ticks(),
            alert_clear_ticks: default_alert_clear_ticks(),
            anomaly_z: default_anomaly_z(),
            anomaly_min_intervals: default_anomaly_min_intervals(),
            anomaly_metrics: default_anomaly_metrics(),
            flight_recorder_cap: default_flight_recorder_cap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ScrubConfig::default();
        assert_eq!(c.default_window_ms, 10_000);
        assert!(c.default_duration_ms < c.max_duration_ms);
        assert!(c.agent_batch_events > 0);
        // Determinism-first: parallel ingest is opt-in, never the default.
        assert_eq!(c.central_partitions, 1);
        // Host-impact-first: tracing is opt-in, never the default.
        assert_eq!(c.trace_sample_rate, 0.0);
        assert!(c.trace_span_budget > 0);
        assert!(c.obs_history_len >= 2);
        assert_eq!(c.tsdb_mid_factor, 10);
        assert_eq!(c.tsdb_coarse_factor, 100);
        assert!(c.tsdb_coarse_factor > c.tsdb_mid_factor);
        assert_eq!(c.tsdb_tier_cap, 240);
        // Overload protection defaults: the paper's 2.5 % envelope, with
        // enforcement and admission control opt-in so the reproduced
        // figures are unchanged out of the box.
        assert_eq!(c.host_cpu_budget, 0.025);
        assert!(!c.enforce_host_budget);
        assert_eq!(c.max_groups, 65_536);
        assert_eq!(c.admission, AdmissionPolicy::Off);
        assert_eq!(c.admission_events_per_host_per_sec, 10_000.0);
        // Columnar is the default wire format; `Row` stays available for
        // mixed-version fleets and differential tests.
        assert_eq!(c.wire_format, WireFormat::Columnar);
        // Health plane: alerts are on by default (pure observation —
        // they cannot change results), with bounded logs/journals and
        // an anomaly watchlist restricted to partition-invariant
        // metrics.
        assert!(c.alerts_enabled);
        assert!(c.alert_log_cap > 0);
        assert!(c.alert_for_ticks >= 1);
        assert!(c.alert_clear_ticks >= 1);
        assert!(c.anomaly_z > 0.0);
        assert!(c.anomaly_min_intervals >= 2);
        assert_eq!(c.anomaly_metrics, vec!["central.events_ingested"]);
        assert!(!c.anomaly_metrics.iter().any(|m| m.ends_with("_ns")));
        assert!(c.flight_recorder_cap >= 4);
        let auto = ScrubConfig::auto_partitions();
        assert!((1..=8).contains(&auto));
    }

    #[test]
    fn admission_policy_serde_round_trips() {
        for p in [
            AdmissionPolicy::Off,
            AdmissionPolicy::Reject,
            AdmissionPolicy::Degrade,
            AdmissionPolicy::Evict,
        ] {
            let json = serde_json::to_string(&p).unwrap();
            let back: AdmissionPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
        assert_eq!(
            serde_json::to_string(&AdmissionPolicy::Evict).unwrap(),
            "\"Evict\""
        );
    }
}
