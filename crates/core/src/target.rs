//! Resolution of the `@[...]` target-host clause against a host inventory.
//!
//! §3.2: "Putting this construct in the language instead of, for instance,
//! using a selection on the host name, allows Scrub to limit the execution
//! of the query to the specified hosts, again reducing the load on the
//! target system." Resolution happens entirely at the query server; hosts
//! that do not match never see the query object at all.

use serde::{Deserialize, Serialize};

use crate::ql::ast::TargetExpr;

/// Descriptor of one application host as known to the service registry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostInfo {
    /// Unique host name (e.g. `"bid-sj-0007"`).
    pub name: String,
    /// Service the host runs (e.g. `"BidServers"`).
    pub service: String,
    /// Data center the host resides in (e.g. `"DC1"`).
    pub dc: String,
}

impl HostInfo {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, service: impl Into<String>, dc: impl Into<String>) -> Self {
        HostInfo {
            name: name.into(),
            service: service.into(),
            dc: dc.into(),
        }
    }

    /// Does this host satisfy the target expression?
    pub fn matches(&self, target: &TargetExpr) -> bool {
        match target {
            TargetExpr::All => true,
            TargetExpr::Service(ss) => ss.iter().any(|s| eq_ci(s, &self.service)),
            TargetExpr::Host(hs) => hs.iter().any(|h| eq_ci(h, &self.name)),
            TargetExpr::Dc(ds) => ds.iter().any(|d| eq_ci(d, &self.dc)),
            TargetExpr::And(a, b) => self.matches(a) && self.matches(b),
            TargetExpr::Or(a, b) => self.matches(a) || self.matches(b),
            TargetExpr::Not(t) => !self.matches(t),
        }
    }

    /// Does the target clause *explicitly name* this host — its host name
    /// or its service, written out, anywhere in the expression?
    ///
    /// Blanket selectors (`@[all]`, a DC filter, a negation) do not count.
    /// Scrub's own nodes are resolvable targets only for queries that name
    /// them (`@[Service in ScrubCentral]`): applications asking for
    /// "everything" get application hosts, never the troubleshooter's.
    pub fn explicitly_named(&self, target: &TargetExpr) -> bool {
        match target {
            TargetExpr::All | TargetExpr::Dc(_) => false,
            TargetExpr::Service(ss) => ss.iter().any(|s| eq_ci(s, &self.service)),
            TargetExpr::Host(hs) => hs.iter().any(|h| eq_ci(h, &self.name)),
            TargetExpr::And(a, b) | TargetExpr::Or(a, b) => {
                self.explicitly_named(a) || self.explicitly_named(b)
            }
            TargetExpr::Not(t) => self.explicitly_named(t),
        }
    }
}

fn eq_ci(a: &str, b: &str) -> bool {
    a.eq_ignore_ascii_case(b)
}

/// Filter an inventory down to the hosts matching `target`.
pub fn resolve_targets<'a>(
    hosts: impl IntoIterator<Item = &'a HostInfo>,
    target: &TargetExpr,
) -> Vec<&'a HostInfo> {
    hosts.into_iter().filter(|h| h.matches(target)).collect()
}

/// Deterministically sample `fraction` of `n` indices using a seeded
/// linear-congruential shuffle. Host sampling must be stable for a given
/// query id so re-dispatch after a server restart picks the same hosts.
pub fn sample_indices(n: usize, fraction: f64, seed: u64) -> Vec<usize> {
    let keep = if fraction >= 1.0 {
        n
    } else {
        ((n as f64) * fraction).round().max(1.0) as usize
    };
    if keep >= n {
        return (0..n).collect();
    }
    // Fisher-Yates with an xorshift generator seeded through splitmix64 so
    // nearby query ids give unrelated samples.
    let mut idx: Vec<usize> = (0..n).collect();
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let mut state = (z ^ (z >> 31)) | 1;
    for i in (1..n).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    let mut chosen: Vec<usize> = idx.into_iter().take(keep).collect();
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inventory() -> Vec<HostInfo> {
        vec![
            HostInfo::new("bid-1", "BidServers", "DC1"),
            HostInfo::new("bid-2", "BidServers", "DC2"),
            HostInfo::new("ad-1", "AdServers", "DC1"),
            HostInfo::new("pres-1", "PresentationServers", "DC1"),
        ]
    }

    #[test]
    fn all_matches_everything() {
        let hosts = inventory();
        assert_eq!(resolve_targets(&hosts, &TargetExpr::All).len(), 4);
    }

    #[test]
    fn service_filter() {
        let hosts = inventory();
        let t = TargetExpr::Service(vec!["BidServers".into()]);
        let got = resolve_targets(&hosts, &t);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|h| h.service == "BidServers"));
    }

    #[test]
    fn service_and_dc_conjunction() {
        let hosts = inventory();
        let t =
            TargetExpr::Service(vec!["BidServers".into()]).and(TargetExpr::Dc(vec!["DC1".into()]));
        let got = resolve_targets(&hosts, &t);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "bid-1");
    }

    #[test]
    fn host_list_and_or() {
        let hosts = inventory();
        let t = TargetExpr::Host(vec!["bid-1".into()]).or(TargetExpr::Host(vec!["ad-1".into()]));
        assert_eq!(resolve_targets(&hosts, &t).len(), 2);
    }

    #[test]
    fn negation() {
        let hosts = inventory();
        let t = TargetExpr::Not(Box::new(TargetExpr::Dc(vec!["DC1".into()])));
        let got = resolve_targets(&hosts, &t);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "bid-2");
    }

    #[test]
    fn matching_is_case_insensitive() {
        let hosts = inventory();
        let t = TargetExpr::Service(vec!["bidservers".into()]);
        assert_eq!(resolve_targets(&hosts, &t).len(), 2);
    }

    #[test]
    fn explicit_naming_requires_the_name_or_service_spelled_out() {
        let central = HostInfo::new("scrub-central", "ScrubCentral", "DC1");
        assert!(!central.explicitly_named(&TargetExpr::All));
        assert!(!central.explicitly_named(&TargetExpr::Dc(vec!["DC1".into()])));
        assert!(central.explicitly_named(&TargetExpr::Service(vec!["scrubcentral".into()])));
        assert!(central.explicitly_named(&TargetExpr::Host(vec!["scrub-central".into()])));
        // naming it inside a conjunction/negation still counts
        let t = TargetExpr::Service(vec!["ScrubCentral".into()])
            .and(TargetExpr::Dc(vec!["DC1".into()]));
        assert!(central.explicitly_named(&t));
        assert!(!central.explicitly_named(&TargetExpr::Service(vec!["BidServers".into()])));
    }

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let a = sample_indices(100, 0.1, 42);
        let b = sample_indices(100, 0.1, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        let c = sample_indices(100, 0.1, 43);
        assert_ne!(a, c); // different seed, different sample (overwhelmingly)
    }

    #[test]
    fn sampling_keeps_at_least_one() {
        assert_eq!(sample_indices(50, 0.001, 7).len(), 1);
        assert_eq!(sample_indices(10, 1.0, 7).len(), 10);
        assert_eq!(sample_indices(0, 0.5, 7).len(), 0);
    }
}
