//! Property-based tests of scrub-core invariants: the wire codec, the
//! value ordering, the lexer/parser's totality, and planner determinism.

use proptest::prelude::*;

use scrub_core::columnar::ColumnarFrame;
use scrub_core::config::WireFormat;
use scrub_core::encode::{decode_batch, encode_batch, encode_batch_format, FORMAT_COLUMNAR};
use scrub_core::event::{Event, RequestId};
use scrub_core::plan::{compile, QueryId};
use scrub_core::prelude::*;
use scrub_core::ql::lexer::lex;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Long),
        any::<f32>().prop_map(Value::Float),
        any::<f64>().prop_map(Value::Double),
        any::<i64>().prop_map(Value::DateTime),
        "[a-zA-Z0-9 _éü]{0,24}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..3).prop_map(Value::Nested),
        ]
    })
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        0u32..32,
        any::<u64>(),
        any::<i64>(),
        prop::collection::vec(arb_value(), 0..6),
    )
        .prop_map(|(t, rid, ts, values)| Event::new(EventTypeId(t), RequestId(rid), ts, values))
}

proptest! {
    /// Any batch of events survives the wire codec unchanged.
    #[test]
    fn codec_round_trips(events in prop::collection::vec(arb_event(), 0..20)) {
        let frame = encode_batch(&events);
        let back = decode_batch(frame).unwrap();
        // NaN != NaN under PartialEq; compare via total order
        prop_assert_eq!(back.len(), events.len());
        for (a, b) in back.iter().zip(&events) {
            prop_assert_eq!(a.type_id, b.type_id);
            prop_assert_eq!(a.request_id, b.request_id);
            prop_assert_eq!(a.timestamp, b.timestamp);
            prop_assert_eq!(a.values.len(), b.values.len());
            for (x, y) in a.values.iter().zip(&b.values) {
                prop_assert_eq!(x.group_key(), y.group_key());
            }
        }
    }

    /// Decoding arbitrary bytes never panics — it returns Ok or Err.
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_batch(bytes::Bytes::from(bytes));
    }

    /// Columnar frames round-trip any batch: empty batches, null cells
    /// (validity bitmaps), and list/nested values (opaque row-encoded
    /// fallback columns) included.
    #[test]
    fn columnar_codec_round_trips(events in prop::collection::vec(arb_event(), 0..20)) {
        let frame = encode_batch_format(&events, WireFormat::Columnar);
        let back = decode_batch(frame).unwrap();
        prop_assert_eq!(back.len(), events.len());
        for (a, b) in back.iter().zip(&events) {
            prop_assert_eq!(a.type_id, b.type_id);
            prop_assert_eq!(a.request_id, b.request_id);
            prop_assert_eq!(a.timestamp, b.timestamp);
            prop_assert_eq!(a.values.len(), b.values.len());
            for (x, y) in a.values.iter().zip(&b.values) {
                prop_assert_eq!(x.group_key(), y.group_key());
            }
        }
    }

    /// Row and columnar encodings of the same batch decode to the same
    /// events — the differential the central ingest path relies on.
    #[test]
    fn row_and_columnar_decodes_agree(events in prop::collection::vec(arb_event(), 0..20)) {
        let row = decode_batch(encode_batch_format(&events, WireFormat::Row)).unwrap();
        let col = decode_batch(encode_batch_format(&events, WireFormat::Columnar)).unwrap();
        prop_assert_eq!(row.len(), col.len());
        for (a, b) in row.iter().zip(&col) {
            prop_assert_eq!(a.type_id, b.type_id);
            prop_assert_eq!(a.request_id, b.request_id);
            prop_assert_eq!(a.timestamp, b.timestamp);
            prop_assert_eq!(a.values.len(), b.values.len());
            for (x, y) in a.values.iter().zip(&b.values) {
                prop_assert_eq!(x.group_key(), y.group_key());
            }
        }
    }

    /// Column slices materialized without per-event allocation agree with
    /// the original rows cell-for-cell, chunks preserve event order, and
    /// the metadata iterator visits every (request id, timestamp) in
    /// sequence.
    #[test]
    fn columnar_slices_match_rows(events in prop::collection::vec(arb_event(), 0..20)) {
        let frame = ColumnarFrame::from_events(&events);
        prop_assert_eq!(frame.len(), events.len());
        let mut meta = Vec::new();
        frame.for_each_meta(|rid, ts| meta.push((rid, ts)));
        let expect: Vec<(u64, i64)> =
            events.iter().map(|e| (e.request_id.0, e.timestamp)).collect();
        prop_assert_eq!(meta, expect);
        let batch = frame.decode().unwrap();
        prop_assert_eq!(batch.event_count(), events.len());
        let mut idx = 0;
        for chunk in &batch.chunks {
            for i in 0..chunk.len() {
                let ev = &events[idx];
                prop_assert_eq!(chunk.type_id, ev.type_id);
                prop_assert_eq!(chunk.request_ids[i], ev.request_id.0);
                prop_assert_eq!(chunk.timestamps[i], ev.timestamp);
                prop_assert_eq!(chunk.columns.len(), ev.values.len());
                for (j, col) in chunk.columns.iter().enumerate() {
                    prop_assert_eq!(
                        col.value_at(i).group_key(),
                        ev.values[j].group_key()
                    );
                }
                idx += 1;
            }
        }
        prop_assert_eq!(idx, events.len());
    }

    /// The v2 columnar decoder is total: any byte soup behind a
    /// `[0x00, FORMAT_COLUMNAR]` header returns Ok or Err, never panics.
    #[test]
    fn columnar_decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut framed = vec![0u8, FORMAT_COLUMNAR];
        framed.extend_from_slice(&bytes);
        let _ = decode_batch(bytes::Bytes::from(framed));
    }

    /// total_cmp is antisymmetric and transitive (a genuine total order).
    #[test]
    fn value_order_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    /// Equal group keys imply loose equality (keys never conflate values
    /// that compare unequal).
    #[test]
    fn group_key_consistent_with_eq(a in arb_value(), b in arb_value()) {
        if a.group_key() == b.group_key() {
            // NaN is the one value not loose-equal to itself by IEEE, but
            // total_cmp treats it consistently
            prop_assert_eq!(a.total_cmp(&b), std::cmp::Ordering::Equal);
        }
    }

    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_is_total(src in "\\PC{0,200}") {
        let _ = lex(&src);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_is_total(src in "\\PC{0,200}") {
        let _ = parse_query(&src);
    }

    /// The parser never panics on query-shaped input either.
    #[test]
    fn parser_total_on_query_shaped(
        field in "[a-z]{1,6}",
        num in any::<i32>(),
        tail in "[a-z0-9 ()<>=%.,;*@\\[\\]]{0,60}",
    ) {
        let _ = parse_query(&format!("select {field} from bid where {field} > {num} {tail}"));
        let _ = parse_query(&format!("select COUNT(*) from {field} {tail}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Planning is deterministic: same spec, same plan.
    #[test]
    fn planning_is_deterministic(
        pred_const in 0i64..100,
        window_s in 1i64..120,
    ) {
        let reg = SchemaRegistry::new();
        reg.register(EventSchema::new(
            "bid",
            vec![
                FieldDef::new("user_id", FieldType::Long),
                FieldDef::new("price", FieldType::Double),
            ],
        ).unwrap()).unwrap();
        let src = format!(
            "select bid.user_id, COUNT(*) from bid where bid.user_id < {pred_const} \
             group by bid.user_id window {window_s} s"
        );
        let spec = parse_query(&src).unwrap();
        let a = compile(&spec, &reg, &ScrubConfig::default(), QueryId(1)).unwrap();
        let b = compile(&spec, &reg, &ScrubConfig::default(), QueryId(1)).unwrap();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Printer round-trip over generated expression ASTs
// ---------------------------------------------------------------------------

use scrub_core::expr::{BinOp, Expr, FieldRef, ScalarFn};
use scrub_core::ql::parser::parse_expr;
use scrub_core::ql::printer::print_expr;

/// Expressions restricted to the parse-producible space (e.g. literals the
/// grammar can spell: longs, doubles, strings, booleans).
fn arb_printable_expr() -> impl Strategy<Value = Expr> {
    let literal = prop_oneof![
        any::<i32>().prop_map(|v| Expr::Literal(Value::Long(v as i64))),
        (-1000i64..1000).prop_map(|v| Expr::Literal(Value::Double(v as f64 * 0.25))),
        "[a-z0-9 ]{0,10}".prop_map(|s| Expr::Literal(Value::Str(s))),
        any::<bool>().prop_map(|b| Expr::Literal(Value::Bool(b))),
    ];
    let field = prop_oneof![
        "[a-z][a-z0-9_]{0,6}".prop_map(|f| Expr::Field(FieldRef::bare(f))),
        ("[a-z][a-z0-9_]{0,5}", "[a-z][a-z0-9_]{0,5}")
            .prop_map(|(t, f)| Expr::Field(FieldRef::qualified(t, f))),
    ];
    let leaf = prop_oneof![literal, field];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                prop::sample::select(vec![
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Mod,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::And,
                    BinOp::Or,
                ]),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            (
                inner.clone(),
                prop::collection::vec(-50i64..50, 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list: list.into_iter().map(Value::Long).collect(),
                    negated,
                }),
            (
                prop::sample::select(vec![
                    ScalarFn::Abs,
                    ScalarFn::Log,
                    ScalarFn::Lower,
                    ScalarFn::Length,
                ]),
                inner.clone()
            )
                .prop_map(|(func, a)| Expr::Call {
                    func,
                    args: vec![a],
                }),
            (inner.clone(), inner).prop_map(|(h, n)| Expr::Call {
                func: ScalarFn::Contains,
                args: vec![h, n],
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print ∘ parse is the identity on expression ASTs: the canonical
    /// rendering parses back to exactly the same tree.
    #[test]
    fn printed_expressions_parse_back_identically(e in arb_printable_expr()) {
        let printed = print_expr(&e);
        let parsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("unparseable rendering {printed:?}: {err}"));
        prop_assert_eq!(parsed, e, "round trip changed the AST via {}", printed);
    }
}
