//! Event batches shipped from a host agent to ScrubCentral.

use serde::{Deserialize, Serialize};

use scrub_core::event::Event;
use scrub_core::plan::QueryId;
use scrub_core::schema::EventTypeId;
use scrub_obs::TraceSpan;

/// A batch of selected/projected events for one query from one host.
///
/// Alongside the events, the batch carries the host's cumulative counters —
/// `matched` is the host's matching-event population `M_i` and `sampled`
/// its sampled count `m_i`, which ScrubCentral feeds into the two-stage
/// sampling estimator (Eqs 1–3). `shed` counts events dropped by load
/// shedding (accuracy knowingly traded for host impact, §2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventBatch {
    /// Owning query.
    pub query_id: QueryId,
    /// Per-(host, query) batch sequence number, assigned by the shipping
    /// side at flush time. ScrubCentral uses it to discard duplicates when
    /// the agent retransmits batches whose ack was lost. Not included in
    /// `approx_bytes` — it rides in the existing fixed header allowance.
    #[serde(default)]
    pub seq: u64,
    /// Which shipping attempt this copy rode: 0 for the first shipment,
    /// `n >= 1` for the n-th retransmission. Set by the reliable shipper
    /// so ScrubCentral can account first-sent vs retransmitted bytes
    /// even when the original copy was lost in flight. Not part of the
    /// dedup key and not counted in `approx_bytes`.
    #[serde(default)]
    pub attempt: u32,
    /// The (single) event type this batch's subscription taps. Counters
    /// are cumulative **per (host, event type)**: a join query has one
    /// subscription per FROM type on each host, each with its own
    /// counters.
    pub type_id: EventTypeId,
    /// Reporting host name.
    pub host: String,
    /// Projected events (values in host-plan projection order).
    pub events: Vec<Event>,
    /// Cumulative count of events that matched selection on this host.
    pub matched: u64,
    /// Cumulative count of matched events that passed event sampling and
    /// were shipped (or would have been, absent shedding).
    pub sampled: u64,
    /// Cumulative count of events dropped by load shedding.
    pub shed: u64,
    /// Cumulative count of events dropped by the per-host CPU budget
    /// tracker (`ScrubConfig::enforce_host_budget`): they matched and
    /// passed sampling, but shipping them would have pushed the modeled
    /// host cost past `host_cpu_budget` this second. Like `seq`, rides
    /// the fixed header allowance.
    #[serde(default)]
    pub budget_shed: u64,
    /// Cumulative count of events of this type *seen* by the tap on this
    /// host (the selection operator's input cardinality — `EXPLAIN
    /// ANALYZE` audits the predicate's estimated selectivity against
    /// `matched / seen`). Like `seq`, rides the fixed header allowance
    /// and is not counted in `approx_bytes`.
    #[serde(default)]
    pub seen: u64,
    /// Cumulative bytes this subscription shipped in first-transmission
    /// batches (feeds the sampling/ship operator's byte cost at central).
    /// Not counted in `approx_bytes`.
    #[serde(default)]
    pub bytes: u64,
    /// Lifecycle trace spans piggybacking on this batch (empty unless
    /// `ScrubConfig::trace_sample_rate > 0`). Spans ride the batches the
    /// agent ships anyway — tracing adds no messages to the network.
    #[serde(default)]
    pub spans: Vec<TraceSpan>,
}

impl EventBatch {
    /// Approximate wire size of this batch in bytes.
    pub fn approx_bytes(&self) -> usize {
        let header = 8 + self.host.len() + 24;
        header
            + self.events.iter().map(Event::approx_bytes).sum::<usize>()
            + self.spans.len() * TraceSpan::APPROX_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrub_core::event::RequestId;
    use scrub_core::schema::EventTypeId;
    use scrub_core::value::Value;

    #[test]
    fn batch_size_accounts_events() {
        let ev = Event::new(EventTypeId(0), RequestId(1), 0, vec![Value::Long(5)]);
        let empty = EventBatch {
            query_id: QueryId(1),
            seq: 0,
            attempt: 0,
            type_id: EventTypeId(0),
            host: "h".into(),
            events: vec![],
            matched: 0,
            sampled: 0,
            shed: 0,
            budget_shed: 0,
            seen: 0,
            bytes: 0,
            spans: vec![],
        };
        let one = EventBatch {
            events: vec![ev.clone()],
            ..empty.clone()
        };
        assert_eq!(one.approx_bytes() - empty.approx_bytes(), ev.approx_bytes());
        let spanned = EventBatch {
            spans: vec![scrub_obs::TraceSpan::new(
                1,
                scrub_obs::SpanKind::Emit,
                0,
                0,
            )],
            ..empty.clone()
        };
        assert_eq!(
            spanned.approx_bytes() - empty.approx_bytes(),
            scrub_obs::TraceSpan::APPROX_BYTES,
            "piggybacked spans must be charged to the wire-size model"
        );
    }
}
