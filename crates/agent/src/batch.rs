//! Event batches shipped from a host agent to ScrubCentral.

use serde::{Deserialize, Serialize};

use scrub_core::columnar::ColumnarFrame;
use scrub_core::config::WireFormat;
use scrub_core::event::Event;
use scrub_core::plan::QueryId;
use scrub_core::schema::EventTypeId;
use scrub_obs::TraceSpan;

/// The event payload of a batch, in the shape the agent shipped it.
///
/// `Rows` is the v1 wire format: materialised row events. `Columnar` is
/// the v2 format: the agent encoded its flush buffer into per-column
/// segments at ship time, so what rides the wire (and what byte
/// accounting charges) is the actual encoded frame. ScrubCentral's
/// vectorized operators consume the columnar frame directly; `Rows`
/// survives as the compatibility path and as the hand-off shape for
/// request-id-sharded joins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BatchPayload {
    /// Interleaved row events (wire format v1).
    Rows(Vec<Event>),
    /// Encoded columnar frame plus cached count/timestamp metadata
    /// (wire format v2).
    Columnar(ColumnarFrame),
}

impl BatchPayload {
    /// Build a payload from a flush buffer in the configured wire format.
    pub fn from_events(events: Vec<Event>, format: WireFormat) -> BatchPayload {
        match format {
            WireFormat::Row => BatchPayload::Rows(events),
            WireFormat::Columnar => BatchPayload::Columnar(ColumnarFrame::from_events(&events)),
        }
    }

    /// Number of events in the payload (O(1) for both formats).
    pub fn len(&self) -> usize {
        match self {
            BatchPayload::Rows(evs) => evs.len(),
            BatchPayload::Columnar(f) => f.len(),
        }
    }

    /// True when the payload carries no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(min, max)` event timestamp, `None` when empty. O(1) for
    /// columnar payloads (cached at encode time).
    pub fn ts_range(&self) -> Option<(i64, i64)> {
        match self {
            BatchPayload::Rows(evs) => {
                let lo = evs.iter().map(|e| e.timestamp).min()?;
                let hi = evs.iter().map(|e| e.timestamp).max()?;
                Some((lo, hi))
            }
            BatchPayload::Columnar(f) => f.ts_range(),
        }
    }

    /// Visit `(request_id, timestamp)` for every event in order, without
    /// materialising rows (columnar frames scan chunk headers only).
    pub fn for_each_meta(&self, mut f: impl FnMut(u64, i64)) {
        match self {
            BatchPayload::Rows(evs) => {
                for ev in evs {
                    f(ev.request_id.0, ev.timestamp);
                }
            }
            BatchPayload::Columnar(fr) => fr.for_each_meta(f),
        }
    }

    /// Materialise row events (cloning for `Rows`, decoding for
    /// `Columnar`). Frames are produced in-process, so a decode failure
    /// indicates a bug; it yields an empty vector (asserted in debug).
    pub fn to_rows(&self) -> Vec<Event> {
        match self {
            BatchPayload::Rows(evs) => evs.clone(),
            BatchPayload::Columnar(f) => {
                let mut out = Vec::new();
                let res = f.decode_rows_into(&mut out);
                debug_assert!(res.is_ok(), "columnar payload decode failed: {res:?}");
                out
            }
        }
    }

    /// Like [`BatchPayload::to_rows`] but consumes the payload, avoiding
    /// the clone in the `Rows` case.
    pub fn into_rows(self) -> Vec<Event> {
        match self {
            BatchPayload::Rows(evs) => evs,
            BatchPayload::Columnar(_) => self.to_rows(),
        }
    }

    /// Wire size of the payload alone. For columnar payloads this is the
    /// exact encoded frame length; for rows it is the modeled per-event
    /// footprint (the v1 accounting).
    pub fn approx_bytes(&self) -> usize {
        match self {
            BatchPayload::Rows(evs) => evs.iter().map(Event::approx_bytes).sum(),
            BatchPayload::Columnar(f) => f.bytes.len(),
        }
    }
}

/// A batch of selected/projected events for one query from one host.
///
/// Alongside the events, the batch carries the host's cumulative counters —
/// `matched` is the host's matching-event population `M_i` and `sampled`
/// its sampled count `m_i`, which ScrubCentral feeds into the two-stage
/// sampling estimator (Eqs 1–3). `shed` counts events dropped by load
/// shedding (accuracy knowingly traded for host impact, §2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventBatch {
    /// Owning query.
    pub query_id: QueryId,
    /// Per-(host, query) batch sequence number, assigned by the shipping
    /// side at flush time. ScrubCentral uses it to discard duplicates when
    /// the agent retransmits batches whose ack was lost. Not included in
    /// `approx_bytes` — it rides in the existing fixed header allowance.
    #[serde(default)]
    pub seq: u64,
    /// Which shipping attempt this copy rode: 0 for the first shipment,
    /// `n >= 1` for the n-th retransmission. Set by the reliable shipper
    /// so ScrubCentral can account first-sent vs retransmitted bytes
    /// even when the original copy was lost in flight. Not part of the
    /// dedup key and not counted in `approx_bytes`.
    #[serde(default)]
    pub attempt: u32,
    /// The (single) event type this batch's subscription taps. Counters
    /// are cumulative **per (host, event type)**: a join query has one
    /// subscription per FROM type on each host, each with its own
    /// counters.
    pub type_id: EventTypeId,
    /// Reporting host name.
    pub host: String,
    /// Projected events (values in host-plan projection order), in the
    /// wire format the shipping agent was configured with.
    pub payload: BatchPayload,
    /// Cumulative count of events that matched selection on this host.
    pub matched: u64,
    /// Cumulative count of matched events that passed event sampling and
    /// were shipped (or would have been, absent shedding).
    pub sampled: u64,
    /// Cumulative count of events dropped by load shedding.
    pub shed: u64,
    /// Cumulative count of events dropped by the per-host CPU budget
    /// tracker (`ScrubConfig::enforce_host_budget`): they matched and
    /// passed sampling, but shipping them would have pushed the modeled
    /// host cost past `host_cpu_budget` this second. Like `seq`, rides
    /// the fixed header allowance.
    #[serde(default)]
    pub budget_shed: u64,
    /// Cumulative count of events of this type *seen* by the tap on this
    /// host (the selection operator's input cardinality — `EXPLAIN
    /// ANALYZE` audits the predicate's estimated selectivity against
    /// `matched / seen`). Like `seq`, rides the fixed header allowance
    /// and is not counted in `approx_bytes`.
    #[serde(default)]
    pub seen: u64,
    /// Cumulative bytes this subscription shipped in first-transmission
    /// batches (feeds the sampling/ship operator's byte cost at central).
    /// Not counted in `approx_bytes`.
    #[serde(default)]
    pub bytes: u64,
    /// Lifecycle trace spans piggybacking on this batch (empty unless
    /// `ScrubConfig::trace_sample_rate > 0`). Spans ride the batches the
    /// agent ships anyway — tracing adds no messages to the network.
    #[serde(default)]
    pub spans: Vec<TraceSpan>,
}

impl EventBatch {
    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the batch carries no events.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Approximate wire size of this batch in bytes. For columnar
    /// payloads the event portion is the exact encoded frame length.
    pub fn approx_bytes(&self) -> usize {
        let header = 8 + self.host.len() + 24;
        header + self.payload.approx_bytes() + self.spans.len() * TraceSpan::APPROX_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrub_core::event::RequestId;
    use scrub_core::schema::EventTypeId;
    use scrub_core::value::Value;

    fn empty_batch() -> EventBatch {
        EventBatch {
            query_id: QueryId(1),
            seq: 0,
            attempt: 0,
            type_id: EventTypeId(0),
            host: "h".into(),
            payload: BatchPayload::Rows(vec![]),
            matched: 0,
            sampled: 0,
            shed: 0,
            budget_shed: 0,
            seen: 0,
            bytes: 0,
            spans: vec![],
        }
    }

    #[test]
    fn batch_size_accounts_events() {
        let ev = Event::new(EventTypeId(0), RequestId(1), 0, vec![Value::Long(5)]);
        let empty = empty_batch();
        let one = EventBatch {
            payload: BatchPayload::Rows(vec![ev.clone()]),
            ..empty.clone()
        };
        assert_eq!(one.approx_bytes() - empty.approx_bytes(), ev.approx_bytes());
        let spanned = EventBatch {
            spans: vec![scrub_obs::TraceSpan::new(
                1,
                scrub_obs::SpanKind::Emit,
                0,
                0,
            )],
            ..empty.clone()
        };
        assert_eq!(
            spanned.approx_bytes() - empty.approx_bytes(),
            scrub_obs::TraceSpan::APPROX_BYTES,
            "piggybacked spans must be charged to the wire-size model"
        );
    }

    #[test]
    fn columnar_batch_bytes_are_exact_frame_lengths() {
        let events: Vec<Event> = (0..100)
            .map(|i| {
                Event::new(
                    EventTypeId(0),
                    RequestId(i),
                    i as i64,
                    vec![Value::Long(i as i64 % 7), Value::Str(format!("s{}", i % 3))],
                )
            })
            .collect();
        let payload = BatchPayload::from_events(events.clone(), WireFormat::Columnar);
        let frame_len = match &payload {
            BatchPayload::Columnar(f) => f.bytes.len(),
            _ => unreachable!(),
        };
        let batch = EventBatch {
            payload,
            ..empty_batch()
        };
        assert_eq!(batch.len(), 100);
        assert_eq!(
            batch.approx_bytes(),
            8 + batch.host.len() + 24 + frame_len,
            "columnar byte accounting is the encoded frame, not a model"
        );
        assert_eq!(batch.payload.to_rows(), events);
        assert_eq!(batch.payload.ts_range(), Some((0, 99)));
    }

    #[test]
    fn payload_meta_iteration_agrees_across_formats() {
        let events: Vec<Event> = (0..10)
            .map(|i| Event::new(EventTypeId(0), RequestId(i * 2), 100 - i as i64, vec![]))
            .collect();
        let mut row_meta = Vec::new();
        BatchPayload::from_events(events.clone(), WireFormat::Row)
            .for_each_meta(|r, t| row_meta.push((r, t)));
        let mut col_meta = Vec::new();
        BatchPayload::from_events(events, WireFormat::Columnar)
            .for_each_meta(|r, t| col_meta.push((r, t)));
        assert_eq!(row_meta, col_meta);
    }
}
