//! The host-side Scrub agent: event tap, active-query table, and the only
//! query operators that ever run on an application host — selection,
//! projection and per-event sampling (§4).
//!
//! Design constraints straight from the paper:
//!
//! * **No dynamic instrumentation** (§5/§6): `log()` calls are compiled
//!   into the application; the agent merely toggles per-event-type flags.
//! * **Minimal impact**: an event type with no active query costs one
//!   relaxed atomic load. Everything heavier (predicates, projection)
//!   happens only for active types, and per-query load shedding caps the
//!   damage a hot query can do.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use scrub_core::config::{ScrubConfig, WireFormat};
use scrub_core::error::{ScrubError, ScrubResult};
use scrub_core::event::{Event, FieldSlot, RequestId, ToEvent};
use scrub_core::plan::{HostPlan, QueryId};
use scrub_core::schema::EventTypeId;
use scrub_core::value::Value;
use scrub_obs::trace::{should_trace, trace_threshold, SpanKind, TraceSpan};

use crate::batch::{BatchPayload, EventBatch};
use crate::cost::CostModel;
use crate::stats::AgentStats;

/// Maximum number of event types an agent supports (flags are a fixed
/// bitmask so the disabled fast path stays branch-predictable).
pub const MAX_EVENT_TYPES: usize = 1024;
const MASK_WORDS: usize = MAX_EVENT_TYPES / 64;

/// Host-side Scrub agent. One per application process; shared by all
/// application threads (`&self` API, internally synchronized).
pub struct ScrubAgent {
    host: String,
    config: ScrubConfig,
    /// Per-type active flags packed into atomics: the disabled fast path.
    active_mask: [AtomicU64; MASK_WORDS],
    inner: Mutex<Inner>,
    stats: Arc<AgentStats>,
    /// True while any query is installed (cheap global check).
    any_active: AtomicBool,
    /// Precomputed lifecycle-trace sampler threshold
    /// ([`scrub_obs::trace::trace_threshold`] of
    /// `ScrubConfig::trace_sample_rate`). `0` — the default — disables
    /// tracing, and the already-cold active path pays exactly one integer
    /// compare; the inactive fast path is untouched either way.
    trace_threshold: u64,
    /// Per-host CPU budget in modeled ns per second
    /// (`host_cpu_budget * 1e9`), enforced only when
    /// `ScrubConfig::enforce_host_budget` is set. Priced through the
    /// deterministic [`CostModel`], so enforcement replays exactly: the
    /// same event stream sheds the same events on every run.
    budget_ns_per_sec: f64,
    enforce_budget: bool,
}

#[derive(Default)]
struct Inner {
    /// Subscriptions indexed by event type id.
    subs: Vec<Vec<Subscription>>,
    /// Batches ready to ship.
    outbox: Vec<EventBatch>,
    /// Trace spans currently buffered across all subscriptions, bounded
    /// by `ScrubConfig::trace_span_budget` (the host-impact cap; spans
    /// over budget are dropped and counted, never allocated).
    spans_buffered: usize,
    /// CPU-budget window shared by every subscription on this host:
    /// (second, modeled ns accrued that second). Keyed on the event
    /// timestamp — virtual time — so the tracker is deterministic.
    budget_window: (i64, f64),
}

struct Subscription {
    plan: HostPlan,
    /// xorshift64 state for per-event sampling.
    rng: u64,
    /// `next_u64 <= threshold` keeps the event.
    sample_threshold: u64,
    batch: Vec<Event>,
    /// Lifecycle spans of traced events awaiting the next flush (drained
    /// into `EventBatch::spans`, so tracing adds no extra messages).
    trace: Vec<TraceSpan>,
    /// Cumulative counters (shipped with every batch).
    matched: u64,
    sampled: u64,
    shed: u64,
    /// Events dropped because shipping them would break the per-host
    /// CPU budget (cumulative; a separate loss-ledger provenance from
    /// rate-based load shedding).
    budget_shed: u64,
    /// Events of the subscribed type seen by the tap (pre-selection) —
    /// the selection operator's input cardinality for `EXPLAIN ANALYZE`.
    seen: u64,
    /// Bytes shipped in first-transmission batches.
    bytes: u64,
    /// Shedding window: (second, events this second).
    shed_window: (i64, u64),
    last_flush_ms: i64,
    /// Modeled ns one seen event of this subscription costs before any
    /// ship decision (active tap + predicate); precomputed at install.
    seen_cost_ns: f64,
    /// Modeled ns shipping one selected event costs (projection + batch
    /// bookkeeping + serialization); precomputed at install.
    ship_cost_ns: f64,
}

impl Subscription {
    fn new(plan: HostPlan, seed: u64, cost: &CostModel, format: WireFormat) -> Self {
        let threshold = if plan.event_fraction >= 1.0 {
            u64::MAX
        } else {
            (plan.event_fraction * u64::MAX as f64) as u64
        };
        let seen_cost_ns = cost.seen_event_ns(plan.predicate.is_some());
        // same per-event wire-size approximation the admission pricer
        // uses, per the configured wire format
        let ship_cost_ns = cost.ship_event_cost_ns(
            plan.projection.len(),
            cost.event_wire_bytes(plan.projection.len(), format),
        );
        Subscription {
            plan,
            rng: seed | 1,
            sample_threshold: threshold,
            batch: Vec::new(),
            trace: Vec::new(),
            matched: 0,
            sampled: 0,
            shed: 0,
            budget_shed: 0,
            seen: 0,
            bytes: 0,
            shed_window: (i64::MIN, 0),
            last_flush_ms: 0,
            seen_cost_ns,
            ship_cost_ns,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

impl ScrubAgent {
    /// Create an agent for the named host.
    pub fn new(host: impl Into<String>, config: ScrubConfig) -> Self {
        let threshold = trace_threshold(config.trace_sample_rate);
        let budget_ns_per_sec = config.host_cpu_budget.max(0.0) * 1e9;
        let enforce_budget = config.enforce_host_budget;
        ScrubAgent {
            host: host.into(),
            config,
            active_mask: std::array::from_fn(|_| AtomicU64::new(0)),
            inner: Mutex::new(Inner::default()),
            stats: Arc::new(AgentStats::default()),
            any_active: AtomicBool::new(false),
            trace_threshold: threshold,
            budget_ns_per_sec,
            enforce_budget,
        }
    }

    /// The host name this agent reports as.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> &Arc<AgentStats> {
        &self.stats
    }

    /// The disabled-path check: is any query subscribed to this event type?
    /// One relaxed atomic load — the cost an idle Scrub imposes per event.
    #[inline]
    pub fn is_active(&self, type_id: EventTypeId) -> bool {
        let t = type_id.0 as usize;
        debug_assert!(t < MAX_EVENT_TYPES);
        let word = self.active_mask[t >> 6].load(Ordering::Relaxed);
        word & (1u64 << (t & 63)) != 0
    }

    /// Install a host plan (a query object arriving from the query server).
    pub fn install(&self, plan: HostPlan) -> ScrubResult<()> {
        let t = plan.type_id.0 as usize;
        if t >= MAX_EVENT_TYPES {
            return Err(ScrubError::Lifecycle(format!(
                "event type id {t} exceeds agent capacity {MAX_EVENT_TYPES}"
            )));
        }
        let mut inner = self.inner.lock();
        if inner.subs.len() <= t {
            inner.subs.resize_with(t + 1, Vec::new);
        }
        if inner.subs[t]
            .iter()
            .any(|s| s.plan.query_id == plan.query_id)
        {
            return Err(ScrubError::Lifecycle(format!(
                "query {} already installed for type {}",
                plan.query_id, plan.event_type
            )));
        }
        let seed = plan.query_id.0 ^ fxhash(self.host.as_bytes());
        inner.subs[t].push(Subscription::new(
            plan,
            seed,
            &CostModel::default(),
            self.config.wire_format,
        ));
        self.active_mask[t >> 6].fetch_or(1u64 << (t & 63), Ordering::Relaxed);
        self.any_active.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Remove all plans of a query; returns final batches (flush-on-stop)
    /// so no tail data is lost. The tail includes any size-flushed batches
    /// of this query still sitting in the outbox — leaving them for the
    /// next `take_batches` would ship them after the caller has torn down
    /// the query's delivery state.
    pub fn remove(&self, query_id: QueryId, now_ms: i64) -> Vec<EventBatch> {
        let mut inner = self.inner.lock();
        let mut out = Vec::new();
        let mut kept = Vec::with_capacity(inner.outbox.len());
        for b in inner.outbox.drain(..) {
            if b.query_id == query_id {
                out.push(b);
            } else {
                kept.push(b);
            }
        }
        inner.outbox = kept;
        for t in 0..inner.subs.len() {
            let mut removed = Vec::new();
            let host = &self.host;
            let fmt = self.config.wire_format;
            inner.subs[t].retain_mut(|s| {
                if s.plan.query_id == query_id {
                    removed.push(make_batch(host, s, now_ms, fmt));
                    false
                } else {
                    true
                }
            });
            for b in removed.into_iter().flatten() {
                inner.spans_buffered -= b.spans.len();
                out.push(b);
            }
            if inner.subs[t].is_empty() {
                self.active_mask[t >> 6].fetch_and(!(1u64 << (t & 63)), Ordering::Relaxed);
            }
        }
        let any = inner.subs.iter().any(|v| !v.is_empty());
        self.any_active.store(any, Ordering::Relaxed);
        out
    }

    /// Number of installed (query, type) subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.lock().subs.iter().map(Vec::len).sum()
    }

    /// Ids of the queries currently subscribed on this host (sorted,
    /// deduplicated — a join query appears once).
    pub fn active_query_ids(&self) -> Vec<QueryId> {
        let inner = self.inner.lock();
        let mut ids: Vec<QueryId> = inner
            .subs
            .iter()
            .flatten()
            .map(|s| s.plan.query_id)
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// The application-facing tap. Call at every event site; when the type
    /// is inactive this is one atomic load plus a counter bump.
    ///
    /// `values` are the user fields in schema order; the two system fields
    /// are passed explicitly (§3.1).
    pub fn log(
        &self,
        type_id: EventTypeId,
        request_id: RequestId,
        timestamp_ms: i64,
        values: &[Value],
    ) {
        self.stats.bump(&self.stats.events_seen, 1);
        if !self.is_active(type_id) {
            return;
        }
        self.log_active(type_id, request_id, timestamp_ms, values);
    }

    /// Typed convenience wrapper: builds the value tuple only when the
    /// event type is active, so idle taps do not pay construction costs.
    pub fn log_typed<T: ToEvent>(
        &self,
        type_id: EventTypeId,
        request_id: RequestId,
        timestamp_ms: i64,
        record: impl FnOnce() -> T,
    ) {
        self.stats.bump(&self.stats.events_seen, 1);
        if !self.is_active(type_id) {
            return;
        }
        let values = record().into_values();
        self.log_active(type_id, request_id, timestamp_ms, &values);
    }

    #[cold]
    fn log_active(
        &self,
        type_id: EventTypeId,
        request_id: RequestId,
        timestamp_ms: i64,
        values: &[Value],
    ) {
        self.stats.bump(&self.stats.events_active, 1);
        // Lifecycle tracing: one integer compare when disabled (threshold
        // 0 short-circuits before hashing); one hash of the request id
        // when enabled. Deterministic in the request id, so every host and
        // every partition count traces the same requests.
        let traced = should_trace(request_id.0, self.trace_threshold);
        let mut inner = self.inner.lock();
        let t = type_id.0 as usize;
        let Inner {
            subs,
            outbox,
            spans_buffered,
            budget_window,
        } = &mut *inner;
        let Some(type_subs) = subs.get_mut(t) else {
            return;
        };
        if self.enforce_budget {
            let sec = timestamp_ms.div_euclid(1000);
            if budget_window.0 != sec {
                *budget_window = (sec, 0.0);
            }
        }
        for sub in type_subs.iter_mut() {
            sub.seen += 1;
            // The irreducible per-event cost (active tap + predicate) is
            // incurred whether or not the event ships; charge it to the
            // budget window so enforcement sees the host's true spend.
            if self.enforce_budget {
                budget_window.1 += sub.seen_cost_ns;
            }
            // selection
            if let Some(pred) = &sub.plan.predicate {
                self.stats.bump(&self.stats.predicates_evaluated, 1);
                let arity = sub.plan.arity;
                let matched = pred.eval_bool_by(&|slot| {
                    if slot < arity {
                        values.get(slot).cloned().unwrap_or(Value::Null)
                    } else if slot == arity {
                        Value::Long(request_id.0 as i64)
                    } else {
                        Value::DateTime(timestamp_ms)
                    }
                });
                if !matched {
                    continue;
                }
            }
            sub.matched += 1;
            self.stats.bump(&self.stats.events_matched, 1);
            if traced {
                self.record_span(
                    spans_buffered,
                    &mut sub.trace,
                    TraceSpan::new(request_id.0, SpanKind::Emit, timestamp_ms, 0),
                );
                self.record_span(
                    spans_buffered,
                    &mut sub.trace,
                    TraceSpan::new(request_id.0, SpanKind::TapSelect, timestamp_ms, 0),
                );
            }

            // per-event sampling (accuracy for impact, §3.2)
            if sub.sample_threshold != u64::MAX && sub.next_u64() > sub.sample_threshold {
                self.stats.bump(&self.stats.events_sampled_out, 1);
                if traced {
                    self.record_span(
                        spans_buffered,
                        &mut sub.trace,
                        TraceSpan::new(request_id.0, SpanKind::SampledOut, timestamp_ms, 0),
                    );
                }
                continue;
            }

            // load shedding: per-query events/sec budget
            let sec = timestamp_ms.div_euclid(1000);
            if sub.shed_window.0 != sec {
                sub.shed_window = (sec, 0);
            }
            if sub.shed_window.1 >= self.config.agent_events_per_sec_budget {
                sub.shed += 1;
                self.stats.bump(&self.stats.events_shed, 1);
                if traced {
                    self.record_span(
                        spans_buffered,
                        &mut sub.trace,
                        TraceSpan::new(request_id.0, SpanKind::Shed, timestamp_ms, 0),
                    );
                }
                continue;
            }
            sub.shed_window.1 += 1;

            // per-host CPU budget: shipping this event costs a known,
            // model-priced amount; once the second's budget is spent the
            // event is dropped *after* the sampling decision (so the
            // estimator's m_i/M_i accounting stays intact) and attributed
            // to the `budget_shed` loss provenance.
            if self.enforce_budget {
                if budget_window.1 + sub.ship_cost_ns > self.budget_ns_per_sec {
                    sub.budget_shed += 1;
                    self.stats.bump(&self.stats.events_budget_shed, 1);
                    if traced {
                        self.record_span(
                            spans_buffered,
                            &mut sub.trace,
                            TraceSpan::new(request_id.0, SpanKind::BudgetShed, timestamp_ms, 0),
                        );
                    }
                    continue;
                }
                budget_window.1 += sub.ship_cost_ns;
            }
            sub.sampled += 1;

            // projection
            let mut projected = Vec::with_capacity(sub.plan.projection.len());
            for slot in &sub.plan.projection {
                let v = match slot {
                    FieldSlot::User(i) => values.get(*i).cloned().unwrap_or(Value::Null),
                    FieldSlot::RequestId => Value::Long(request_id.0 as i64),
                    FieldSlot::Timestamp => Value::DateTime(timestamp_ms),
                };
                projected.push(v);
            }
            self.stats
                .bump(&self.stats.fields_projected, projected.len() as u64);
            sub.batch
                .push(Event::new(type_id, request_id, timestamp_ms, projected));
            self.stats.bump(&self.stats.events_shipped, 1);
            if traced {
                self.record_span(
                    spans_buffered,
                    &mut sub.trace,
                    TraceSpan::new(request_id.0, SpanKind::Enqueue, timestamp_ms, 0),
                );
            }

            // size-triggered flush
            if sub.batch.len() >= self.config.agent_batch_events {
                if let Some(b) = make_batch(&self.host, sub, timestamp_ms, self.config.wire_format)
                {
                    *spans_buffered -= b.spans.len();
                    self.stats
                        .bump(&self.stats.bytes_shipped, b.approx_bytes() as u64);
                    self.stats.bump(&self.stats.batches_flushed, 1);
                    outbox.push(b);
                }
            }
        }
    }

    /// Buffer one trace span, honoring the hard per-host span budget:
    /// over budget the span is dropped and counted, never allocated — the
    /// host-impact contract holds no matter the trace rate.
    fn record_span(&self, spans_buffered: &mut usize, buf: &mut Vec<TraceSpan>, span: TraceSpan) {
        if *spans_buffered >= self.config.trace_span_budget {
            self.stats.bump(&self.stats.trace_spans_shed, 1);
            return;
        }
        *spans_buffered += 1;
        self.stats.bump(&self.stats.trace_spans, 1);
        buf.push(span);
    }

    /// Collect batches due for shipment: size-flushed batches plus any
    /// subscription whose flush interval elapsed (called periodically by
    /// the host's network loop).
    pub fn take_batches(&self, now_ms: i64) -> Vec<EventBatch> {
        let mut inner = self.inner.lock();
        let mut out = std::mem::take(&mut inner.outbox);
        let Inner {
            subs,
            spans_buffered,
            ..
        } = &mut *inner;
        for type_subs in subs.iter_mut() {
            for sub in type_subs.iter_mut() {
                let due = now_ms - sub.last_flush_ms >= self.config.agent_flush_interval_ms;
                if due {
                    if let Some(b) = make_batch(&self.host, sub, now_ms, self.config.wire_format) {
                        *spans_buffered -= b.spans.len();
                        self.stats
                            .bump(&self.stats.bytes_shipped, b.approx_bytes() as u64);
                        self.stats.bump(&self.stats.batches_flushed, 1);
                        out.push(b);
                    }
                }
            }
        }
        out
    }
}

/// Build a batch from a subscription's buffered events, encoding the
/// payload in the configured wire format; `None` when there is nothing
/// new to report. Always updates `last_flush_ms`.
fn make_batch(
    host: &str,
    sub: &mut Subscription,
    now_ms: i64,
    format: WireFormat,
) -> Option<EventBatch> {
    sub.last_flush_ms = now_ms;
    if sub.batch.is_empty() && sub.matched == 0 {
        return None;
    }
    // Spans only exist for events that matched selection, so matched > 0
    // whenever `trace` is non-empty — spans always find a batch to ride.
    let mut b = EventBatch {
        seq: 0,
        attempt: 0,
        query_id: sub.plan.query_id,
        type_id: sub.plan.type_id,
        host: host.to_string(),
        payload: BatchPayload::from_events(std::mem::take(&mut sub.batch), format),
        matched: sub.matched,
        sampled: sub.sampled,
        shed: sub.shed,
        budget_shed: sub.budget_shed,
        seen: sub.seen,
        bytes: 0,
        spans: std::mem::take(&mut sub.trace),
    };
    // Charge this batch's wire size to the cumulative shipped-bytes
    // counter it carries (the header fields themselves are not counted).
    // For columnar payloads this is the exact encoded frame length.
    sub.bytes += b.approx_bytes() as u64;
    b.bytes = sub.bytes;
    Some(b)
}

fn fxhash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use scrub_core::plan::compile;
    use scrub_core::ql::parser::parse_query;
    use scrub_core::schema::{EventSchema, FieldDef, FieldType, SchemaRegistry};

    fn registry() -> SchemaRegistry {
        let reg = SchemaRegistry::new();
        reg.register(
            EventSchema::new(
                "bid",
                vec![
                    FieldDef::new("user_id", FieldType::Long),
                    FieldDef::new("bid_price", FieldType::Double),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        reg
    }

    fn plan_for(src: &str, qid: u64) -> HostPlan {
        let spec = parse_query(src).unwrap();
        let cq = compile(&spec, &registry(), &ScrubConfig::default(), QueryId(qid)).unwrap();
        cq.host_plans[0].clone()
    }

    fn agent() -> ScrubAgent {
        ScrubAgent::new("h1", ScrubConfig::default())
    }

    #[test]
    fn inactive_type_costs_nothing_visible() {
        let a = agent();
        assert!(!a.is_active(EventTypeId(0)));
        a.log(EventTypeId(0), RequestId(1), 0, &[Value::Long(1)]);
        let s = a.stats().snapshot();
        assert_eq!(s.events_seen, 1);
        assert_eq!(s.events_active, 0);
        assert!(a.take_batches(10_000).is_empty());
    }

    #[test]
    fn install_activates_and_remove_deactivates() {
        let a = agent();
        let p = plan_for("select COUNT(*) from bid", 1);
        let tid = p.type_id;
        a.install(p).unwrap();
        assert!(a.is_active(tid));
        assert_eq!(a.subscription_count(), 1);
        a.remove(QueryId(1), 0);
        assert!(!a.is_active(tid));
        assert_eq!(a.subscription_count(), 0);
    }

    #[test]
    fn duplicate_install_rejected() {
        let a = agent();
        a.install(plan_for("select COUNT(*) from bid", 1)).unwrap();
        assert!(a.install(plan_for("select COUNT(*) from bid", 1)).is_err());
        // distinct query id on the same type is fine
        a.install(plan_for("select COUNT(*) from bid", 2)).unwrap();
        assert_eq!(a.subscription_count(), 2);
    }

    #[test]
    fn selection_filters_events() {
        let a = agent();
        a.install(plan_for(
            "select bid.user_id from bid where bid.bid_price > 1.0",
            1,
        ))
        .unwrap();
        let tid = EventTypeId(0);
        a.log(tid, RequestId(1), 5, &[Value::Long(7), Value::Double(2.0)]);
        a.log(tid, RequestId(2), 6, &[Value::Long(8), Value::Double(0.5)]);
        let batches = a.take_batches(10_000);
        assert_eq!(batches.len(), 1);
        let b = &batches[0];
        assert_eq!(b.len(), 1);
        assert_eq!(b.matched, 1);
        assert_eq!(b.sampled, 1);
        // projection shipped only user_id
        let evs = b.payload.to_rows();
        assert_eq!(evs[0].values, vec![Value::Long(7)]);
        assert_eq!(evs[0].request_id, RequestId(1));
    }

    #[test]
    fn event_sampling_thins_the_stream() {
        let a = agent();
        a.install(plan_for("select COUNT(*) from bid sample events 10%", 1))
            .unwrap();
        let tid = EventTypeId(0);
        for i in 0..10_000u64 {
            a.log(
                tid,
                RequestId(i),
                i as i64,
                &[Value::Long(i as i64), Value::Double(1.0)],
            );
        }
        let batches = a.take_batches(100_000);
        let shipped: usize = batches.iter().map(|b| b.len()).sum();
        let last = batches.last().unwrap();
        assert_eq!(last.matched, 10_000);
        // ~10% ± generous tolerance
        assert!(
            (700..=1300).contains(&shipped),
            "shipped {shipped} of 10000 at 10%"
        );
        assert_eq!(last.sampled as usize, shipped);
    }

    #[test]
    fn load_shedding_caps_per_second_volume() {
        let mut cfg = ScrubConfig::default();
        cfg.agent_events_per_sec_budget = 100;
        let a = ScrubAgent::new("h1", cfg);
        a.install(plan_for("select COUNT(*) from bid", 1)).unwrap();
        let tid = EventTypeId(0);
        // 500 events within the same second
        for i in 0..500u64 {
            a.log(
                tid,
                RequestId(i),
                500, // same second
                &[Value::Long(1), Value::Double(1.0)],
            );
        }
        // next second: budget resets
        for i in 0..50u64 {
            a.log(
                tid,
                RequestId(i),
                1500,
                &[Value::Long(1), Value::Double(1.0)],
            );
        }
        let batches = a.take_batches(100_000);
        let last = batches.last().unwrap();
        assert_eq!(last.matched, 550);
        assert_eq!(last.sampled, 150); // 100 in first second + 50 in next
        assert_eq!(last.shed, 400);
    }

    #[test]
    fn size_triggered_flush() {
        let mut cfg = ScrubConfig::default();
        cfg.agent_batch_events = 10;
        let a = ScrubAgent::new("h1", cfg);
        a.install(plan_for("select COUNT(*) from bid", 1)).unwrap();
        for i in 0..25u64 {
            a.log(
                EventTypeId(0),
                RequestId(i),
                0,
                &[Value::Long(1), Value::Double(1.0)],
            );
        }
        // two full batches flushed by size without take_batches being called
        let batches = a.take_batches(0);
        assert!(batches.len() >= 2);
        assert_eq!(batches[0].len(), 10);
    }

    #[test]
    fn remove_flushes_tail() {
        let a = agent();
        a.install(plan_for("select COUNT(*) from bid", 1)).unwrap();
        a.log(
            EventTypeId(0),
            RequestId(1),
            0,
            &[Value::Long(1), Value::Double(1.0)],
        );
        let tail = a.remove(QueryId(1), 100);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].len(), 1);
    }

    #[test]
    fn remove_tail_includes_size_flushed_outbox_batches() {
        let mut cfg = ScrubConfig::default();
        cfg.agent_batch_events = 2;
        let a = ScrubAgent::new("h1", cfg);
        a.install(plan_for("select COUNT(*) from bid", 1)).unwrap();
        a.install(plan_for("select COUNT(*) from bid", 2)).unwrap();
        for i in 0..5u64 {
            a.log(
                EventTypeId(0),
                RequestId(i),
                0,
                &[Value::Long(1), Value::Double(1.0)],
            );
        }
        // each query: two full batches in the outbox + one open event
        let tail = a.remove(QueryId(1), 100);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.iter().map(|b| b.len()).sum::<usize>(), 5);
        assert!(tail.iter().all(|b| b.query_id == QueryId(1)));
        // the other query's outbox batches are untouched
        let rest = a.take_batches(10_000);
        assert!(rest.iter().all(|b| b.query_id == QueryId(2)));
        assert_eq!(rest.iter().map(|b| b.len()).sum::<usize>(), 5);
    }

    #[test]
    fn counters_are_cumulative_across_batches() {
        let mut cfg = ScrubConfig::default();
        cfg.agent_batch_events = 5;
        let a = ScrubAgent::new("h1", cfg);
        a.install(plan_for("select COUNT(*) from bid", 1)).unwrap();
        for i in 0..12u64 {
            a.log(
                EventTypeId(0),
                RequestId(i),
                0,
                &[Value::Long(1), Value::Double(1.0)],
            );
        }
        let batches = a.take_batches(10_000);
        let matched: Vec<u64> = batches.iter().map(|b| b.matched).collect();
        assert!(matched.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*matched.last().unwrap(), 12);
    }

    #[test]
    fn typed_logging_skips_construction_when_inactive() {
        use scrub_core::scrub_event;
        scrub_event! {
            pub struct B("bid") {
                user_id: long,
                bid_price: double,
            }
        }
        let a = agent();
        let mut built = 0u32;
        // inactive: closure must not run
        a.log_typed(EventTypeId(0), RequestId(1), 0, || {
            built += 1;
            B {
                user_id: 1,
                bid_price: 1.0,
            }
        });
        assert_eq!(built, 0);
        a.install(plan_for("select COUNT(*) from bid", 1)).unwrap();
        a.log_typed(EventTypeId(0), RequestId(1), 0, || {
            built += 1;
            B {
                user_id: 1,
                bid_price: 1.0,
            }
        });
        assert_eq!(built, 1);
    }

    #[test]
    fn tracing_disabled_by_default_no_spans() {
        let a = agent();
        a.install(plan_for("select COUNT(*) from bid", 1)).unwrap();
        a.log(
            EventTypeId(0),
            RequestId(1),
            0,
            &[Value::Long(1), Value::Double(1.0)],
        );
        let batches = a.take_batches(10_000);
        assert!(batches.iter().all(|b| b.spans.is_empty()));
        let s = a.stats().snapshot();
        assert_eq!(s.trace_spans, 0);
        assert_eq!(s.trace_spans_shed, 0);
    }

    #[test]
    fn tracing_records_lifecycle_spans() {
        let mut cfg = ScrubConfig::default();
        cfg.trace_sample_rate = 1.0;
        let a = ScrubAgent::new("h1", cfg);
        a.install(plan_for("select COUNT(*) from bid", 1)).unwrap();
        a.log(
            EventTypeId(0),
            RequestId(42),
            7,
            &[Value::Long(1), Value::Double(1.0)],
        );
        let batches = a.take_batches(10_000);
        assert_eq!(batches.len(), 1);
        let spans = &batches[0].spans;
        let kinds: Vec<SpanKind> = spans.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SpanKind::Emit, SpanKind::TapSelect, SpanKind::Enqueue]
        );
        assert!(spans.iter().all(|s| s.request_id == 42 && s.at_ms == 7));
        // hosts stay empty on the wire; central backfills from the batch
        assert!(spans.iter().all(|s| s.host.is_empty()));
        assert_eq!(a.stats().snapshot().trace_spans, 3);
        // drained: the next flush carries no stale spans
        assert!(a.take_batches(20_000).iter().all(|b| b.spans.is_empty()));
    }

    #[test]
    fn tracing_records_sampled_out_and_shed_decisions() {
        let mut cfg = ScrubConfig::default();
        cfg.trace_sample_rate = 1.0;
        cfg.agent_events_per_sec_budget = 5;
        let a = ScrubAgent::new("h1", cfg);
        a.install(plan_for("select COUNT(*) from bid sample events 50%", 1))
            .unwrap();
        for i in 0..50u64 {
            a.log(
                EventTypeId(0),
                RequestId(i),
                100, // one second: budget 5 forces shedding
                &[Value::Long(1), Value::Double(1.0)],
            );
        }
        let batches = a.take_batches(10_000);
        let spans: Vec<&TraceSpan> = batches.iter().flat_map(|b| &b.spans).collect();
        assert!(spans.iter().any(|s| s.kind == SpanKind::SampledOut));
        assert!(spans.iter().any(|s| s.kind == SpanKind::Shed));
        assert!(spans.iter().any(|s| s.kind == SpanKind::Enqueue));
    }

    #[test]
    fn trace_span_budget_is_a_hard_cap() {
        let mut cfg = ScrubConfig::default();
        cfg.trace_sample_rate = 1.0;
        cfg.trace_span_budget = 4;
        let a = ScrubAgent::new("h1", cfg);
        a.install(plan_for("select COUNT(*) from bid", 1)).unwrap();
        for i in 0..10u64 {
            a.log(
                EventTypeId(0),
                RequestId(i),
                0,
                &[Value::Long(1), Value::Double(1.0)],
            );
        }
        let batches = a.take_batches(10_000);
        let buffered: usize = batches.iter().map(|b| b.spans.len()).sum();
        assert_eq!(buffered, 4, "budget caps buffered spans");
        let s = a.stats().snapshot();
        assert_eq!(s.trace_spans, 4);
        assert_eq!(s.trace_spans_shed, 10 * 3 - 4);
        // the flush freed the budget: tracing resumes
        a.log(
            EventTypeId(0),
            RequestId(99),
            20_000,
            &[Value::Long(1), Value::Double(1.0)],
        );
        assert_eq!(a.stats().snapshot().trace_spans, 7);
    }

    #[test]
    fn trace_sampling_is_deterministic_across_agents() {
        let mut cfg = ScrubConfig::default();
        cfg.trace_sample_rate = 0.3;
        let run = |host: &str| -> Vec<u64> {
            let a = ScrubAgent::new(host, cfg.clone());
            a.install(plan_for("select COUNT(*) from bid", 1)).unwrap();
            for i in 0..200u64 {
                a.log(
                    EventTypeId(0),
                    RequestId(i),
                    0,
                    &[Value::Long(1), Value::Double(1.0)],
                );
            }
            let mut rids: Vec<u64> = a
                .take_batches(10_000)
                .iter()
                .flat_map(|b| &b.spans)
                .map(|s| s.request_id)
                .collect();
            rids.dedup();
            rids
        };
        let a = run("h1");
        let b = run("completely-different-host");
        assert_eq!(a, b, "trace pick depends only on the request id");
        assert!(!a.is_empty() && a.len() < 200);
    }

    #[test]
    fn two_queries_same_type_both_fed() {
        let a = agent();
        a.install(plan_for("select COUNT(*) from bid", 1)).unwrap();
        a.install(plan_for(
            "select COUNT(*) from bid where bid.bid_price > 5.0",
            2,
        ))
        .unwrap();
        a.log(
            EventTypeId(0),
            RequestId(1),
            0,
            &[Value::Long(1), Value::Double(10.0)],
        );
        a.log(
            EventTypeId(0),
            RequestId(2),
            0,
            &[Value::Long(2), Value::Double(1.0)],
        );
        let batches = a.take_batches(10_000);
        let q1: u64 = batches
            .iter()
            .filter(|b| b.query_id == QueryId(1))
            .map(|b| b.matched)
            .max()
            .unwrap();
        let q2: u64 = batches
            .iter()
            .filter(|b| b.query_id == QueryId(2))
            .map(|b| b.matched)
            .max()
            .unwrap();
        assert_eq!(q1, 2);
        assert_eq!(q2, 1);
    }
}
