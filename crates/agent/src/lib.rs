//! # scrub-agent
//!
//! The host-side Scrub agent (§4–§5): the compiled-in event tap, the
//! active-query table, and the only operators Scrub ever runs on an
//! application host — selection, projection and per-event sampling — plus
//! batching toward ScrubCentral, per-query load shedding, and the counters
//! and cost model behind the host-overhead experiments.

pub mod batch;
pub mod cost;
pub mod reliable;
pub mod stats;
pub mod tap;

pub use batch::{BatchPayload, EventBatch};
pub use cost::CostModel;
pub use reliable::{ReliableShipper, Retransmit, RetryPolicy};
pub use stats::{AgentStats, StatsSnapshot};
pub use tap::{ScrubAgent, MAX_EVENT_TYPES};
