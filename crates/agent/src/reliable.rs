//! Reliable batch delivery from a host agent toward ScrubCentral.
//!
//! The paper's transport between agents and ScrubCentral is a plain
//! message stream; under packet loss or a partition a batch (or its ack)
//! can vanish, silently biasing every byte- and count-based result. This
//! module adds an at-least-once shipping layer on the agent side:
//!
//! * every outgoing batch gets a per-query sequence number,
//! * shipped batches sit in a bounded retransmit buffer until acked,
//! * unacked batches are retransmitted with exponential backoff plus
//!   caller-supplied jitter.
//!
//! ScrubCentral deduplicates on `(host, query, seq)`, so retransmission is
//! safe; the shipper keeps retransmitted bytes accounted separately from
//! first shipments so the paper's byte figures (E11/E14) stay honest.
//!
//! The shipper is transport-agnostic and clock-agnostic: the harness tells
//! it when batches ship, when acks arrive and what time it is. It draws no
//! randomness itself — backoff jitter comes from a closure invoked only
//! when a retransmit actually fires, which keeps fault-free runs byte-
//! identical to runs without the reliability layer.

use std::collections::BTreeMap;

use scrub_core::plan::QueryId;

use crate::batch::EventBatch;

/// Retry/backoff policy for unacked batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First retransmit fires this long after shipment (ms).
    pub base_ms: i64,
    /// Backoff ceiling (ms).
    pub max_ms: i64,
    /// Retransmit buffer capacity in batches; beyond it the oldest pending
    /// batch is evicted (dropped for good) so a long partition cannot run
    /// the host out of memory. Evictions are reported so the agent can
    /// count them.
    pub buffer_cap: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_ms: 2_000,
            max_ms: 30_000,
            buffer_cap: 1024,
        }
    }
}

/// A shipped-but-unacked batch.
#[derive(Debug, Clone)]
struct Pending {
    batch: EventBatch,
    /// Retransmits attempted so far (0 = only the first shipment).
    attempts: u32,
    /// Next retransmit due at this time (ms).
    due_ms: i64,
}

/// A batch the shipper wants retransmitted now.
#[derive(Debug, Clone)]
pub struct Retransmit {
    /// The batch to put back on the wire (seq already assigned).
    pub batch: EventBatch,
    /// Which retransmission this is (1 = first retry).
    pub attempt: u32,
}

/// At-least-once shipping state for one agent (all queries).
#[derive(Debug)]
pub struct ReliableShipper {
    policy: RetryPolicy,
    /// Next sequence number per query.
    next_seq: BTreeMap<QueryId, u64>,
    /// Shipped, unacked batches keyed by (query, seq) — BTreeMap so
    /// iteration (and thus retransmit order) is deterministic.
    pending: BTreeMap<(QueryId, u64), Pending>,
    /// Pending batches evicted because the buffer overflowed.
    evicted: u64,
}

impl ReliableShipper {
    /// Create with the given retry policy.
    pub fn new(policy: RetryPolicy) -> Self {
        ReliableShipper {
            policy,
            next_seq: BTreeMap::new(),
            pending: BTreeMap::new(),
            evicted: 0,
        }
    }

    /// Assign the next sequence number to `batch` and enter it into the
    /// retransmit buffer. Returns the batch to ship (with `seq` set).
    /// If the buffer is full the oldest pending batch is evicted.
    pub fn ship(&mut self, mut batch: EventBatch, now_ms: i64) -> EventBatch {
        let seq = self.next_seq.entry(batch.query_id).or_insert(0);
        batch.seq = *seq;
        batch.attempt = 0;
        *seq += 1;
        if self.pending.len() >= self.policy.buffer_cap {
            if let Some(&key) = self.pending.keys().next() {
                self.pending.remove(&key);
                self.evicted += 1;
            }
        }
        self.pending.insert(
            (batch.query_id, batch.seq),
            Pending {
                batch: batch.clone(),
                attempts: 0,
                due_ms: now_ms + self.policy.base_ms,
            },
        );
        batch
    }

    /// Process an ack from ScrubCentral. Returns true if it cleared a
    /// pending batch (false for duplicate/stale acks).
    pub fn ack(&mut self, query_id: QueryId, seq: u64) -> bool {
        self.pending.remove(&(query_id, seq)).is_some()
    }

    /// Collect the batches whose retransmit timer has expired, advancing
    /// their backoff. `jitter_ms` is called once per fired retransmit with
    /// the new backoff delay and returns extra delay to add (draw it from
    /// the caller's RNG); it is never called when nothing is due, so a
    /// fault-free run consumes no randomness here.
    pub fn due_retransmits(
        &mut self,
        now_ms: i64,
        mut jitter_ms: impl FnMut(i64) -> i64,
    ) -> Vec<Retransmit> {
        let mut out = Vec::new();
        for pending in self.pending.values_mut() {
            if pending.due_ms > now_ms {
                continue;
            }
            pending.attempts += 1;
            let backoff = (self.policy.base_ms << pending.attempts.min(16)).min(self.policy.max_ms);
            pending.due_ms = now_ms + backoff + jitter_ms(backoff);
            let mut batch = pending.batch.clone();
            // mark the copy so central can account retransmitted bytes
            // even when the first copy never arrived
            batch.attempt = pending.attempts;
            out.push(Retransmit {
                batch,
                attempt: pending.attempts,
            });
        }
        out
    }

    /// Whether any batch is awaiting an ack.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Number of batches awaiting an ack.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Number of batches awaiting an ack for one query.
    pub fn pending_for(&self, query_id: QueryId) -> usize {
        self.pending
            .range((query_id, 0)..=(query_id, u64::MAX))
            .count()
    }

    /// Earliest retransmit deadline across pending batches, if any.
    pub fn next_due_ms(&self) -> Option<i64> {
        self.pending.values().map(|p| p.due_ms).min()
    }

    /// Pending batches evicted due to buffer overflow so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Drop all pending state for a query (e.g. the query was stopped and
    /// the drain window has passed).
    pub fn forget_query(&mut self, query_id: QueryId) {
        self.pending.retain(|(q, _), _| *q != query_id);
        self.next_seq.remove(&query_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrub_core::schema::EventTypeId;

    fn batch(q: u64) -> EventBatch {
        EventBatch {
            query_id: QueryId(q),
            seq: 0,
            attempt: 0,
            type_id: EventTypeId(0),
            host: "h".into(),
            payload: crate::batch::BatchPayload::Rows(vec![]),
            matched: 1,
            sampled: 1,
            shed: 0,
            budget_shed: 0,
            seen: 1,
            bytes: 0,
            spans: vec![],
        }
    }

    fn shipper() -> ReliableShipper {
        ReliableShipper::new(RetryPolicy {
            base_ms: 100,
            max_ms: 1_000,
            buffer_cap: 4,
        })
    }

    #[test]
    fn sequence_numbers_are_per_query_and_monotonic() {
        let mut s = shipper();
        assert_eq!(s.ship(batch(1), 0).seq, 0);
        assert_eq!(s.ship(batch(1), 0).seq, 1);
        assert_eq!(s.ship(batch(2), 0).seq, 0);
        assert_eq!(s.ship(batch(1), 0).seq, 2);
        assert_eq!(s.pending_count(), 4);
        assert_eq!(s.pending_for(QueryId(1)), 3);
    }

    #[test]
    fn ack_clears_pending_and_duplicates_are_ignored() {
        let mut s = shipper();
        let b = s.ship(batch(1), 0);
        assert!(s.ack(b.query_id, b.seq));
        assert!(!s.ack(b.query_id, b.seq));
        assert!(!s.has_pending());
        assert!(s.due_retransmits(10_000, |_| 0).is_empty());
    }

    #[test]
    fn retransmits_back_off_exponentially() {
        let mut s = shipper();
        s.ship(batch(1), 0);
        // not due yet
        assert!(s.due_retransmits(99, |_| 0).is_empty());
        // first retry at base; backoff doubles
        let r = s.due_retransmits(100, |_| 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].attempt, 1);
        assert_eq!(s.next_due_ms(), Some(100 + 200));
        let r = s.due_retransmits(300, |_| 0);
        assert_eq!(r[0].attempt, 2);
        assert_eq!(s.next_due_ms(), Some(300 + 400));
        // ceiling binds eventually
        for now in [700, 1_500, 3_000, 10_000] {
            s.due_retransmits(now, |_| 0);
        }
        let due = s.next_due_ms().unwrap();
        assert!(due <= 10_000 + 1_000, "backoff exceeded max: {due}");
    }

    #[test]
    fn jitter_is_only_drawn_when_a_retransmit_fires() {
        let mut s = shipper();
        s.ship(batch(1), 0);
        let mut draws = 0;
        s.due_retransmits(50, |_| {
            draws += 1;
            0
        });
        assert_eq!(draws, 0);
        s.due_retransmits(150, |b| {
            draws += 1;
            b / 2
        });
        assert_eq!(draws, 1);
        // jitter shifted the deadline: base<<1 = 200, jitter 100
        assert_eq!(s.next_due_ms(), Some(150 + 200 + 100));
    }

    #[test]
    fn retransmitted_copies_are_marked_with_their_attempt() {
        let mut s = shipper();
        let first = s.ship(batch(1), 0);
        assert_eq!(first.attempt, 0);
        let r = s.due_retransmits(100, |_| 0);
        assert_eq!(r[0].batch.attempt, 1);
        let r = s.due_retransmits(1_000, |_| 0);
        assert_eq!(r[0].batch.attempt, 2);
        // the buffered original stays attempt-0 only on the wire copies;
        // acking by (query, seq) is unaffected by the marking
        assert!(s.ack(QueryId(1), first.seq));
    }

    #[test]
    fn buffer_overflow_evicts_oldest() {
        let mut s = shipper();
        for _ in 0..6 {
            s.ship(batch(1), 0);
        }
        assert_eq!(s.pending_count(), 4);
        assert_eq!(s.evicted(), 2);
        // seqs 0 and 1 are gone; acking them clears nothing
        assert!(!s.ack(QueryId(1), 0));
        assert!(s.ack(QueryId(1), 2));
    }

    #[test]
    fn forget_query_drops_only_that_query() {
        let mut s = shipper();
        s.ship(batch(1), 0);
        s.ship(batch(2), 0);
        s.forget_query(QueryId(1));
        assert_eq!(s.pending_count(), 1);
        assert_eq!(s.pending_for(QueryId(2)), 1);
        // seq restarts after forget
        assert_eq!(s.ship(batch(1), 0).seq, 0);
    }
}
