//! Host-overhead cost model.
//!
//! The paper reports Scrub's host impact as CPU overhead (≤ 2.5%) and
//! request latency inflation (~1%). In the simulator, the agent's work is
//! converted to CPU time through this model; the per-operation constants
//! default to values calibrated from the `tap` criterion microbenchmark in
//! `crates/bench` (run on the build machine, see EXPERIMENTS.md), so the
//! simulated overhead percentages inherit realistic magnitudes.

use serde::{Deserialize, Serialize};

use crate::stats::StatsSnapshot;

/// Nanosecond costs per agent operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// `log()` call on an event type with no active query (one atomic load).
    pub tap_inactive_ns: f64,
    /// Fixed cost of entering the active path (subscription lookup).
    pub tap_active_ns: f64,
    /// One predicate evaluation.
    pub predicate_ns: f64,
    /// Copying one field value during projection.
    pub project_field_ns: f64,
    /// Per shipped event overhead (batch bookkeeping).
    pub ship_event_ns: f64,
    /// Per shipped byte (serialization + syscall amortized).
    pub ship_byte_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated against the `tap` criterion bench (see EXPERIMENTS.md):
        // disabled tap ~ a few ns, predicate ~ tens of ns, projection a few
        // tens of ns per field.
        CostModel {
            tap_inactive_ns: 2.0,
            tap_active_ns: 30.0,
            predicate_ns: 60.0,
            project_field_ns: 25.0,
            ship_event_ns: 50.0,
            ship_byte_ns: 0.3,
        }
    }
}

impl CostModel {
    /// Total agent CPU time implied by a counter delta, in nanoseconds.
    pub fn cpu_ns(&self, d: &StatsSnapshot) -> f64 {
        let inactive = d.events_seen.saturating_sub(d.events_active) as f64;
        inactive * self.tap_inactive_ns
            + d.events_active as f64 * self.tap_active_ns
            + d.predicates_evaluated as f64 * self.predicate_ns
            + d.fields_projected as f64 * self.project_field_ns
            + d.events_shipped as f64 * self.ship_event_ns
            + d.bytes_shipped as f64 * self.ship_byte_ns
    }

    /// Agent CPU utilization (fraction of one core) over a wall interval.
    pub fn cpu_fraction(&self, d: &StatsSnapshot, interval_ns: f64) -> f64 {
        if interval_ns <= 0.0 {
            return 0.0;
        }
        self.cpu_ns(d) / interval_ns
    }

    /// Model ns attributed to the host *selection* operator of one
    /// subscription: the active-tap entry plus (when the plan carries a
    /// predicate) one evaluation per seen event. Deterministic — `EXPLAIN
    /// ANALYZE` reconstructs host overhead from shipped counters instead
    /// of timing the hot path.
    pub fn selection_ns(&self, seen: u64, has_predicate: bool) -> u64 {
        let mut ns = seen as f64 * self.tap_active_ns;
        if has_predicate {
            ns += seen as f64 * self.predicate_ns;
        }
        ns as u64
    }

    /// Model ns attributed to the host *sampling* operator: the sampling
    /// decision itself is folded into the active-tap cost, so this is the
    /// enqueue/ship cost of the events that survived (per-event batch
    /// bookkeeping plus per-byte serialization).
    pub fn sampling_ns(&self, shipped: u64, bytes: u64) -> u64 {
        (shipped as f64 * self.ship_event_ns + bytes as f64 * self.ship_byte_ns) as u64
    }

    /// Model ns attributed to the host *projection* operator: copying
    /// `fields` field values for each shipped event.
    pub fn projection_ns(&self, shipped: u64, fields: usize) -> u64 {
        (shipped as f64 * fields as f64 * self.project_field_ns) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_events_are_cheap() {
        let m = CostModel::default();
        let d = StatsSnapshot {
            events_seen: 1_000_000,
            ..Default::default()
        };
        // a million inactive taps ~ 2 ms of CPU
        assert!((m.cpu_ns(&d) - 2_000_000.0).abs() < 1.0);
    }

    #[test]
    fn active_path_dominates() {
        let m = CostModel::default();
        let idle = StatsSnapshot {
            events_seen: 1000,
            ..Default::default()
        };
        let busy = StatsSnapshot {
            events_seen: 1000,
            events_active: 1000,
            predicates_evaluated: 1000,
            events_matched: 1000,
            events_shipped: 1000,
            fields_projected: 3000,
            bytes_shipped: 50_000,
            ..Default::default()
        };
        assert!(m.cpu_ns(&busy) > 10.0 * m.cpu_ns(&idle));
    }

    #[test]
    fn fraction_over_interval() {
        let m = CostModel::default();
        let d = StatsSnapshot {
            events_seen: 1_000_000,
            ..Default::default()
        };
        // 2 ms of CPU over a 1 s interval = 0.2%
        let f = m.cpu_fraction(&d, 1e9);
        assert!((f - 0.002).abs() < 1e-9);
        assert_eq!(m.cpu_fraction(&d, 0.0), 0.0);
    }
}
