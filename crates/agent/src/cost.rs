//! Host-overhead cost model.
//!
//! The paper reports Scrub's host impact as CPU overhead (≤ 2.5%) and
//! request latency inflation (~1%). In the simulator, the agent's work is
//! converted to CPU time through this model; the per-operation constants
//! default to values calibrated from the `tap` criterion microbenchmark in
//! `crates/bench` (run on the build machine, see EXPERIMENTS.md), so the
//! simulated overhead percentages inherit realistic magnitudes.

use serde::{Deserialize, Serialize};

use scrub_core::config::WireFormat;

use crate::stats::StatsSnapshot;

/// Nanosecond costs per agent operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// `log()` call on an event type with no active query (one atomic load).
    pub tap_inactive_ns: f64,
    /// Fixed cost of entering the active path (subscription lookup).
    pub tap_active_ns: f64,
    /// One predicate evaluation.
    pub predicate_ns: f64,
    /// Copying one field value during projection.
    pub project_field_ns: f64,
    /// Per shipped event overhead (batch bookkeeping).
    pub ship_event_ns: f64,
    /// Per shipped byte (serialization + syscall amortized).
    pub ship_byte_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated against the `tap` criterion bench (see EXPERIMENTS.md):
        // disabled tap ~ a few ns, predicate ~ tens of ns, projection a few
        // tens of ns per field.
        CostModel {
            tap_inactive_ns: 2.0,
            tap_active_ns: 30.0,
            predicate_ns: 60.0,
            project_field_ns: 25.0,
            ship_event_ns: 50.0,
            ship_byte_ns: 0.3,
        }
    }
}

impl CostModel {
    /// Total agent CPU time implied by a counter delta, in nanoseconds.
    pub fn cpu_ns(&self, d: &StatsSnapshot) -> f64 {
        let inactive = d.events_seen.saturating_sub(d.events_active) as f64;
        inactive * self.tap_inactive_ns
            + d.events_active as f64 * self.tap_active_ns
            + d.predicates_evaluated as f64 * self.predicate_ns
            + d.fields_projected as f64 * self.project_field_ns
            + d.events_shipped as f64 * self.ship_event_ns
            + d.bytes_shipped as f64 * self.ship_byte_ns
    }

    /// Agent CPU utilization (fraction of one core) over a wall interval.
    pub fn cpu_fraction(&self, d: &StatsSnapshot, interval_ns: f64) -> f64 {
        if interval_ns <= 0.0 {
            return 0.0;
        }
        self.cpu_ns(d) / interval_ns
    }

    /// Model ns attributed to the host *selection* operator of one
    /// subscription: the active-tap entry plus (when the plan carries a
    /// predicate) one evaluation per seen event. Deterministic — `EXPLAIN
    /// ANALYZE` reconstructs host overhead from shipped counters instead
    /// of timing the hot path.
    pub fn selection_ns(&self, seen: u64, has_predicate: bool) -> u64 {
        let mut ns = seen as f64 * self.tap_active_ns;
        if has_predicate {
            ns += seen as f64 * self.predicate_ns;
        }
        ns as u64
    }

    /// Model ns attributed to the host *sampling* operator: the sampling
    /// decision itself is folded into the active-tap cost, so this is the
    /// enqueue/ship cost of the events that survived (per-event batch
    /// bookkeeping plus per-byte serialization).
    pub fn sampling_ns(&self, shipped: u64, bytes: u64) -> u64 {
        (shipped as f64 * self.ship_event_ns + bytes as f64 * self.ship_byte_ns) as u64
    }

    /// Model ns attributed to the host *projection* operator: copying
    /// `fields` field values for each shipped event.
    pub fn projection_ns(&self, shipped: u64, fields: usize) -> u64 {
        (shipped as f64 * fields as f64 * self.project_field_ns) as u64
    }

    /// Model ns one *seen* event costs a subscription before any ship
    /// decision: the active-tap entry plus (with a predicate) one
    /// evaluation. This is the irreducible per-event cost — budget
    /// shedding cannot avoid it, and admission control treats it as the
    /// fixed part of a query's price.
    pub fn seen_event_ns(&self, has_predicate: bool) -> f64 {
        self.tap_active_ns
            + if has_predicate {
                self.predicate_ns
            } else {
                0.0
            }
    }

    /// Model ns spent *shipping* one selected event: projecting `fields`
    /// field values, batch bookkeeping and `bytes` of serialization. The
    /// avoidable part of an event's cost — what budget shedding saves.
    pub fn ship_event_cost_ns(&self, fields: usize, bytes: u64) -> f64 {
        fields as f64 * self.project_field_ns
            + self.ship_event_ns
            + bytes as f64 * self.ship_byte_ns
    }

    /// Modeled wire bytes of one shipped event with `fields` projected
    /// values, per wire format. Row frames carry roughly 8 bytes per
    /// value plus the request-id/timestamp slots (mirroring
    /// `Event::approx_bytes`); columnar frames amortise tags across the
    /// column and varint/dictionary-pack values, landing near half that
    /// on the reproduced workloads.
    pub fn event_wire_bytes(&self, fields: usize, format: WireFormat) -> u64 {
        match format {
            WireFormat::Row => 8 * (fields as u64 + 2),
            WireFormat::Columnar => 4 * (fields as u64 + 2),
        }
    }

    /// Estimated per-host cost of one host plan, as a fraction of one
    /// core, at an assumed `events_per_sec` arrival rate of its event
    /// type. Split into `(fixed, variable)`: the irreducible
    /// selection-side cost and the ship-side cost that scales with the
    /// event-sampling fraction. Deterministic — admission control prices
    /// every query through this, so decisions replay exactly.
    pub fn plan_cost_fractions(
        &self,
        plan: &scrub_core::plan::HostPlan,
        events_per_sec: f64,
        format: WireFormat,
    ) -> (f64, f64) {
        let fixed = events_per_sec * self.seen_event_ns(plan.predicate.is_some()) / 1e9;
        let bytes = self.event_wire_bytes(plan.projection.len(), format);
        let shipped_per_sec = events_per_sec
            * plan.est_selectivity.clamp(0.0, 1.0)
            * plan.event_fraction.clamp(0.0, 1.0);
        let variable =
            shipped_per_sec * self.ship_event_cost_ns(plan.projection.len(), bytes) / 1e9;
        (fixed, variable)
    }

    /// Estimated per-host cost of a whole query (sum over its host
    /// plans), as `(fixed, variable)` fractions of one core.
    pub fn query_cost_fractions(
        &self,
        plans: &[scrub_core::plan::HostPlan],
        events_per_sec: f64,
        format: WireFormat,
    ) -> (f64, f64) {
        plans
            .iter()
            .map(|p| self.plan_cost_fractions(p, events_per_sec, format))
            .fold((0.0, 0.0), |(f, v), (pf, pv)| (f + pf, v + pv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_events_are_cheap() {
        let m = CostModel::default();
        let d = StatsSnapshot {
            events_seen: 1_000_000,
            ..Default::default()
        };
        // a million inactive taps ~ 2 ms of CPU
        assert!((m.cpu_ns(&d) - 2_000_000.0).abs() < 1.0);
    }

    #[test]
    fn active_path_dominates() {
        let m = CostModel::default();
        let idle = StatsSnapshot {
            events_seen: 1000,
            ..Default::default()
        };
        let busy = StatsSnapshot {
            events_seen: 1000,
            events_active: 1000,
            predicates_evaluated: 1000,
            events_matched: 1000,
            events_shipped: 1000,
            fields_projected: 3000,
            bytes_shipped: 50_000,
            ..Default::default()
        };
        assert!(m.cpu_ns(&busy) > 10.0 * m.cpu_ns(&idle));
    }

    #[test]
    fn fraction_over_interval() {
        let m = CostModel::default();
        let d = StatsSnapshot {
            events_seen: 1_000_000,
            ..Default::default()
        };
        // 2 ms of CPU over a 1 s interval = 0.2%
        let f = m.cpu_fraction(&d, 1e9);
        assert!((f - 0.002).abs() < 1e-9);
        assert_eq!(m.cpu_fraction(&d, 0.0), 0.0);
    }

    #[test]
    fn admission_pricing_splits_fixed_and_variable() {
        let m = CostModel::default();
        let plan = scrub_core::plan::HostPlan {
            query_id: scrub_core::plan::QueryId(1),
            event_type: "bid".into(),
            type_id: scrub_core::schema::EventTypeId(0),
            arity: 4,
            predicate: None,
            projection: vec![],
            event_fraction: 0.5,
            est_selectivity: 1.0,
        };
        let (fixed, variable) = m.plan_cost_fractions(&plan, 10_000.0, WireFormat::Row);
        // 10k events/s * 30 ns active-tap = 0.3 ms/s = 0.03 %
        assert!((fixed - 10_000.0 * 30.0 / 1e9).abs() < 1e-12);
        // half the events ship at 50 ns + 16 bytes * 0.3 ns
        assert!((variable - 5_000.0 * (50.0 + 16.0 * 0.3) / 1e9).abs() < 1e-12);
        // a predicate adds per-seen cost to the fixed part only
        let with_pred = scrub_core::plan::HostPlan {
            predicate: Some(scrub_core::expr::ResolvedExpr::Literal(
                scrub_core::value::Value::Long(1),
            )),
            ..plan.clone()
        };
        let (fixed2, variable2) = m.plan_cost_fractions(&with_pred, 10_000.0, WireFormat::Row);
        assert!(fixed2 > fixed);
        assert!((variable2 - variable).abs() < 1e-12);
        // columnar frames price fewer bytes per event, so the variable
        // (ship-side) cost strictly shrinks
        let (fixed3, variable3) = m.plan_cost_fractions(&plan, 10_000.0, WireFormat::Columnar);
        assert_eq!(fixed3, fixed);
        assert!(variable3 < variable);
        assert!((variable3 - 5_000.0 * (50.0 + 8.0 * 0.3) / 1e9).abs() < 1e-12);
    }
}
