//! Agent-side counters: the raw material of the host-overhead cost model.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Lock-free counters maintained by the agent's hot path.
#[derive(Debug, Default)]
pub struct AgentStats {
    /// `log()` calls observed (including inactive event types).
    pub events_seen: AtomicU64,
    /// `log()` calls for event types with at least one active query.
    pub events_active: AtomicU64,
    /// Predicate evaluations performed.
    pub predicates_evaluated: AtomicU64,
    /// Events that matched some query's selection.
    pub events_matched: AtomicU64,
    /// Matched events dropped by per-event sampling.
    pub events_sampled_out: AtomicU64,
    /// Matched events dropped by load shedding.
    pub events_shed: AtomicU64,
    /// Matched events dropped by the per-host CPU budget tracker.
    pub events_budget_shed: AtomicU64,
    /// Events projected and enqueued for shipment.
    pub events_shipped: AtomicU64,
    /// Field values copied by projection.
    pub fields_projected: AtomicU64,
    /// Bytes handed to the transport.
    pub bytes_shipped: AtomicU64,
    /// Batches flushed.
    pub batches_flushed: AtomicU64,
    /// Batches retransmitted after an ack timeout.
    pub retransmits: AtomicU64,
    /// Bytes put back on the wire by retransmission (kept separate from
    /// `bytes_shipped` so first-shipment byte figures stay honest).
    pub bytes_retransmitted: AtomicU64,
    /// Batches currently awaiting an ack (gauge, not a counter).
    pub acks_pending: AtomicU64,
    /// Heartbeats sent to the query server.
    pub heartbeats_sent: AtomicU64,
    /// Pending batches evicted because the retransmit buffer overflowed.
    pub retransmit_evictions: AtomicU64,
    /// Lifecycle trace spans recorded (only when tracing is enabled).
    pub trace_spans: AtomicU64,
    /// Trace spans dropped because the per-host span budget was hit.
    pub trace_spans_shed: AtomicU64,
}

impl AgentStats {
    /// Take a consistent-enough snapshot (relaxed loads; counters only grow).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            events_seen: self.events_seen.load(Ordering::Relaxed),
            events_active: self.events_active.load(Ordering::Relaxed),
            predicates_evaluated: self.predicates_evaluated.load(Ordering::Relaxed),
            events_matched: self.events_matched.load(Ordering::Relaxed),
            events_sampled_out: self.events_sampled_out.load(Ordering::Relaxed),
            events_shed: self.events_shed.load(Ordering::Relaxed),
            events_budget_shed: self.events_budget_shed.load(Ordering::Relaxed),
            events_shipped: self.events_shipped.load(Ordering::Relaxed),
            fields_projected: self.fields_projected.load(Ordering::Relaxed),
            bytes_shipped: self.bytes_shipped.load(Ordering::Relaxed),
            batches_flushed: self.batches_flushed.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            bytes_retransmitted: self.bytes_retransmitted.load(Ordering::Relaxed),
            acks_pending: self.acks_pending.load(Ordering::Relaxed),
            heartbeats_sent: self.heartbeats_sent.load(Ordering::Relaxed),
            retransmit_evictions: self.retransmit_evictions.load(Ordering::Relaxed),
            trace_spans: self.trace_spans.load(Ordering::Relaxed),
            trace_spans_shed: self.trace_spans_shed.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Plain-old-data snapshot of [`AgentStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    pub events_seen: u64,
    pub events_active: u64,
    pub predicates_evaluated: u64,
    pub events_matched: u64,
    pub events_sampled_out: u64,
    pub events_shed: u64,
    #[serde(default)]
    pub events_budget_shed: u64,
    pub events_shipped: u64,
    pub fields_projected: u64,
    pub bytes_shipped: u64,
    pub batches_flushed: u64,
    #[serde(default)]
    pub retransmits: u64,
    #[serde(default)]
    pub bytes_retransmitted: u64,
    #[serde(default)]
    pub acks_pending: u64,
    #[serde(default)]
    pub heartbeats_sent: u64,
    #[serde(default)]
    pub retransmit_evictions: u64,
    #[serde(default)]
    pub trace_spans: u64,
    #[serde(default)]
    pub trace_spans_shed: u64,
}

impl StatsSnapshot {
    /// Render into the shared [`scrub_obs::MetricsSnapshot`] format so
    /// agent counters merge with server/central registries into one
    /// fleet-wide view. `acks_pending` is the only gauge; everything else
    /// is a monotone counter.
    pub fn to_metrics(&self, at_ms: i64) -> scrub_obs::MetricsSnapshot {
        let mut m = scrub_obs::MetricsSnapshot {
            at_ms,
            ..Default::default()
        };
        let counters = [
            ("agent.events_seen", self.events_seen),
            ("agent.events_active", self.events_active),
            ("agent.predicates_evaluated", self.predicates_evaluated),
            ("agent.events_matched", self.events_matched),
            ("agent.events_sampled_out", self.events_sampled_out),
            ("agent.events_shed", self.events_shed),
            ("agent.events_budget_shed", self.events_budget_shed),
            ("agent.events_shipped", self.events_shipped),
            ("agent.fields_projected", self.fields_projected),
            ("agent.bytes_shipped", self.bytes_shipped),
            ("agent.batches_flushed", self.batches_flushed),
            ("agent.retransmits", self.retransmits),
            ("agent.bytes_retransmitted", self.bytes_retransmitted),
            ("agent.heartbeats_sent", self.heartbeats_sent),
            ("agent.retransmit_evictions", self.retransmit_evictions),
            ("agent.trace_spans", self.trace_spans),
            ("agent.trace_spans_shed", self.trace_spans_shed),
        ];
        for (name, v) in counters {
            m.counters.insert(name.to_string(), v);
        }
        m.gauges
            .insert("agent.acks_pending".to_string(), self.acks_pending as i64);
        m
    }

    /// Difference of two snapshots (self - earlier).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            events_seen: self.events_seen - earlier.events_seen,
            events_active: self.events_active - earlier.events_active,
            predicates_evaluated: self.predicates_evaluated - earlier.predicates_evaluated,
            events_matched: self.events_matched - earlier.events_matched,
            events_sampled_out: self.events_sampled_out - earlier.events_sampled_out,
            events_shed: self.events_shed - earlier.events_shed,
            events_budget_shed: self.events_budget_shed - earlier.events_budget_shed,
            events_shipped: self.events_shipped - earlier.events_shipped,
            fields_projected: self.fields_projected - earlier.fields_projected,
            bytes_shipped: self.bytes_shipped - earlier.bytes_shipped,
            batches_flushed: self.batches_flushed - earlier.batches_flushed,
            retransmits: self.retransmits - earlier.retransmits,
            bytes_retransmitted: self.bytes_retransmitted - earlier.bytes_retransmitted,
            // a gauge, not a monotone counter: report the later value
            acks_pending: self.acks_pending,
            heartbeats_sent: self.heartbeats_sent - earlier.heartbeats_sent,
            retransmit_evictions: self.retransmit_evictions - earlier.retransmit_evictions,
            trace_spans: self.trace_spans - earlier.trace_spans,
            trace_spans_shed: self.trace_spans_shed - earlier.trace_spans_shed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_diff() {
        let s = AgentStats::default();
        s.bump(&s.events_seen, 10);
        s.bump(&s.events_matched, 4);
        let a = s.snapshot();
        s.bump(&s.events_seen, 5);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.events_seen, 5);
        assert_eq!(d.events_matched, 0);
        assert_eq!(b.events_seen, 15);
    }
}
