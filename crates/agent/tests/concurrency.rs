//! Thread-safety stress tests: the agent is shared by all application
//! threads in a real deployment (`&self` API). These tests hammer the tap
//! from multiple OS threads while queries install/remove concurrently, and
//! verify the counters stay exactly consistent.

#![allow(clippy::field_reassign_with_default)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use scrub_agent::ScrubAgent;
use scrub_core::config::ScrubConfig;
use scrub_core::event::RequestId;
use scrub_core::plan::{compile, QueryId};
use scrub_core::ql::parser::parse_query;
use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};
use scrub_core::value::Value;

fn registry() -> SchemaRegistry {
    let reg = SchemaRegistry::new();
    reg.register(
        EventSchema::new(
            "bid",
            vec![
                FieldDef::new("user_id", FieldType::Long),
                FieldDef::new("price", FieldType::Double),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    reg
}

fn plan(src: &str, qid: u64) -> scrub_core::plan::HostPlan {
    compile(
        &parse_query(src).unwrap(),
        &registry(),
        &ScrubConfig::default(),
        QueryId(qid),
    )
    .unwrap()
    .host_plans[0]
        .clone()
}

#[test]
fn concurrent_taps_count_exactly() {
    let mut config = ScrubConfig::default();
    config.agent_events_per_sec_budget = u64::MAX;
    let agent = Arc::new(ScrubAgent::new("mt-host", config));
    agent
        .install(plan(
            "select bid.user_id, COUNT(*) from bid group by bid.user_id",
            1,
        ))
        .unwrap();

    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 20_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let agent = Arc::clone(&agent);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    agent.log(
                        EventTypeId(0),
                        RequestId(t * PER_THREAD + i),
                        (i / 100) as i64,
                        &[Value::Long((i % 50) as i64), Value::Double(1.0)],
                    );
                }
            });
        }
    });

    let snap = agent.stats().snapshot();
    assert_eq!(snap.events_seen, THREADS * PER_THREAD);
    assert_eq!(snap.events_matched, THREADS * PER_THREAD);
    // drain everything and count shipped events
    let batches = agent.take_batches(1_000_000);
    let shipped: u64 = batches.iter().map(|b| b.len() as u64).sum();
    assert_eq!(shipped, THREADS * PER_THREAD);
    let final_counters = batches.iter().map(|b| b.matched).max().unwrap();
    assert_eq!(final_counters, THREADS * PER_THREAD);
}

#[test]
fn install_remove_races_never_lose_or_corrupt() {
    let agent = Arc::new(ScrubAgent::new("mt-host", ScrubConfig::default()));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // logger thread: hammers the tap the whole time
        {
            let agent = Arc::clone(&agent);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    agent.log(
                        EventTypeId(0),
                        RequestId(i),
                        (i / 1000) as i64,
                        &[Value::Long((i % 10) as i64), Value::Double(0.5)],
                    );
                    i += 1;
                }
            });
        }
        // churn thread: installs and removes queries repeatedly
        {
            let agent = Arc::clone(&agent);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                for round in 0..200u64 {
                    let qid = 100 + round;
                    agent
                        .install(plan("select COUNT(*) from bid where bid.price > 0.1", qid))
                        .unwrap();
                    // each removal flushes a consistent tail batch
                    let tail = agent.remove(QueryId(qid), round as i64);
                    for b in &tail {
                        assert!(b.sampled <= b.matched);
                        assert_eq!(b.len() as u64, b.sampled - b.shed.min(b.sampled));
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });

    assert_eq!(agent.subscription_count(), 0);
    // no subscriptions remain; the tap is back to the disabled fast path
    assert!(!agent.is_active(EventTypeId(0)));
}

#[test]
fn concurrent_sampling_is_close_to_nominal() {
    let agent = Arc::new(ScrubAgent::new("mt-host", ScrubConfig::default()));
    agent
        .install(plan("select COUNT(*) from bid sample events 20%", 1))
        .unwrap();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let agent = Arc::clone(&agent);
            s.spawn(move || {
                for i in 0..25_000u64 {
                    agent.log(
                        EventTypeId(0),
                        RequestId(t << 32 | i),
                        0,
                        &[Value::Long(1), Value::Double(1.0)],
                    );
                }
            });
        }
    });
    let snap = agent.stats().snapshot();
    assert_eq!(snap.events_matched, 100_000);
    let kept = snap.events_matched - snap.events_sampled_out;
    let frac = kept as f64 / 100_000.0;
    assert!((0.18..=0.22).contains(&frac), "sampled fraction {frac}");
}
