//! Student-t distribution quantiles.
//!
//! The error bound of the two-stage sampling estimator (paper Equation 2)
//! is `ε = t_{n-1, 1-α/2} · sqrt(V̂ar(τ̂))`. This module computes the
//! required t quantiles from the regularized incomplete beta function
//! (continued-fraction evaluation + bisection); it is nowhere near a hot
//! path, so robustness beats speed.

/// Natural log of the gamma function (Lanczos approximation).
fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9)
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // reflection formula
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction of Lentz's method.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // use the symmetry that converges fastest
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - ln_gamma_beta_complement(a, b, x)
    }
}

fn ln_gamma_beta_complement(a: f64, b: f64, x: f64) -> f64 {
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    ln_front.exp() * beta_cf(b, a, 1.0 - x) / b
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // even step
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // odd step
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the Student-t distribution with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    if df <= 0.0 {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    let p = 0.5 * betai(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Quantile `t` such that `P(T <= t) = p`, for `p` in (0, 1), via
/// bisection. Accurate to ~1e-10.
pub fn t_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability out of range");
    assert!(df > 0.0, "degrees of freedom must be positive");
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }
    let (mut lo, mut hi) = if p > 0.5 { (0.0, 1e6) } else { (-1e6, 0.0) };
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Two-sided critical value `t_{df, 1 - α/2}` used in Equation 2.
pub fn t_critical(df: f64, alpha: f64) -> f64 {
    t_quantile(1.0 - alpha / 2.0, df)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_critical_values() {
        // classic t-table entries, 95% two-sided
        let cases = [
            (1.0, 12.706),
            (2.0, 4.303),
            (5.0, 2.571),
            (10.0, 2.228),
            (30.0, 2.042),
            (100.0, 1.984),
        ];
        for (df, expected) in cases {
            let got = t_critical(df, 0.05);
            assert!(
                (got - expected).abs() < 2e-3,
                "df={df}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn converges_to_normal_quantile() {
        // for large df, t_{0.975} -> z_{0.975} = 1.959964
        let got = t_critical(100_000.0, 0.05);
        assert!((got - 1.95996).abs() < 1e-3, "got {got}");
    }

    #[test]
    fn cdf_is_symmetric_and_monotone() {
        for df in [1.0, 3.0, 17.0] {
            assert!((t_cdf(0.0, df) - 0.5).abs() < 1e-12);
            assert!((t_cdf(1.5, df) + t_cdf(-1.5, df) - 1.0).abs() < 1e-10);
            assert!(t_cdf(1.0, df) < t_cdf(2.0, df));
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for df in [2.0, 9.0, 25.0] {
            for p in [0.6, 0.9, 0.975, 0.995] {
                let t = t_quantile(p, df);
                assert!((t_cdf(t, df) - p).abs() < 1e-9, "df={df} p={p}");
            }
        }
    }

    #[test]
    fn lower_tail_quantiles_negative() {
        assert!(t_quantile(0.025, 10.0) < 0.0);
        assert!((t_quantile(0.025, 10.0) + t_quantile(0.975, 10.0)).abs() < 1e-9);
    }

    #[test]
    fn betai_bounds() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
        // I_{0.5}(0.5, 0.5) = 0.5 by symmetry
        assert!((betai(0.5, 0.5, 0.5) - 0.5).abs() < 1e-10);
    }

    #[test]
    #[should_panic]
    fn bad_probability_panics() {
        let _ = t_quantile(1.5, 3.0);
    }
}
