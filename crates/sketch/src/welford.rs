//! Welford's online algorithm for streaming mean and variance.
//!
//! The two-stage sampling estimator (paper Equations 1–3) needs per-host
//! sample variances `s_i^2` and the between-host variance `s_u^2`; both are
//! maintained with this numerically-stable single-pass structure.

use serde::{Deserialize, Serialize};

/// Streaming count / mean / variance accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.n as f64
    }

    /// Unbiased sample variance `s^2` (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (0 when empty).
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_var(xs: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..100)
            .map(|i| ((i * 37) % 19) as f64 * 0.5 - 3.0)
            .collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - naive_var(&xs)).abs() < 1e-9);
        assert_eq!(w.count(), 100);
        assert!((w.sum() - xs.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn small_counts() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.add(5.0);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.variance(), 0.0); // undefined -> 0
        w.add(7.0);
        assert_eq!(w.mean(), 6.0);
        assert!((w.variance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..20] {
            a.add(x);
        }
        for &x in &xs[20..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Welford::new();
        a.add(1.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn numerical_stability_large_offset() {
        // classic catastrophic-cancellation case for naive sum-of-squares
        let mut w = Welford::new();
        for x in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            w.add(x);
        }
        assert!((w.variance() - 30.0).abs() < 1e-6, "var={}", w.variance());
    }
}
