//! The two-stage (cluster) sampling estimator of §3.2, Equations 1–3.
//!
//! Scrub samples in two stages: first a random subset of `n` out of `N`
//! matching hosts (host sampling), then on each selected host `i` a random
//! subset of `m_i` out of its `M_i` matching events (event sampling). For a
//! SUM-like aggregate over event values `v_ij`, the paper estimates the
//! population total and an error bound as:
//!
//! ```text
//! τ̂ = (N/n) Σ_i (M_i/m_i) Σ_j v_ij                      (Eq. 1)
//! ε = t_{n-1, 1-α/2} · sqrt(V̂ar(τ̂))                     (Eq. 2)
//! V̂ar(τ̂) = N(N-n) s_u²/n + (N/n) Σ_i M_i(M_i-m_i) s_i²/m_i   (Eq. 3)
//! ```
//!
//! where `s_i²` is the variance of the sampled values on host `i` and
//! `s_u²` is the between-host variance of the estimated host totals.

use serde::{Deserialize, Serialize};

use crate::tdist::t_critical;
use crate::welford::Welford;

/// Per-host sampling summary shipped from an agent to ScrubCentral: the
/// host's matching-event population `M_i` and the moments of the values it
/// actually sampled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct HostSample {
    /// `M_i`: events on this host that matched selection (before event
    /// sampling).
    pub population: u64,
    /// Moments of the `m_i` sampled values `v_ij`.
    pub stats: Welford,
}

impl HostSample {
    /// Empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that an event matched selection (contributes to `M_i`).
    pub fn saw_match(&mut self) {
        self.population += 1;
    }

    /// Record a sampled value `v_ij` (contributes to `m_i` and the moments).
    pub fn sampled(&mut self, v: f64) {
        self.stats.add(v);
    }

    /// `m_i`: number of sampled events.
    pub fn sampled_count(&self) -> u64 {
        self.stats.count()
    }

    /// This host's estimated total `(M_i/m_i) Σ_j v_ij`.
    pub fn estimated_total(&self) -> f64 {
        let m = self.stats.count();
        if m == 0 {
            return 0.0;
        }
        (self.population as f64 / m as f64) * self.stats.sum()
    }
}

/// Result of the two-stage estimation: the point estimate and its
/// confidence bound (`estimate ± error_bound` with probability
/// `confidence`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoStageEstimate {
    /// τ̂, the estimated population total.
    pub estimate: f64,
    /// ε, the half-width of the confidence interval (Eq. 2). Zero when the
    /// sample is exhaustive; infinite when `n < 2` (no between-host
    /// variance estimate is possible).
    pub error_bound: f64,
    /// V̂ar(τ̂) (Eq. 3).
    pub variance: f64,
    /// Confidence level used for the bound (e.g. 0.95).
    pub confidence: f64,
}

/// Estimate a population total from two-stage samples (Eqs. 1–3).
///
/// * `total_hosts` — `N`, the number of hosts matching the target clause.
/// * `hosts` — one [`HostSample`] per *selected* host (`n = hosts.len()`).
/// * `confidence` — e.g. `0.95` for a 95% bound.
pub fn estimate_total(
    total_hosts: usize,
    hosts: &[HostSample],
    confidence: f64,
) -> TwoStageEstimate {
    let n = hosts.len();
    let nn = total_hosts as f64;
    if n == 0 || total_hosts == 0 {
        return TwoStageEstimate {
            estimate: 0.0,
            error_bound: f64::INFINITY,
            variance: f64::INFINITY,
            confidence,
        };
    }
    let nf = n as f64;

    // Eq. 1: τ̂ = (N/n) Σ_i τ̂_i
    let host_totals: Vec<f64> = hosts.iter().map(HostSample::estimated_total).collect();
    let sum_totals: f64 = host_totals.iter().sum();
    let estimate = nn / nf * sum_totals;

    // Between-host variance s_u² of the τ̂_i.
    let mut between = Welford::new();
    for &t in &host_totals {
        between.add(t);
    }
    let s_u2 = between.variance();

    // Eq. 3.
    let mut within_term = 0.0;
    for h in hosts {
        let mi = h.sampled_count();
        let big_m = h.population as f64;
        if mi == 0 {
            continue;
        }
        let s_i2 = h.stats.variance();
        within_term += big_m * (big_m - mi as f64) * s_i2 / mi as f64;
    }
    let variance = nn * (nn - nf) * s_u2 / nf + nn / nf * within_term;

    // Exhaustive sample (n == N and every m_i == M_i): exact answer.
    let exhaustive = n == total_hosts && hosts.iter().all(|h| h.sampled_count() == h.population);
    if exhaustive {
        return TwoStageEstimate {
            estimate,
            error_bound: 0.0,
            variance: 0.0,
            confidence,
        };
    }

    // Eq. 2 needs t_{n-1}; with n < 2 there is no between-host df.
    let error_bound = if n < 2 {
        f64::INFINITY
    } else {
        t_critical((n - 1) as f64, 1.0 - confidence) * variance.max(0.0).sqrt()
    };

    TwoStageEstimate {
        estimate,
        error_bound,
        variance: variance.max(0.0),
        confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Build a synthetic population: `n_hosts` hosts, each with `per_host`
    /// values drawn uniformly, then sample hosts/events at given rates.
    fn run_trial(
        rng: &mut StdRng,
        n_hosts: usize,
        per_host: usize,
        host_rate: f64,
        event_rate: f64,
    ) -> (f64, TwoStageEstimate) {
        let mut truth = 0.0;
        let mut samples = Vec::new();
        for _ in 0..n_hosts {
            let selected = rng.gen_bool(host_rate);
            let mut hs = HostSample::new();
            for _ in 0..per_host {
                let v: f64 = rng.gen_range(0.0..10.0);
                truth += v;
                if selected {
                    hs.saw_match();
                    if rng.gen_bool(event_rate) {
                        hs.sampled(v);
                    }
                }
            }
            if selected {
                samples.push(hs);
            }
        }
        (truth, estimate_total(n_hosts, &samples, 0.95))
    }

    #[test]
    fn exhaustive_sample_is_exact() {
        let mut hosts = Vec::new();
        let mut truth = 0.0;
        for i in 0..10 {
            let mut h = HostSample::new();
            for j in 0..20 {
                let v = (i * 20 + j) as f64;
                h.saw_match();
                h.sampled(v);
                truth += v;
            }
            hosts.push(h);
        }
        let est = estimate_total(10, &hosts, 0.95);
        assert!((est.estimate - truth).abs() < 1e-9);
        assert_eq!(est.error_bound, 0.0);
    }

    #[test]
    fn estimate_is_unbiased_ish() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut rel_errors = Vec::new();
        for _ in 0..30 {
            let (truth, est) = run_trial(&mut rng, 50, 200, 0.3, 0.2);
            rel_errors.push((est.estimate - truth) / truth);
        }
        let mean_rel: f64 = rel_errors.iter().sum::<f64>() / rel_errors.len() as f64;
        assert!(mean_rel.abs() < 0.05, "mean relative error {mean_rel}");
    }

    #[test]
    fn bound_covers_truth_at_nominal_rate() {
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 200;
        let mut covered = 0;
        for _ in 0..trials {
            let (truth, est) = run_trial(&mut rng, 40, 100, 0.4, 0.25);
            if (est.estimate - truth).abs() <= est.error_bound {
                covered += 1;
            }
        }
        let coverage = covered as f64 / trials as f64;
        // 95% nominal; conservative formulas often over-cover. Accept ≥ 88%.
        assert!(coverage >= 0.88, "coverage {coverage}");
    }

    #[test]
    fn tighter_bound_with_more_sampling() {
        let mut rng = StdRng::seed_from_u64(3);
        let (_, low) = run_trial(&mut rng, 50, 200, 0.2, 0.1);
        let mut rng = StdRng::seed_from_u64(3);
        let (_, high) = run_trial(&mut rng, 50, 200, 0.8, 0.8);
        assert!(
            high.error_bound < low.error_bound,
            "high-rate bound {} should be < low-rate bound {}",
            high.error_bound,
            low.error_bound
        );
    }

    #[test]
    fn degenerate_inputs() {
        let est = estimate_total(0, &[], 0.95);
        assert_eq!(est.estimate, 0.0);
        assert!(est.error_bound.is_infinite());

        // single host: no between-host df
        let mut h = HostSample::new();
        h.saw_match();
        h.sampled(5.0);
        h.saw_match(); // one unsampled match
        let est = estimate_total(10, &[h], 0.95);
        assert!(est.error_bound.is_infinite());
        assert!((est.estimate - 10.0 * 2.0 * 5.0 / 1.0).abs() < 1e-9);
    }

    #[test]
    fn count_estimation_via_unit_values() {
        // COUNT(*) = SUM(1): sample half the hosts, all values 1
        let mut hosts = Vec::new();
        for _ in 0..5 {
            let mut h = HostSample::new();
            for _ in 0..100 {
                h.saw_match();
                h.sampled(1.0);
            }
            hosts.push(h);
        }
        let est = estimate_total(10, &hosts, 0.95);
        assert!((est.estimate - 1000.0).abs() < 1e-9);
        // equal cluster totals -> zero between-host variance -> zero bound
        assert!(est.error_bound < 1e-9);
    }
}
