//! # scrub-sketch
//!
//! Probabilistic substrate for Scrub (EuroSys '18): the sketches behind the
//! approximate aggregations of §3.2 — TOP-K via the SpaceSaving stream
//! summary and COUNT_DISTINCT via HyperLogLog — plus the two-stage
//! sampling estimator (Equations 1–3) that turns host/event sampling rates
//! into point estimates with confidence bounds, and the numerical support
//! they need (streaming moments, Student-t quantiles).

pub mod estimator;
pub mod hyperloglog;
pub mod reservoir;
pub mod spacesaving;
pub mod tdist;
pub mod welford;

pub use estimator::{estimate_total, HostSample, TwoStageEstimate};
pub use hyperloglog::{hash64, HyperLogLog};
pub use reservoir::Reservoir;
pub use spacesaving::{Counter, SpaceSaving};
pub use tdist::{t_cdf, t_critical, t_quantile};
pub use welford::Welford;
