//! SpaceSaving stream summary for approximate TOP-K / heavy hitters
//! (Metwally, Agrawal, El Abbadi — "Efficient Computation of Frequent and
//! Top-k Elements in Data Streams", ICDT 2005). ScrubQL's `TOP(k, expr)`
//! aggregate is backed by this structure (§3.2).
//!
//! The summary keeps `capacity` counters. When a new item arrives and all
//! counters are taken, the minimum counter is evicted and inherits its
//! count as the new item's error bound. Guarantees: any item with true
//! frequency `> N / capacity` is present, and each reported count
//! overestimates the true count by at most the recorded `error`.

use std::collections::HashMap;
use std::hash::Hash;

use serde::{Deserialize, Serialize};

/// One monitored counter in the summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter<T> {
    /// The monitored item.
    pub item: T,
    /// Estimated count (upper bound on the true count).
    pub count: u64,
    /// Maximum overestimation: `count - error <= true <= count`.
    pub error: u64,
}

/// SpaceSaving summary over items of type `T`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpaceSaving<T: Eq + Hash + Clone> {
    capacity: usize,
    /// item -> (count, error)
    counters: HashMap<T, (u64, u64)>,
    /// Total items observed.
    total: u64,
}

impl<T: Eq + Hash + Clone> SpaceSaving<T> {
    /// Create a summary with room for `capacity` counters. For a TOP-K
    /// query, a capacity of a few multiples of `k` gives good precision.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SpaceSaving capacity must be positive");
        SpaceSaving {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            total: 0,
        }
    }

    /// Observe one occurrence of `item`.
    pub fn offer(&mut self, item: T) {
        self.offer_n(item, 1);
    }

    /// Observe `n` occurrences of `item` at once.
    pub fn offer_n(&mut self, item: T, n: u64) {
        self.total += n;
        if let Some((c, _)) = self.counters.get_mut(&item) {
            *c += n;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item, (n, 0));
            return;
        }
        // evict the minimum counter
        let (min_item, min_count) = self
            .counters
            .iter()
            .min_by_key(|(_, (c, _))| *c)
            .map(|(k, (c, _))| (k.clone(), *c))
            .expect("counters non-empty at capacity");
        self.counters.remove(&min_item);
        self.counters.insert(item, (min_count + n, min_count));
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of live counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True if nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The top `k` items by estimated count, descending. Ties broken by
    /// error (lower first) for determinism when `T: Ord` is unavailable.
    pub fn top_k(&self, k: usize) -> Vec<Counter<T>> {
        let mut all: Vec<Counter<T>> = self
            .counters
            .iter()
            .map(|(item, (count, error))| Counter {
                item: item.clone(),
                count: *count,
                error: *error,
            })
            .collect();
        all.sort_by(|a, b| b.count.cmp(&a.count).then(a.error.cmp(&b.error)));
        all.truncate(k);
        all
    }

    /// Estimated count of `item` (0 if not monitored).
    pub fn estimate(&self, item: &T) -> u64 {
        self.counters.get(item).map(|(c, _)| *c).unwrap_or(0)
    }

    /// Merge another summary into this one (used by partitioned central
    /// execution). The merged summary keeps this summary's capacity;
    /// guarantees degrade gracefully (errors add).
    pub fn merge(&mut self, other: &SpaceSaving<T>) {
        // Collect merged counts, then rebuild keeping the largest.
        let mut merged: HashMap<T, (u64, u64)> = self.counters.clone();
        for (item, (c, e)) in &other.counters {
            let entry = merged.entry(item.clone()).or_insert((0, 0));
            entry.0 += c;
            entry.1 += e;
        }
        if merged.len() > self.capacity {
            let mut all: Vec<(T, (u64, u64))> = merged.into_iter().collect();
            all.sort_by_key(|(_, (c, _))| std::cmp::Reverse(*c));
            all.truncate(self.capacity);
            merged = all.into_iter().collect();
        }
        self.counters = merged;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(10);
        for _ in 0..5 {
            ss.offer("a");
        }
        for _ in 0..3 {
            ss.offer("b");
        }
        ss.offer("c");
        let top = ss.top_k(3);
        assert_eq!(top[0].item, "a");
        assert_eq!(top[0].count, 5);
        assert_eq!(top[0].error, 0);
        assert_eq!(top[1].item, "b");
        assert_eq!(top[2].item, "c");
        assert_eq!(ss.total(), 9);
    }

    #[test]
    fn heavy_hitters_survive_eviction() {
        let mut ss = SpaceSaving::new(8);
        // heavy: 0 and 1, appearing far more than n/capacity
        for i in 0..1000u64 {
            ss.offer(i % 50); // uniform noise over 50 items
        }
        for _ in 0..500 {
            ss.offer(0u64);
            ss.offer(1u64);
        }
        let top: Vec<u64> = ss.top_k(2).into_iter().map(|c| c.item).collect();
        assert!(top.contains(&0));
        assert!(top.contains(&1));
    }

    #[test]
    fn count_is_overestimate_bounded_by_error() {
        let mut ss = SpaceSaving::new(4);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        // deterministic skewed stream
        let stream: Vec<u32> = (0..2000u32).map(|i| (i * i % 23) % 11).collect();
        for &x in &stream {
            *truth.entry(x).or_insert(0) += 1;
            ss.offer(x);
        }
        for c in ss.top_k(4) {
            let t = truth[&c.item];
            assert!(c.count >= t, "count must upper-bound truth");
            assert!(
                c.count - c.error <= t,
                "count - error must lower-bound truth"
            );
        }
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut ss = SpaceSaving::new(5);
        for i in 0..1000u32 {
            ss.offer(i);
        }
        assert_eq!(ss.len(), 5);
    }

    #[test]
    fn offer_n_bulk() {
        let mut ss = SpaceSaving::new(4);
        ss.offer_n("x", 100);
        ss.offer_n("y", 50);
        assert_eq!(ss.estimate(&"x"), 100);
        assert_eq!(ss.total(), 150);
    }

    #[test]
    fn merge_preserves_heavy_hitters() {
        let mut a = SpaceSaving::new(4);
        let mut b = SpaceSaving::new(4);
        a.offer_n("big", 1000);
        a.offer_n("m1", 10);
        b.offer_n("big", 500);
        b.offer_n("m2", 20);
        a.merge(&b);
        assert_eq!(a.estimate(&"big"), 1500);
        assert_eq!(a.total(), 1530);
        assert!(a.len() <= 4);
        assert_eq!(a.top_k(1)[0].item, "big");
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = SpaceSaving::<u32>::new(0);
    }
}
