//! Reservoir sampling (Vitter's Algorithm R).
//!
//! Used by ScrubCentral to keep a bounded uniform sample of example rows
//! per group (handy when a troubleshooter wants representative raw events
//! behind an aggregate without shipping everything).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fixed-capacity uniform sample over a stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// Create a reservoir holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Offer an item; it is kept with probability `capacity / seen`.
    pub fn offer<R: Rng>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Items currently in the reservoir (order is not meaningful).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of items retained.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing was offered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = Reservoir::new(10);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..5 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.seen(), 5);
    }

    #[test]
    fn capacity_bounded() {
        let mut r = Reservoir::new(10);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..1000 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 1000);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // each item of 0..100 should appear ~ equally often across trials
        let mut hits = vec![0u32; 100];
        for seed in 0..400 {
            let mut r = Reservoir::new(10);
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 0..100u32 {
                r.offer(i, &mut rng);
            }
            for &x in r.items() {
                hits[x as usize] += 1;
            }
        }
        // expectation = 400 * 10/100 = 40 hits per item
        let min = *hits.iter().min().unwrap();
        let max = *hits.iter().max().unwrap();
        assert!(min > 15, "min hits {min}");
        assert!(max < 75, "max hits {max}");
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = Reservoir::<u32>::new(0);
    }
}
