//! HyperLogLog cardinality estimator backing ScrubQL's `COUNT_DISTINCT`
//! (§3.2; Heule, Nunkesser, Hall — "HyperLogLog in Practice", EDBT 2013).
//!
//! Implements the classical HLL with the small-range linear-counting
//! correction from the HLL++ paper (the sparse representation is omitted:
//! Scrub windows are short-lived, and a 2^p-byte dense register file per
//! (query, group, window) is already tiny for p = 12).

use serde::{Deserialize, Serialize};

/// HyperLogLog sketch with `2^p` single-byte registers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperLogLog {
    p: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Create a sketch with precision `p` in `[4, 18]`. Standard error is
    /// roughly `1.04 / sqrt(2^p)` — about 1.6% at the default p = 12.
    pub fn new(p: u8) -> Self {
        assert!((4..=18).contains(&p), "HLL precision must be in [4, 18]");
        HyperLogLog {
            p,
            registers: vec![0; 1 << p],
        }
    }

    /// Default precision used by ScrubCentral (p = 12, 4 KiB).
    pub fn default_precision() -> Self {
        Self::new(12)
    }

    /// Number of registers.
    pub fn m(&self) -> usize {
        self.registers.len()
    }

    /// Add a pre-hashed 64-bit value.
    pub fn add_hash(&mut self, hash: u64) {
        let idx = (hash >> (64 - self.p)) as usize;
        let rest = hash << self.p;
        // rank = position of the leftmost 1-bit in the remaining bits
        let rank = if rest == 0 {
            (64 - self.p) + 1
        } else {
            rest.leading_zeros() as u8 + 1
        };
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Add an arbitrary byte string (hashed with FNV-1a then finalized).
    pub fn add_bytes(&mut self, bytes: &[u8]) {
        self.add_hash(hash64(bytes));
    }

    /// Estimate the number of distinct values added.
    pub fn estimate(&self) -> f64 {
        let m = self.m() as f64;
        let mut sum = 0.0;
        let mut zeros = 0usize;
        for &r in &self.registers {
            sum += 1.0 / ((1u64 << r) as f64);
            if r == 0 {
                zeros += 1;
            }
        }
        let alpha = match self.m() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            m => 0.7213 / (1.0 + 1.079 / m as f64),
        };
        let raw = alpha * m * m / sum;
        // small-range correction: linear counting
        if raw <= 2.5 * m && zeros > 0 {
            return m * (m / zeros as f64).ln();
        }
        raw
    }

    /// Merge another sketch of the same precision into this one.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.p, other.p, "cannot merge HLLs of different precision");
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            if *b > *a {
                *a = *b;
            }
        }
    }
}

/// 64-bit FNV-1a with an avalanche finalizer (good enough dispersion for
/// HLL on structured inputs like user ids).
pub fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // splitmix64 finalizer
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate_n(n: u64, p: u8) -> f64 {
        let mut hll = HyperLogLog::new(p);
        for i in 0..n {
            hll.add_bytes(&i.to_le_bytes());
        }
        hll.estimate()
    }

    #[test]
    fn small_cardinalities_nearly_exact() {
        for n in [0u64, 1, 10, 100] {
            let est = estimate_n(n, 12);
            assert!(
                (est - n as f64).abs() <= (n as f64 * 0.05).max(1.0),
                "n={n} est={est}"
            );
        }
    }

    #[test]
    fn large_cardinality_within_error_bound() {
        let n = 100_000u64;
        let est = estimate_n(n, 12);
        let rel = (est - n as f64).abs() / n as f64;
        // standard error at p=12 is ~1.6%; allow 4 sigma
        assert!(rel < 0.065, "relative error {rel}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::new(12);
        for _ in 0..10 {
            for i in 0..1000u64 {
                hll.add_bytes(&i.to_le_bytes());
            }
        }
        let est = hll.estimate();
        assert!((est - 1000.0).abs() < 100.0, "est={est}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(12);
        let mut b = HyperLogLog::new(12);
        let mut union = HyperLogLog::new(12);
        for i in 0..5000u64 {
            a.add_bytes(&i.to_le_bytes());
            union.add_bytes(&i.to_le_bytes());
        }
        for i in 2500..7500u64 {
            b.add_bytes(&i.to_le_bytes());
            union.add_bytes(&i.to_le_bytes());
        }
        a.merge(&b);
        assert_eq!(a.estimate(), union.estimate());
    }

    #[test]
    #[should_panic]
    fn merge_mismatched_precision_panics() {
        let mut a = HyperLogLog::new(10);
        let b = HyperLogLog::new(12);
        a.merge(&b);
    }

    #[test]
    #[should_panic]
    fn bad_precision_panics() {
        let _ = HyperLogLog::new(3);
    }

    #[test]
    fn hash_disperses() {
        // consecutive integers should hash to well-spread values
        let h1 = hash64(&1u64.to_le_bytes());
        let h2 = hash64(&2u64.to_le_bytes());
        assert_ne!(h1 >> 52, h2 >> 52); // different HLL buckets at p=12 (very likely)
    }
}
