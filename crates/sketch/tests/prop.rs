//! Property-based tests of the probabilistic substrate's invariants.

use proptest::prelude::*;

use scrub_sketch::{estimate_total, HostSample, HyperLogLog, SpaceSaving, Welford};

proptest! {
    /// SpaceSaving's fundamental guarantee on any stream: for every
    /// monitored item, `count - error <= true_count <= count`.
    #[test]
    fn spacesaving_error_bounds(
        stream in prop::collection::vec(0u16..64, 1..500),
        capacity in 1usize..16,
    ) {
        let mut ss = SpaceSaving::new(capacity);
        let mut truth = std::collections::HashMap::new();
        for &x in &stream {
            ss.offer(x);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        prop_assert_eq!(ss.total(), stream.len() as u64);
        for c in ss.top_k(capacity) {
            let t = truth.get(&c.item).copied().unwrap_or(0);
            prop_assert!(c.count >= t, "count {} < truth {}", c.count, t);
            prop_assert!(c.count - c.error <= t, "lower bound violated");
        }
    }

    /// Any item with frequency above total/capacity is guaranteed present.
    #[test]
    fn spacesaving_heavy_hitter_guarantee(
        noise in prop::collection::vec(1u32..1000, 0..200),
        heavy_count in 50u64..150,
    ) {
        let capacity = 8;
        let mut ss = SpaceSaving::new(capacity);
        let mut total = 0u64;
        // interleave: noise items once each, heavy item many times
        for (i, &x) in noise.iter().enumerate() {
            ss.offer(x);
            total += 1;
            if (i as u64).is_multiple_of(2) && total < heavy_count * 2 {
                ss.offer(0u32); // heavy item
                total += 1;
            }
        }
        for _ in 0..heavy_count {
            ss.offer(0u32);
        }
        total += heavy_count;
        let freq_0 = heavy_count + noise.len() as u64 / 2;
        if freq_0 > total / capacity as u64 {
            let top: Vec<u32> = ss.top_k(capacity).into_iter().map(|c| c.item).collect();
            prop_assert!(top.contains(&0), "heavy hitter evicted");
        }
    }

    /// Welford merge is equivalent to sequential accumulation (any split).
    #[test]
    fn welford_merge_any_split(
        xs in prop::collection::vec(-1e6f64..1e6, 2..100),
        split in 0usize..100,
    ) {
        let split = split % xs.len();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.add(x);
        }
        let (mut a, mut b) = (Welford::new(), Welford::new());
        for &x in &xs[..split] {
            a.add(x);
        }
        for &x in &xs[split..] {
            b.add(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (a.variance() - whole.variance()).abs()
                < 1e-6 * (1.0 + whole.variance().abs())
        );
    }

    /// HLL merge is a union: merging a sketch into itself changes nothing,
    /// and merge is commutative on the estimate.
    #[test]
    fn hll_merge_union_semantics(
        xs in prop::collection::vec(any::<u64>(), 0..300),
        ys in prop::collection::vec(any::<u64>(), 0..300),
    ) {
        let mut a = HyperLogLog::new(10);
        let mut b = HyperLogLog::new(10);
        for x in &xs {
            a.add_bytes(&x.to_le_bytes());
        }
        for y in &ys {
            b.add_bytes(&y.to_le_bytes());
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.estimate(), ba.estimate());
        // idempotence
        let mut aa = a.clone();
        aa.merge(&a);
        prop_assert_eq!(aa.estimate(), a.estimate());
    }

    /// The two-stage estimator is exact on exhaustive samples.
    #[test]
    fn estimator_exact_when_exhaustive(
        host_values in prop::collection::vec(
            prop::collection::vec(-1e3f64..1e3, 1..30),
            1..10,
        ),
    ) {
        let mut truth = 0.0;
        let hosts: Vec<HostSample> = host_values
            .iter()
            .map(|vs| {
                let mut h = HostSample::new();
                for &v in vs {
                    truth += v;
                    h.saw_match();
                    h.sampled(v);
                }
                h
            })
            .collect();
        let est = estimate_total(hosts.len(), &hosts, 0.95);
        prop_assert!((est.estimate - truth).abs() < 1e-6 * (1.0 + truth.abs()));
        prop_assert_eq!(est.error_bound, 0.0);
    }

    /// The estimator's bound is non-negative and the variance finite for
    /// any non-degenerate sample configuration.
    #[test]
    fn estimator_bound_well_formed(
        populations in prop::collection::vec(1u64..100, 2..12),
        extra_hosts in 0usize..10,
    ) {
        let hosts: Vec<HostSample> = populations
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let mut h = HostSample::new();
                for j in 0..m {
                    h.saw_match();
                    if j % 2 == 0 {
                        h.sampled((i * 7 + j as usize) as f64);
                    }
                }
                h
            })
            .collect();
        let est = estimate_total(hosts.len() + extra_hosts, &hosts, 0.95);
        prop_assert!(est.estimate.is_finite());
        prop_assert!(est.variance >= 0.0);
        prop_assert!(est.error_bound >= 0.0);
    }
}
