//! Prometheus-style text exposition of a [`MetricsSnapshot`].
//!
//! Experiments write this next to their JSON artifacts so a BENCH run
//! leaves a scrapeable telemetry surface, and `Registry::render_text`
//! exposes it live. The output is **stable**: metric names sort
//! lexicographically (the snapshot's `BTreeMap` order), histogram
//! buckets render in bound order, and values are plain integers — two
//! runs of the same seeded scenario produce byte-identical text, which
//! CI checks as a golden output.
//!
//! Metric names are sanitized to the Prometheus charset
//! (`[a-zA-Z0-9_:]`, no leading digit): Scrub's `central.batches` style
//! becomes `scrub_central_batches`.

use std::fmt::Write;

use crate::metrics::MetricsSnapshot;
use crate::tsdb::{Resolution, TelemetryStore};

/// Sanitize a Scrub metric name into the Prometheus charset, prefixed
/// with `scrub_` (which also guarantees no leading digit).
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("scrub_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format, sorted
/// and deterministic. Counters and gauges render as single samples;
/// histograms render cumulative `_bucket{le=...}` samples plus `_sum`
/// and `_count`.
pub fn render_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# scrub metrics snapshot at sim t={} ms", snap.at_ms);
    for (name, value) in &snap.counters {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snap.gauges {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, h) in &snap.histograms {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (i, &count) in h.buckets.iter().enumerate() {
            cumulative += count;
            match h.bounds.get(i) {
                Some(bound) => {
                    let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                None => {
                    let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
        if h.dropped_merges > 0 {
            // first-class counter, not a footnote: silent telemetry
            // loss must itself be scrapeable and alertable
            let _ = writeln!(out, "# TYPE {n}_dropped_merges counter");
            let _ = writeln!(out, "{n}_dropped_merges {}", h.dropped_merges);
        }
    }
    out
}

/// Render a snapshot as [`render_text`] plus exemplar comment lines:
/// for every metric whose newest mid-tier rolled point carries an
/// exemplar trace rid, one OpenMetrics-style comment links the series
/// to `scrubql trace <rid>` and the max-delta interval that earned it.
/// Sorted, byte-stable, and still valid Prometheus exposition (the
/// links are comments).
pub fn render_text_with_exemplars(snap: &MetricsSnapshot, store: &TelemetryStore) -> String {
    let mut out = render_text(snap);
    let mut links = String::new();
    for name in store.metric_names() {
        let Some(point) = store.points(&name, Resolution::Mid).last().copied() else {
            continue;
        };
        if let Some(rid) = point.exemplar {
            let _ = writeln!(
                links,
                "# exemplar {} rid={rid} interval=({},{}] ms",
                sanitize_name(&name),
                point.max_from_ms,
                point.max_at_ms,
            );
        }
    }
    if !links.is_empty() {
        out.push_str("# exemplars: newest mid-tier rollup, max-delta interval\n");
        out.push_str(&links);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn names_sanitize_to_prometheus_charset() {
        assert_eq!(sanitize_name("central.batches"), "scrub_central_batches");
        assert_eq!(
            sanitize_name("agent.acks-pending"),
            "scrub_agent_acks_pending"
        );
        assert_eq!(sanitize_name("9weird name"), "scrub_9weird_name");
    }

    #[test]
    fn render_is_sorted_stable_and_complete() {
        let r = Registry::new();
        r.counter("central.batches").add(3);
        r.counter("agent.matched").add(7);
        r.gauge("agent.acks_pending").set(-2);
        let h = r.histogram_with("central.lat", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(5_000);

        let text = r.render_text(1_234);
        let again = r.render_text(1_234);
        assert_eq!(text, again, "rendering must be deterministic");

        // counters sort lexicographically: agent before central
        let a = text.find("scrub_agent_matched 7").unwrap();
        let c = text.find("scrub_central_batches 3").unwrap();
        assert!(a < c);
        assert!(text.contains("scrub_agent_acks_pending -2"));
        // histogram buckets are cumulative and end at +Inf
        assert!(text.contains("scrub_central_lat_bucket{le=\"10\"} 1"));
        assert!(text.contains("scrub_central_lat_bucket{le=\"100\"} 2"));
        assert!(text.contains("scrub_central_lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("scrub_central_lat_sum 5055"));
        assert!(text.contains("scrub_central_lat_count 3"));
        assert!(text.starts_with("# scrub metrics snapshot at sim t=1234 ms"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn exemplar_links_append_as_comments() {
        let mut store = TelemetryStore::new(16, 2, 4, 4);
        let mk = |at_ms: i64, v: u64| {
            let mut s = MetricsSnapshot {
                at_ms,
                ..Default::default()
            };
            s.counters.insert("central.events_ingested".into(), v);
            s
        };
        store.record(mk(0, 0));
        store.record_with(mk(1_000, 50), |_, _, _| Some(7));
        store.record_with(mk(2_000, 60), |_, _, _| Some(7));
        let snap = store.raw().latest().unwrap().clone();
        let text = render_text_with_exemplars(&snap, &store);
        assert!(text.starts_with(&render_text(&snap)), "base render first");
        assert!(
            text.contains("# exemplar scrub_central_events_ingested rid=7 interval=(0,1000] ms"),
            "{text}"
        );
        // byte-stable
        assert_eq!(text, render_text_with_exemplars(&snap, &store));
        // with no rolled exemplars, the render IS the base render
        let bare = TelemetryStore::new(4, 2, 4, 4);
        assert_eq!(render_text_with_exemplars(&snap, &bare), render_text(&snap));
    }

    #[test]
    fn dropped_merges_surface_as_counter() {
        let a = Registry::new();
        let mut snap = a.histogram_with("h", &[1]).snapshot();
        let foreign = Registry::new().histogram_with("h", &[2, 3]).snapshot();
        snap.merge(&foreign);
        let mut ms = MetricsSnapshot::default();
        ms.histograms.insert("h".into(), snap);
        let text = render_text(&ms);
        assert!(text.contains("# TYPE scrub_h_dropped_merges counter"));
        assert!(text.contains("scrub_h_dropped_merges 1"));
        // a clean histogram emits no dropped_merges sample at all
        let clean = render_text(&{
            let mut m = MetricsSnapshot::default();
            m.histograms
                .insert("h".into(), a.histogram_with("h", &[1]).snapshot());
            m
        });
        assert!(!clean.contains("dropped_merges"));
    }
}
