//! Prometheus-style text exposition of a [`MetricsSnapshot`].
//!
//! Experiments write this next to their JSON artifacts so a BENCH run
//! leaves a scrapeable telemetry surface, and `Registry::render_text`
//! exposes it live. The output is **stable**: metric names sort
//! lexicographically (the snapshot's `BTreeMap` order), histogram
//! buckets render in bound order, and values are plain integers — two
//! runs of the same seeded scenario produce byte-identical text, which
//! CI checks as a golden output.
//!
//! Metric names are sanitized to the Prometheus charset
//! (`[a-zA-Z0-9_:]`, no leading digit): Scrub's `central.batches` style
//! becomes `scrub_central_batches`.

use std::fmt::Write;

use crate::metrics::MetricsSnapshot;

/// Sanitize a Scrub metric name into the Prometheus charset, prefixed
/// with `scrub_` (which also guarantees no leading digit).
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("scrub_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format, sorted
/// and deterministic. Counters and gauges render as single samples;
/// histograms render cumulative `_bucket{le=...}` samples plus `_sum`
/// and `_count`.
pub fn render_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# scrub metrics snapshot at sim t={} ms", snap.at_ms);
    for (name, value) in &snap.counters {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snap.gauges {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, h) in &snap.histograms {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (i, &count) in h.buckets.iter().enumerate() {
            cumulative += count;
            match h.bounds.get(i) {
                Some(bound) => {
                    let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                None => {
                    let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
        if h.dropped_merges > 0 {
            // first-class counter, not a footnote: silent telemetry
            // loss must itself be scrapeable and alertable
            let _ = writeln!(out, "# TYPE {n}_dropped_merges counter");
            let _ = writeln!(out, "{n}_dropped_merges {}", h.dropped_merges);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn names_sanitize_to_prometheus_charset() {
        assert_eq!(sanitize_name("central.batches"), "scrub_central_batches");
        assert_eq!(
            sanitize_name("agent.acks-pending"),
            "scrub_agent_acks_pending"
        );
        assert_eq!(sanitize_name("9weird name"), "scrub_9weird_name");
    }

    #[test]
    fn render_is_sorted_stable_and_complete() {
        let r = Registry::new();
        r.counter("central.batches").add(3);
        r.counter("agent.matched").add(7);
        r.gauge("agent.acks_pending").set(-2);
        let h = r.histogram_with("central.lat", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(5_000);

        let text = r.render_text(1_234);
        let again = r.render_text(1_234);
        assert_eq!(text, again, "rendering must be deterministic");

        // counters sort lexicographically: agent before central
        let a = text.find("scrub_agent_matched 7").unwrap();
        let c = text.find("scrub_central_batches 3").unwrap();
        assert!(a < c);
        assert!(text.contains("scrub_agent_acks_pending -2"));
        // histogram buckets are cumulative and end at +Inf
        assert!(text.contains("scrub_central_lat_bucket{le=\"10\"} 1"));
        assert!(text.contains("scrub_central_lat_bucket{le=\"100\"} 2"));
        assert!(text.contains("scrub_central_lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("scrub_central_lat_sum 5055"));
        assert!(text.contains("scrub_central_lat_count 3"));
        assert!(text.starts_with("# scrub metrics snapshot at sim t=1234 ms"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn dropped_merges_surface_as_counter() {
        let a = Registry::new();
        let mut snap = a.histogram_with("h", &[1]).snapshot();
        let foreign = Registry::new().histogram_with("h", &[2, 3]).snapshot();
        snap.merge(&foreign);
        let mut ms = MetricsSnapshot::default();
        ms.histograms.insert("h".into(), snap);
        let text = render_text(&ms);
        assert!(text.contains("# TYPE scrub_h_dropped_merges counter"));
        assert!(text.contains("scrub_h_dropped_merges 1"));
        // a clean histogram emits no dropped_merges sample at all
        let clean = render_text(&{
            let mut m = MetricsSnapshot::default();
            m.histograms
                .insert("h".into(), a.histogram_with("h", &[1]).snapshot());
            m
        });
        assert!(!clean.contains("dropped_merges"));
    }
}
