//! Lock-light metrics: counters, gauges and fixed-bucket histograms.
//!
//! The update path is a single relaxed atomic RMW on a pre-fetched
//! `Arc` handle — no lock, no allocation, no branch on registry state.
//! The [`Registry`] mutex guards only metric *creation* and snapshotting,
//! both of which happen off the hot path (node start-up, `stats`
//! commands, experiment epilogues). Everything snapshotted is plain
//! serde-able data so per-node snapshots can be merged into cluster
//! totals and diffed across sim-clock instants.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A monotone counter (relaxed atomics; mergeable by addition).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (e.g. acks pending).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) `d`.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default histogram bucket upper bounds (ms): exponential 1..~16s.
/// Chosen for latencies on the sim clock; the final implicit bucket is
/// `+inf`.
pub const DEFAULT_LATENCY_BOUNDS_MS: &[i64] = &[
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 16_000,
];

/// A fixed-bucket histogram with atomic bucket counts.
///
/// Buckets are defined by sorted upper bounds; a sample lands in the
/// first bucket whose bound is `>= sample`, or the implicit overflow
/// bucket. Recording is lock-free (two relaxed RMWs plus a short scan of
/// a ~15-entry bounds array).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<i64>,
    /// One slot per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Histogram with the default latency bounds.
    pub fn new() -> Self {
        Self::with_bounds(DEFAULT_LATENCY_BOUNDS_MS)
    }

    /// Histogram with custom sorted upper bounds.
    pub fn with_bounds(bounds: &[i64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be sorted"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample (negative samples clamp to zero).
    #[inline]
    pub fn record(&self, v: i64) {
        let v = v.max(0);
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v as u64, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Plain-data snapshot (relaxed loads; counters only grow).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            dropped_merges: 0,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain-old-data snapshot of a [`Histogram`]; mergeable bucket-wise.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Sorted bucket upper bounds; one extra overflow bucket follows.
    pub bounds: Vec<i64>,
    /// Per-bucket sample counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of (clamped) samples.
    pub sum: u64,
    /// Merges skipped because the other side had different bucket
    /// bounds (see [`HistogramSnapshot::merge`]); nonzero means `count`
    /// and the quantiles undercount the true totals.
    #[serde(default)]
    pub dropped_merges: u64,
}

impl HistogramSnapshot {
    /// Estimated quantile `q in [0,1]`: the upper bound of the bucket
    /// holding the q-th sample (`None` when empty). The overflow bucket
    /// reports the largest finite bound.
    pub fn quantile(&self, q: f64) -> Option<i64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(match self.bounds.get(i) {
                    Some(&b) => b,
                    None => self.bounds.last().copied().unwrap_or(i64::MAX),
                });
            }
        }
        self.bounds.last().copied()
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<i64> {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<i64> {
        self.quantile(0.99)
    }

    /// Mean of recorded samples.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Merge `other` into `self` bucket-wise. An empty side adopts the
    /// other's shape. Both sides normally share the same bounds (all
    /// Scrub histograms of a given name do); if they differ — e.g. a
    /// node on an older build with different bucketing — the buckets
    /// cannot be combined meaningfully, so the merge is **skipped** and
    /// counted in [`HistogramSnapshot::dropped_merges`] instead of
    /// panicking or silently corrupting quantiles. Readers surface a
    /// nonzero `dropped_merges` as a data-quality warning.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.bounds.is_empty() {
            let dropped = self.dropped_merges;
            *self = other.clone();
            self.dropped_merges += dropped;
            return;
        }
        if other.bounds.is_empty() {
            self.dropped_merges += other.dropped_merges;
            return;
        }
        if self.bounds != other.bounds {
            self.dropped_merges += 1;
            return;
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.dropped_merges += other.dropped_merges;
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics.
///
/// `counter`/`gauge`/`histogram` get-or-create a handle; callers cache
/// the `Arc` and update it lock-free. The internal mutex is only taken
/// on creation and snapshot.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.inner.lock().len())
            .finish()
    }
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the histogram `name` (default latency bounds).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, DEFAULT_LATENCY_BOUNDS_MS)
    }

    /// Get or create the histogram `name` with custom bounds (bounds are
    /// only applied on creation).
    pub fn histogram_with(&self, name: &str, bounds: &[i64]) -> Arc<Histogram> {
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::with_bounds(bounds))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Prometheus-style text exposition of every metric (stable sorted
    /// output; see [`crate::export::render_text`]).
    pub fn render_text(&self, at_ms: i64) -> String {
        crate::export::render_text(&self.snapshot(at_ms))
    }

    /// Snapshot every metric at sim-time `at_ms`.
    pub fn snapshot(&self, at_ms: i64) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut snap = MetricsSnapshot {
            at_ms,
            ..MetricsSnapshot::default()
        };
        for (name, metric) in inner.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// Plain-data snapshot of a [`Registry`]: mergeable across nodes and
/// diffable across sim-clock instants.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Sim time (ms) the snapshot was taken.
    pub at_ms: i64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merge another node's snapshot into this one: counters and
    /// histograms add, gauges add (cluster totals), the timestamp keeps
    /// the later instant.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.at_ms = self.at_ms.max(other.at_ms);
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Difference of two snapshots over time on the *same* registry
    /// (`self` later): counters and histogram buckets subtract, gauges
    /// keep the later value.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (k, v) in &earlier.counters {
            if let Some(c) = out.counters.get_mut(k) {
                *c = c.saturating_sub(*v);
            }
        }
        for (k, v) in &earlier.histograms {
            if let Some(h) = out.histograms.get_mut(k) {
                if h.bounds == v.bounds {
                    for (a, b) in h.buckets.iter_mut().zip(&v.buckets) {
                        *a = a.saturating_sub(*b);
                    }
                    h.count = h.count.saturating_sub(v.count);
                    h.sum = h.sum.saturating_sub(v.sum);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("batches");
        c.inc();
        c.add(4);
        let g = r.gauge("pending");
        g.set(7);
        g.add(-2);
        // get-or-create returns the same handle
        r.counter("batches").add(5);
        let snap = r.snapshot(1_000);
        assert_eq!(snap.counter("batches"), 10);
        assert_eq!(snap.gauges["pending"], 5);
        assert_eq!(snap.at_ms, 1_000);
    }

    #[test]
    fn histogram_quantiles_land_in_right_bucket() {
        let h = Histogram::with_bounds(&[10, 100, 1_000]);
        for _ in 0..98 {
            h.record(5);
        }
        h.record(50);
        h.record(500);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50(), Some(10));
        assert_eq!(s.p99(), Some(100));
        assert_eq!(s.quantile(1.0), Some(1_000));
        assert_eq!(s.buckets, vec![98, 1, 1, 0]);
    }

    #[test]
    fn histogram_overflow_and_negative_clamp() {
        let h = Histogram::with_bounds(&[10]);
        h.record(-5); // clamps to 0 -> first bucket
        h.record(1_000_000); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 1]);
        assert_eq!(s.p50(), Some(10));
    }

    #[test]
    fn snapshots_merge_and_diff() {
        let r1 = Registry::new();
        r1.counter("x").add(3);
        r1.histogram_with("lat", &[10, 100]).record(50);
        let r2 = Registry::new();
        r2.counter("x").add(4);
        r2.gauge("g").set(2);
        r2.histogram_with("lat", &[10, 100]).record(5);

        let mut merged = r1.snapshot(500);
        merged.merge(&r2.snapshot(800));
        assert_eq!(merged.counter("x"), 7);
        assert_eq!(merged.gauges["g"], 2);
        assert_eq!(merged.histograms["lat"].count, 2);
        assert_eq!(merged.at_ms, 800);

        let before = r1.snapshot(100);
        r1.counter("x").add(10);
        let diff = r1.snapshot(200).since(&before);
        assert_eq!(diff.counter("x"), 10);
    }

    #[test]
    fn merge_empty_sides_adopt_shape() {
        // both empty: stays empty
        let mut a = HistogramSnapshot::default();
        a.merge(&HistogramSnapshot::default());
        assert_eq!(a, HistogramSnapshot::default());
        // empty left adopts right's shape wholesale
        let full = Histogram::with_bounds(&[10, 100]);
        full.record(5);
        let mut a = HistogramSnapshot::default();
        a.merge(&full.snapshot());
        assert_eq!(a, full.snapshot());
        // empty right leaves left untouched
        let mut b = full.snapshot();
        b.merge(&HistogramSnapshot::default());
        assert_eq!(b, full.snapshot());
        assert_eq!(b.dropped_merges, 0);
    }

    #[test]
    fn merge_mismatched_bounds_skips_and_counts() {
        let left = Histogram::with_bounds(&[10, 100]);
        left.record(5);
        let right = Histogram::with_bounds(&[1, 2, 3]);
        right.record(2);
        let mut a = left.snapshot();
        a.merge(&right.snapshot());
        // left's data is intact, not corrupted by foreign buckets
        assert_eq!(a.count, 1);
        assert_eq!(a.buckets, vec![1, 0, 0]);
        assert_eq!(a.dropped_merges, 1);
        // repeated mismatches accumulate
        a.merge(&right.snapshot());
        assert_eq!(a.dropped_merges, 2);
        // the counter survives further compatible merges and
        // adoption-by-empty
        a.merge(&left.snapshot());
        assert_eq!(a.count, 2);
        assert_eq!(a.dropped_merges, 2);
        let mut empty = HistogramSnapshot::default();
        empty.merge(&a);
        assert_eq!(empty.dropped_merges, 2);
    }

    #[test]
    fn snapshot_serializes() {
        let r = Registry::new();
        r.counter("a").inc();
        r.histogram("h").record(3);
        let s = r.snapshot(42);
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
