//! Per-query execution profiles.
//!
//! ScrubCentral assembles one [`QueryProfile`] per live query from the
//! batch stream it already handles — profiling is per *batch*, not per
//! event, so the cost rides the existing control flow. The profile is
//! plain data: serde-able, cloneable, and mergeable across a central
//! cluster, so `scrubql`'s `profile <qid>` and experiment epilogues can
//! read one struct wherever the query ran.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::metrics::{HistogramSnapshot, DEFAULT_LATENCY_BOUNDS_MS};

/// Cumulative tap counters for one event type on one host, as of the
/// highest-seq batch received. A join query runs one subscription — one
/// counter triple — per FROM type on each host, so triples are keyed by
/// type and max-merged per type; summing across types (never max across
/// types) gives honest host totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeCounters {
    /// Events that matched selection (cumulative).
    pub tapped: u64,
    /// Matched events that survived sampling and shedding (cumulative).
    pub selected: u64,
    /// Matched events dropped by load shedding (cumulative).
    pub shed: u64,
    /// Matched events dropped by the per-host CPU budget tracker
    /// (cumulative).
    #[serde(default)]
    pub budget_shed: u64,
}

/// What one host contributed to one query.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostProfile {
    /// Events ingested at central from this host (post-dedup).
    pub events: u64,
    /// Events that matched selection on the host: sum over event types
    /// of the per-type cumulative counters in `by_type`.
    pub tapped: u64,
    /// Matched events selected for shipment (survived sampling and
    /// shedding); sum over `by_type`.
    pub selected: u64,
    /// Matched events dropped by load shedding; sum over `by_type`.
    pub shed: u64,
    /// Matched events dropped by the per-host CPU budget tracker; sum
    /// over `by_type`.
    #[serde(default)]
    pub budget_shed: u64,
    /// Per-event-type cumulative counter triples (max-merged per type —
    /// the counters on a batch are the subscription's own monotone
    /// snapshot, so the highest-seq batch carries the truth).
    #[serde(default)]
    pub by_type: BTreeMap<u32, TypeCounters>,
    /// Distinct batches ingested (post-dedup).
    pub batches: u64,
    /// Batches that arrived marked as retransmissions.
    pub retransmitted_batches: u64,
    /// Bytes that arrived on first-attempt batches.
    pub bytes_first_sent: u64,
    /// Bytes that arrived on retransmitted batches.
    pub bytes_retransmitted: u64,
    /// Events that arrived again on duplicate batch copies and were
    /// discarded by dedup (informational: the first copy was counted in
    /// `events`, so these are not missing data).
    #[serde(default)]
    pub duplicate_events: u64,
}

impl HostProfile {
    /// Refresh the summed totals after a `by_type` update.
    fn recompute_totals(&mut self) {
        self.tapped = self.by_type.values().map(|t| t.tapped).sum();
        self.selected = self.by_type.values().map(|t| t.selected).sum();
        self.shed = self.by_type.values().map(|t| t.shed).sum();
        self.budget_shed = self.by_type.values().map(|t| t.budget_shed).sum();
    }

    fn merge(&mut self, other: &HostProfile) {
        self.events += other.events;
        // cumulative tap counters: both sides saw the same host counters,
        // keep the larger per type (a cluster never splits one host's
        // batches for one query across centrals, but max is safe either
        // way)
        for (ty, oc) in &other.by_type {
            let t = self.by_type.entry(*ty).or_default();
            t.tapped = t.tapped.max(oc.tapped);
            t.selected = t.selected.max(oc.selected);
            t.shed = t.shed.max(oc.shed);
            t.budget_shed = t.budget_shed.max(oc.budget_shed);
        }
        self.recompute_totals();
        self.batches += other.batches;
        self.retransmitted_batches += other.retransmitted_batches;
        self.bytes_first_sent += other.bytes_first_sent;
        self.bytes_retransmitted += other.bytes_retransmitted;
        self.duplicate_events += other.duplicate_events;
    }
}

/// Execution profile of one query, kept live by ScrubCentral.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryProfile {
    /// The query this profile describes.
    pub query_id: u64,
    /// Per-host contributions.
    pub hosts: BTreeMap<String, HostProfile>,
    /// Distinct batches ingested (across hosts, post-dedup).
    pub batches_ingested: u64,
    /// Batches discarded as duplicate retransmissions.
    pub batches_duplicate: u64,
    /// Acks central sent back (covers duplicates too).
    pub batches_acked: u64,
    /// Bytes received on first-attempt batches.
    pub bytes_first_sent: u64,
    /// Bytes received on retransmitted batches.
    pub bytes_retransmitted: u64,
    /// Windows the executor opened (closed + currently open).
    pub windows_opened: u64,
    /// Windows closed and rendered so far.
    pub windows_closed: u64,
    /// Windows whose rows were emitted while a targeted host was
    /// suspected dead.
    pub windows_degraded: u64,
    /// Join/group state rows currently buffered (gauge, refreshed on
    /// every watermark advance).
    pub join_rows_held: u64,
    /// Result rows emitted.
    pub rows_emitted: u64,
    /// Parallel-ingest backpressure stalls: sub-batch sends that found a
    /// partition channel full and had to block (0 when `partitions = 1`).
    #[serde(default)]
    pub ingest_backpressure: u64,
    /// Batch ingest latency: newest event timestamp in a batch to its
    /// arrival at central, on the sim clock.
    pub ingest_latency_ms: HistogramSnapshot,
}

impl QueryProfile {
    /// Fresh profile for `query_id`.
    pub fn new(query_id: u64) -> Self {
        QueryProfile {
            query_id,
            hosts: BTreeMap::new(),
            batches_ingested: 0,
            batches_duplicate: 0,
            batches_acked: 0,
            bytes_first_sent: 0,
            bytes_retransmitted: 0,
            windows_opened: 0,
            windows_closed: 0,
            windows_degraded: 0,
            join_rows_held: 0,
            rows_emitted: 0,
            ingest_backpressure: 0,
            ingest_latency_ms: HistogramSnapshot {
                bounds: DEFAULT_LATENCY_BOUNDS_MS.to_vec(),
                buckets: vec![0; DEFAULT_LATENCY_BOUNDS_MS.len() + 1],
                count: 0,
                sum: 0,
                dropped_merges: 0,
            },
        }
    }

    /// Record a deduplicated batch arrival. `type_id` keys the cumulative
    /// counter triple: a join query has one triple per FROM type, and
    /// only same-type counters may be max-merged.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_batch(
        &mut self,
        host: &str,
        type_id: u32,
        bytes: u64,
        events: u64,
        tapped: u64,
        selected: u64,
        shed: u64,
        budget_shed: u64,
        retransmit: bool,
        latency_ms: Option<i64>,
    ) {
        self.batches_ingested += 1;
        let h = self.hosts.entry(host.to_string()).or_default();
        h.events += events;
        let t = h.by_type.entry(type_id).or_default();
        t.tapped = t.tapped.max(tapped);
        t.selected = t.selected.max(selected);
        t.shed = t.shed.max(shed);
        t.budget_shed = t.budget_shed.max(budget_shed);
        h.recompute_totals();
        h.batches += 1;
        if retransmit {
            h.retransmitted_batches += 1;
            h.bytes_retransmitted += bytes;
            self.bytes_retransmitted += bytes;
        } else {
            h.bytes_first_sent += bytes;
            self.bytes_first_sent += bytes;
        }
        if let Some(lat) = latency_ms {
            self.record_latency(lat);
        }
    }

    /// Record a duplicate batch copy from `host` carrying `events`
    /// already-ingested events (discarded, but acked).
    pub fn observe_duplicate(&mut self, host: &str, events: u64) {
        self.batches_duplicate += 1;
        self.hosts
            .entry(host.to_string())
            .or_default()
            .duplicate_events += events;
    }

    /// Record an ack sent back toward the host.
    pub fn observe_ack(&mut self) {
        self.batches_acked += 1;
    }

    /// Record `closed` windows closing, `degraded` of them while a
    /// targeted host was suspected dead.
    pub fn observe_windows_closed(&mut self, closed: u64, degraded: u64) {
        self.windows_closed += closed;
        self.windows_degraded += degraded;
    }

    /// Refresh the live state gauges after a watermark advance.
    pub fn observe_state(&mut self, open_windows: u64, join_rows_held: u64) {
        self.windows_opened = self.windows_closed + open_windows;
        self.join_rows_held = join_rows_held;
    }

    /// Record result rows leaving central.
    pub fn observe_rows(&mut self, n: u64) {
        self.rows_emitted += n;
    }

    /// Record parallel-ingest backpressure stalls.
    pub fn observe_backpressure(&mut self, n: u64) {
        self.ingest_backpressure += n;
    }

    fn record_latency(&mut self, v: i64) {
        let v = v.max(0);
        let h = &mut self.ingest_latency_ms;
        let idx = h
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(h.bounds.len());
        h.buckets[idx] += 1;
        h.count += 1;
        h.sum += v as u64;
    }

    /// Events tapped across hosts (sum of cumulative per-host counters).
    pub fn total_tapped(&self) -> u64 {
        self.hosts.values().map(|h| h.tapped).sum()
    }

    /// Events selected across hosts.
    pub fn total_selected(&self) -> u64 {
        self.hosts.values().map(|h| h.selected).sum()
    }

    /// Events shed across hosts.
    pub fn total_shed(&self) -> u64 {
        self.hosts.values().map(|h| h.shed).sum()
    }

    /// Events budget-shed across hosts.
    pub fn total_budget_shed(&self) -> u64 {
        self.hosts.values().map(|h| h.budget_shed).sum()
    }

    /// Merge a profile shard from another central node.
    pub fn merge(&mut self, other: &QueryProfile) {
        debug_assert_eq!(self.query_id, other.query_id);
        for (host, hp) in &other.hosts {
            self.hosts.entry(host.clone()).or_default().merge(hp);
        }
        self.batches_ingested += other.batches_ingested;
        self.batches_duplicate += other.batches_duplicate;
        self.batches_acked += other.batches_acked;
        self.bytes_first_sent += other.bytes_first_sent;
        self.bytes_retransmitted += other.bytes_retransmitted;
        self.windows_opened += other.windows_opened;
        self.windows_closed += other.windows_closed;
        self.windows_degraded += other.windows_degraded;
        self.join_rows_held += other.join_rows_held;
        self.rows_emitted += other.rows_emitted;
        self.ingest_backpressure += other.ingest_backpressure;
        self.ingest_latency_ms.merge(&other.ingest_latency_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_split_first_vs_retransmitted_bytes() {
        let mut p = QueryProfile::new(7);
        p.observe_batch("h1", 0, 100, 10, 10, 10, 0, 0, false, Some(12));
        p.observe_ack();
        p.observe_batch("h1", 0, 100, 10, 20, 20, 0, 0, true, Some(800));
        p.observe_ack();
        p.observe_duplicate("h1", 10);
        p.observe_ack();
        assert_eq!(p.bytes_first_sent, 100);
        assert_eq!(p.bytes_retransmitted, 100);
        assert_eq!(p.batches_ingested, 2);
        assert_eq!(p.batches_duplicate, 1);
        assert_eq!(p.batches_acked, 3);
        let h = &p.hosts["h1"];
        assert_eq!(h.tapped, 20); // cumulative counter max-merged
        assert_eq!(h.events, 20);
        assert_eq!(h.retransmitted_batches, 1);
        assert_eq!(h.duplicate_events, 10);
        assert_eq!(p.ingest_latency_ms.count, 2);
        assert!(p.ingest_latency_ms.p99().unwrap() >= 800);
    }

    #[test]
    fn windows_and_state_gauges() {
        let mut p = QueryProfile::new(1);
        p.observe_windows_closed(3, 1);
        p.observe_state(2, 40);
        assert_eq!(p.windows_closed, 3);
        assert_eq!(p.windows_degraded, 1);
        assert_eq!(p.windows_opened, 5);
        assert_eq!(p.join_rows_held, 40);
    }

    #[test]
    fn profiles_merge_across_centrals() {
        let mut a = QueryProfile::new(1);
        a.observe_batch("h1", 0, 50, 5, 5, 5, 0, 0, false, Some(10));
        let mut b = QueryProfile::new(1);
        b.observe_batch("h2", 0, 70, 7, 7, 7, 0, 0, true, Some(20));
        b.observe_windows_closed(1, 1);
        a.merge(&b);
        assert_eq!(a.hosts.len(), 2);
        assert_eq!(a.bytes_first_sent, 50);
        assert_eq!(a.bytes_retransmitted, 70);
        assert_eq!(a.windows_degraded, 1);
        assert_eq!(a.ingest_latency_ms.count, 2);
        assert_eq!(a.total_tapped(), 12);
    }

    #[test]
    fn join_queries_sum_counters_across_types_not_max() {
        // A join has one subscription (one cumulative counter stream) per
        // FROM type; the host totals must be the sum of the per-type maxes,
        // never a max across types.
        let mut p = QueryProfile::new(9);
        p.observe_batch("h1", 1, 100, 10, 10, 10, 0, 0, false, None);
        p.observe_batch("h1", 2, 80, 4, 4, 4, 0, 0, false, None);
        p.observe_batch("h1", 1, 60, 5, 15, 15, 0, 0, false, None);
        let h = &p.hosts["h1"];
        assert_eq!(h.by_type.len(), 2);
        assert_eq!(h.by_type[&1].tapped, 15);
        assert_eq!(h.by_type[&2].tapped, 4);
        assert_eq!(h.tapped, 19);
        assert_eq!(h.selected, 19);
        assert_eq!(h.events, 19);

        // cross-central merge stays per-type as well
        let mut other = QueryProfile::new(9);
        other.observe_batch("h1", 2, 30, 2, 6, 6, 0, 0, false, None);
        p.merge(&other);
        let h = &p.hosts["h1"];
        assert_eq!(h.by_type[&2].tapped, 6);
        assert_eq!(h.tapped, 21);
    }

    #[test]
    fn profile_serializes() {
        let mut p = QueryProfile::new(3);
        p.observe_batch("h", 0, 10, 1, 1, 1, 0, 0, false, None);
        let json = serde_json::to_string(&p).unwrap();
        let back: QueryProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
