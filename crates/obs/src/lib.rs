//! # scrub-obs — Scrub's self-observability plane.
//!
//! The paper's pitch is troubleshooting *other* systems online without
//! hurting them; this crate turns the same discipline on Scrub itself.
//! Three layers:
//!
//! * [`metrics`] — a lock-light registry of counters, gauges and
//!   fixed-bucket histograms. Handles are `Arc`s updated with relaxed
//!   atomics (no lock on the update path); the registry lock is taken
//!   only to create a metric or take a [`MetricsSnapshot`]. Snapshots
//!   are plain data: mergeable across nodes and diffable across time,
//!   timestamped on the *sim* clock so they line up with query windows.
//! * [`profile`] — per-query execution profiles assembled by
//!   ScrubCentral: events tapped/selected/shed per host, bytes
//!   first-sent vs retransmitted, batches acked, windows
//!   opened/closed/degraded, join-state rows held, and an ingest-latency
//!   histogram.
//! * [`meta`] — `scrub_batch` / `scrub_window` meta-event types emitted
//!   through the very same `log()` tap the application uses, so ScrubQL
//!   queries can run over Scrub's own telemetry (dogfooding).

pub mod meta;
pub mod metrics;
pub mod profile;

pub use meta::{register_meta_events, MetaEvents, ScrubBatchEvent, ScrubWindowEvent};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use profile::{HostProfile, QueryProfile};
