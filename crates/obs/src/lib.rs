//! # scrub-obs — Scrub's self-observability plane.
//!
//! The paper's pitch is troubleshooting *other* systems online without
//! hurting them; this crate turns the same discipline on Scrub itself.
//! Three layers:
//!
//! * [`metrics`] — a lock-light registry of counters, gauges and
//!   fixed-bucket histograms. Handles are `Arc`s updated with relaxed
//!   atomics (no lock on the update path); the registry lock is taken
//!   only to create a metric or take a [`MetricsSnapshot`]. Snapshots
//!   are plain data: mergeable across nodes and diffable across time,
//!   timestamped on the *sim* clock so they line up with query windows.
//! * [`profile`] — per-query execution profiles assembled by
//!   ScrubCentral: events tapped/selected/shed per host, bytes
//!   first-sent vs retransmitted, batches acked, windows
//!   opened/closed/degraded, join-state rows held, and an ingest-latency
//!   histogram.
//! * [`meta`] — `scrub_batch` / `scrub_window` meta-event types emitted
//!   through the very same `log()` tap the application uses, so ScrubQL
//!   queries can run over Scrub's own telemetry (dogfooding).
//! * [`trace`] — deterministic, budgeted event-lifecycle traces: a
//!   seeded hash of the request id marks a small fraction of tapped
//!   events, which accumulate causally-ordered [`TraceSpan`]s at every
//!   pipeline hop, assembled into per-query [`TraceStore`]s at central.
//! * [`ledger`] — per-query, per-host loss provenance: every tapped
//!   event that missed a result is attributed to a cause (sampled-out,
//!   load-shed, dropped in flight, …) under the enforced invariant
//!   `tapped == delivered + sampled_out + load_shed + batch_dropped`.
//! * [`opstats`] — per-operator runtime statistics ([`PlanProfile`]):
//!   rows in/out, bytes and ns per plan operator, paired with the
//!   planner's estimates — the data behind `scrubql explain analyze`.
//! * [`history`] — a fixed-capacity ring of periodic snapshots with
//!   delta/rate queries, the raw tier behind `scrubql watch`.
//! * [`tsdb`] — the multi-resolution [`TelemetryStore`]: the raw ring
//!   plus bounded 10×/100× rollup tiers with deterministic counter/gauge
//!   rollup semantics and exemplar trace links, the data behind
//!   `scrubql range` and the `scrub_metric` meta-stream.
//! * [`export`] — stable, sorted Prometheus-style text exposition
//!   ([`Registry::render_text`]) so runs leave a scrapeable artifact.
//! * [`alert`] — a deterministic rule engine (threshold / delta /
//!   burn-rate with hysteresis) plus Welford-baseline anomaly
//!   detection evaluated at each history tick, feeding a bounded
//!   byte-stable [`AlertLog`] whose events carry provenance links.
//! * [`timeline`] — a per-query [`FlightRecorder`]: a bounded journal
//!   of lifecycle events (admission, plan, windows, evictions,
//!   retransmit episodes, alert firings) behind `scrubql timeline`.

pub mod alert;
pub mod export;
pub mod history;
pub mod ledger;
pub mod meta;
pub mod metrics;
pub mod opstats;
pub mod profile;
pub mod timeline;
pub mod trace;
pub mod tsdb;

pub use alert::{
    default_rules, AlertEngine, AlertEvent, AlertEventKind, AlertLog, AlertProvenance, AlertRule,
    AnomalyDetector, RuleKind,
};
pub use export::{render_text, render_text_with_exemplars, sanitize_name};
pub use history::{sparkline, MetricPoint, MetricsHistory};
pub use ledger::{HostLosses, LedgerParts, LossLedger};
pub use meta::{
    register_meta_events, MetaEvents, ScrubBatchEvent, ScrubMetricEvent, ScrubWindowEvent,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use opstats::{OperatorStats, PlanProfile};
pub use profile::{HostProfile, QueryProfile};
pub use timeline::{
    merge_timelines, render_timeline, render_timeline_json, FlightEvent, FlightEventKind,
    FlightRecorder, DEFAULT_FLIGHT_RECORDER_CAP,
};
pub use trace::{should_trace, trace_threshold, SpanKind, TraceSpan, TraceStore};
pub use tsdb::{
    fmt_milli, partition_invariant, Resolution, RolledPoint, RollupKind, TelemetryStore,
};
