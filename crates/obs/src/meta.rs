//! Meta-events: Scrub's own telemetry as first-class Scrub events.
//!
//! ScrubCentral taps a `scrub_batch` event for every batch it receives
//! and a `scrub_window` event for every window it closes — through the
//! very same `log()` tap, agent, and reliable shipping path that
//! application events take. A ScrubQL query targeting
//! `@[Service in ScrubCentral]` therefore runs over Scrub's own
//! telemetry with the full language (selection, windows, group-by,
//! sampling) and the full cost discipline: when no meta query is live,
//! the tap is one relaxed atomic load.
//!
//! Flag fields are `long` (0/1) so plain ScrubQL comparisons
//! (`where scrub_batch.retransmit = 1`) select them.

use scrub_core::error::ScrubResult;
use scrub_core::event::ToEvent;
use scrub_core::schema::{EventTypeId, SchemaRegistry};
use scrub_core::scrub_event;

scrub_event! {
    /// One batch arriving at ScrubCentral (meta-event).
    pub struct ScrubBatchEvent("scrub_batch") {
        query: long,
        host: string,
        events: long,
        bytes: long,
        retransmit: long,
        duplicate: long,
    }
}

scrub_event! {
    /// One window closing at ScrubCentral (meta-event).
    pub struct ScrubWindowEvent("scrub_window") {
        query: long,
        window_start: long,
        rows: long,
        degraded: long,
    }
}

scrub_event! {
    /// One metric observation at ScrubCentral's telemetry tick
    /// (meta-event): the [`TelemetryStore`](crate::TelemetryStore) raw
    /// tier exposed as an event stream, so ScrubQL windowed group-by
    /// queries run over Scrub's own time series. `kind` is `counter` or
    /// `gauge`; `delta` is the change since the previous tick; `value`
    /// is the value at the tick. Only partition-invariant metrics are
    /// streamed (no `_ns` gauges, no `central.ingest_backpressure`), so
    /// meta-query results keep the determinism contract.
    pub struct ScrubMetricEvent("scrub_metric") {
        metric: string,
        kind: string,
        delta: long,
        value: long,
    }
}

/// Resolved type ids of the meta-events in a schema registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaEvents {
    /// `scrub_batch` type id.
    pub batch: EventTypeId,
    /// `scrub_window` type id.
    pub window: EventTypeId,
    /// `scrub_metric` type id.
    pub metric: EventTypeId,
}

impl MetaEvents {
    /// Whether `id` is one of the meta-event types (used to break the
    /// feedback loop: batches carrying meta-events are not themselves
    /// tapped as `scrub_batch`).
    pub fn contains(&self, id: EventTypeId) -> bool {
        id == self.batch || id == self.window || id == self.metric
    }
}

/// Register (idempotently) the meta-event schemas and return their ids.
pub fn register_meta_events(registry: &SchemaRegistry) -> ScrubResult<MetaEvents> {
    Ok(MetaEvents {
        batch: registry.register(ScrubBatchEvent::schema())?,
        window: registry.register(ScrubWindowEvent::schema())?,
        metric: registry.register(ScrubMetricEvent::schema())?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_resolves() {
        let reg = SchemaRegistry::new();
        let a = register_meta_events(&reg).unwrap();
        let b = register_meta_events(&reg).unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.id_of("scrub_batch"), Some(a.batch));
        assert_eq!(reg.id_of("scrub_window"), Some(a.window));
        assert_eq!(reg.id_of("scrub_metric"), Some(a.metric));
        assert!(a.contains(a.batch));
        assert!(a.contains(a.metric));
        assert!(!a.contains(EventTypeId(u32::MAX)));
    }

    #[test]
    fn meta_schemas_have_queryable_fields() {
        let s = ScrubBatchEvent::schema();
        assert_eq!(s.name, "scrub_batch");
        assert!(s.fields.iter().any(|f| f.name == "retransmit"));
        let v = ScrubBatchEvent {
            query: 1,
            host: "central".into(),
            events: 10,
            bytes: 420,
            retransmit: 0,
            duplicate: 0,
        }
        .into_values();
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn metric_stream_schema_is_queryable() {
        let s = ScrubMetricEvent::schema();
        assert_eq!(s.name, "scrub_metric");
        assert!(s.fields.iter().any(|f| f.name == "metric"));
        assert!(s.fields.iter().any(|f| f.name == "delta"));
        let v = ScrubMetricEvent {
            metric: "central.events_ingested".into(),
            kind: "counter".into(),
            delta: 12,
            value: 420,
        }
        .into_values();
        assert_eq!(v.len(), 4);
    }
}
